//! Removable USB media.
//!
//! USB drives are the paper's dominant initial-infection vector: Stuxnet's
//! malicious-LNK drives, Flame's EUPHORIA spreading, and Flame's hidden
//! on-stick database used to ferry stolen data out of air-gapped zones.
//! A [`UsbDrive`] is a small file system plus that optional hidden store.

use malsim_kernel::define_id;
use malsim_kernel::time::SimTime;

use crate::fs::{FileData, Vfs};
use crate::path::WinPath;

define_id!(
    /// Identifies a USB drive in a scenario.
    pub struct UsbId("usb")
);
malsim_kernel::impl_arena_id!(UsbId);

/// One record in the hidden exfiltration store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenRecord {
    /// Originating host name.
    pub source_host: String,
    /// Path of the stolen document.
    pub path: WinPath,
    /// Size in bytes.
    pub size: usize,
    /// When it was captured.
    pub captured_at: SimTime,
}

/// A removable drive.
#[derive(Debug, Clone)]
pub struct UsbDrive {
    /// Volume label.
    pub label: String,
    /// The drive's visible file system.
    pub fs: Vfs,
    /// Hidden database used for air-gap exfiltration. `None` until a Flame
    /// client initializes it.
    hidden_db: Option<Vec<HiddenRecord>>,
    /// Whether this stick has been plugged into an internet-connected,
    /// infected machine since the last flush (the paper's "has it seen the
    /// internet" check).
    seen_online_infected: bool,
    /// Manifest of documents (source host, path) already ferried out through
    /// this stick, kept so repeated courier passes through the same blocked
    /// host do not re-steal files the C&C already holds.
    ferried_log: Vec<(String, WinPath)>,
}

impl UsbDrive {
    /// Creates an empty drive.
    pub fn new(label: impl Into<String>) -> Self {
        UsbDrive {
            label: label.into(),
            fs: Vfs::new(),
            hidden_db: None,
            seen_online_infected: false,
            ferried_log: Vec::new(),
        }
    }

    /// Whether a hidden database exists.
    pub fn has_hidden_db(&self) -> bool {
        self.hidden_db.is_some()
    }

    /// Initializes the hidden database if absent.
    pub fn ensure_hidden_db(&mut self) {
        if self.hidden_db.is_none() {
            self.hidden_db = Some(Vec::new());
        }
    }

    /// Appends a stolen-document record.
    ///
    /// # Panics
    ///
    /// Panics if the hidden database has not been initialized.
    pub fn stash(&mut self, record: HiddenRecord) {
        self.hidden_db.as_mut().expect("hidden db initialized").push(record);
    }

    /// Reads the hidden records.
    pub fn hidden_records(&self) -> &[HiddenRecord] {
        self.hidden_db.as_deref().unwrap_or(&[])
    }

    /// Drains the hidden records (after upload to a C&C), noting each in the
    /// ferried manifest.
    pub fn flush_hidden(&mut self) -> Vec<HiddenRecord> {
        let records = self.hidden_db.as_mut().map(std::mem::take).unwrap_or_default();
        for r in &records {
            self.ferried_log.push((r.source_host.clone(), r.path.clone()));
        }
        records
    }

    /// Whether a document was already ferried out through this stick.
    pub fn already_ferried(&self, host: &str, path: &WinPath) -> bool {
        self.ferried_log.iter().any(|(h, p)| h == host && p == path)
    }

    /// Marks that the drive was seen in an online infected machine.
    pub fn mark_seen_online_infected(&mut self) {
        self.seen_online_infected = true;
    }

    /// Whether the drive has visited an online infected machine.
    pub fn seen_online_infected(&self) -> bool {
        self.seen_online_infected
    }

    /// Drops a Stuxnet-style malicious shortcut set plus payload onto the
    /// drive: one LNK per target shell flavour, all pointing at the payload.
    pub fn plant_malicious_lnk(&mut self, payload_name: &str, payload: FileData, now: SimTime) {
        let root = WinPath::new("E:");
        let payload_path = root.join(payload_name);
        self.fs.write(&payload_path, payload, now).expect("valid payload path");
        self.fs.set_hidden(&payload_path, true).expect("just written");
        for flavour in ["xp", "vista", "7", "server2003"] {
            let lnk = root.join(format!("Copy of Shortcut to {flavour}.lnk"));
            self.fs
                .write(
                    &lnk,
                    FileData::Shortcut { target: root.clone(), exploit_payload: Some(payload_path.clone()) },
                    now,
                )
                .expect("valid lnk path");
        }
    }

    /// Drops an autorun.inf naming a payload (the older vector Flame also
    /// carries).
    pub fn plant_autorun(&mut self, payload_name: &str, payload: FileData, now: SimTime) {
        let root = WinPath::new("E:");
        let payload_path = root.join(payload_name);
        self.fs.write(&payload_path, payload, now).expect("valid payload path");
        self.fs.set_hidden(&payload_path, true).expect("just written");
        self.fs
            .write(&root.join("autorun.inf"), FileData::Autorun { run: payload_path }, now)
            .expect("valid autorun path");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn hidden_db_lifecycle() {
        let mut usb = UsbDrive::new("KINGSTON");
        assert!(!usb.has_hidden_db());
        usb.ensure_hidden_db();
        usb.ensure_hidden_db(); // idempotent
        assert!(usb.has_hidden_db());
        usb.stash(HiddenRecord {
            source_host: "airgap-1".into(),
            path: WinPath::new(r"C:\docs\secret.docx"),
            size: 4_096,
            captured_at: t(10),
        });
        assert_eq!(usb.hidden_records().len(), 1);
        let drained = usb.flush_hidden();
        assert_eq!(drained.len(), 1);
        assert!(usb.hidden_records().is_empty());
        assert!(usb.has_hidden_db(), "flush keeps the db present");
        assert!(
            usb.already_ferried("airgap-1", &WinPath::new(r"C:\docs\secret.docx")),
            "flush records the document in the ferried manifest"
        );
        assert!(!usb.already_ferried("airgap-2", &WinPath::new(r"C:\docs\secret.docx")));
    }

    #[test]
    fn online_flag() {
        let mut usb = UsbDrive::new("X");
        assert!(!usb.seen_online_infected());
        usb.mark_seen_online_infected();
        assert!(usb.seen_online_infected());
    }

    #[test]
    fn malicious_lnk_set() {
        let mut usb = UsbDrive::new("conference gift");
        usb.plant_malicious_lnk("~wtr4132.tmp", FileData::Bytes(vec![0; 16]), t(1));
        let lnks = usb.fs.find_by_extension(&["lnk"], false);
        assert_eq!(lnks.len(), 4, "one per shell flavour");
        // Payload itself is hidden.
        let visible = usb.fs.list(&WinPath::new("E:"), false);
        assert!(visible.iter().all(|p| !p.as_str().contains("wtr4132")));
        let all = usb.fs.list(&WinPath::new("E:"), true);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn autorun_planting() {
        let mut usb = UsbDrive::new("U");
        usb.plant_autorun("loader.exe", FileData::Bytes(vec![1]), t(1));
        let inf = usb.fs.read(&WinPath::new(r"E:\autorun.inf")).unwrap();
        assert!(matches!(&inf.data, FileData::Autorun { run } if run.as_str().contains("loader.exe")));
    }
}
