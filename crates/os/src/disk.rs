//! The simulated disk: MBR, partitions, and raw sectors.
//!
//! The Shamoon wiper's signature move — overwriting the Master Boot Record
//! through a legitimately signed third-party driver — needs an explicit disk
//! model: user-mode code can only touch files; raw sector writes require a
//! kernel capability (see [`crate::host::Host::write_raw_sectors`]).

use std::collections::BTreeMap;

/// Size of one sector in bytes.
pub const SECTOR_SIZE: usize = 512;
/// The two-byte boot signature at the end of a valid MBR.
pub const BOOT_MAGIC: [u8; 2] = [0x55, 0xAA];

/// A partition table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First sector (LBA).
    pub start_sector: u64,
    /// Length in sectors.
    pub sectors: u64,
    /// Whether this is the active (boot) partition.
    pub active: bool,
}

/// A disk: sparse sector store plus a structured partition view.
///
/// # Examples
///
/// ```
/// use malsim_os::disk::Disk;
///
/// let disk = Disk::with_standard_layout(1 << 20);
/// assert!(disk.is_bootable());
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    total_sectors: u64,
    sectors: BTreeMap<u64, Vec<u8>>,
    partitions: Vec<Partition>,
}

impl Disk {
    /// Creates a blank disk of `total_sectors` sectors.
    pub fn new(total_sectors: u64) -> Self {
        Disk { total_sectors, sectors: BTreeMap::new(), partitions: Vec::new() }
    }

    /// Creates a disk with a valid MBR and one active partition covering
    /// almost the whole disk.
    pub fn with_standard_layout(total_sectors: u64) -> Self {
        let mut disk = Disk::new(total_sectors);
        let mut mbr = vec![0u8; SECTOR_SIZE];
        // Minimal boot code stub + signature.
        mbr[0] = 0xEB; // jmp — "there is boot code here"
        mbr[SECTOR_SIZE - 2] = BOOT_MAGIC[0];
        mbr[SECTOR_SIZE - 1] = BOOT_MAGIC[1];
        disk.sectors.insert(0, mbr);
        disk.partitions = vec![Partition {
            start_sector: 2_048,
            sectors: total_sectors.saturating_sub(2_048),
            active: true,
        }];
        disk
    }

    /// Number of sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// The partition table.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Reads a sector. Unwritten sectors read as zeroes.
    pub fn read_sector(&self, lba: u64) -> Vec<u8> {
        self.sectors.get(&lba).cloned().unwrap_or_else(|| vec![0u8; SECTOR_SIZE])
    }

    /// Writes a sector (truncated/zero-padded to [`SECTOR_SIZE`]).
    ///
    /// Out-of-range writes are ignored, mirroring hardware that drops
    /// commands beyond the end of the medium.
    pub fn write_sector(&mut self, lba: u64, data: &[u8]) {
        if lba >= self.total_sectors {
            return;
        }
        let mut sector = vec![0u8; SECTOR_SIZE];
        let n = data.len().min(SECTOR_SIZE);
        sector[..n].copy_from_slice(&data[..n]);
        self.sectors.insert(lba, sector);
    }

    /// The MBR (sector 0).
    pub fn mbr(&self) -> Vec<u8> {
        self.read_sector(0)
    }

    /// Whether the MBR carries the boot signature — the property Shamoon
    /// destroys to brick the machine.
    pub fn is_bootable(&self) -> bool {
        let mbr = self.mbr();
        mbr[SECTOR_SIZE - 2..] == BOOT_MAGIC
    }

    /// The active partition, if any.
    pub fn active_partition(&self) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.active)
    }

    /// Overwrites every sector of the active partition's first `n` written
    /// sectors and its metadata. Returns the number of sectors clobbered.
    pub fn wipe_active_partition(&mut self, filler: u8) -> u64 {
        let Some(p) = self.active_partition().cloned() else { return 0 };
        // Clobber the sectors that actually hold data, plus the partition
        // start (filesystem metadata).
        let mut wiped = 0;
        let in_range: Vec<u64> = self
            .sectors
            .keys()
            .copied()
            .filter(|&lba| lba >= p.start_sector && lba < p.start_sector + p.sectors)
            .collect();
        for lba in in_range {
            self.sectors.insert(lba, vec![filler; SECTOR_SIZE]);
            wiped += 1;
        }
        self.write_sector(p.start_sector, &vec![filler; SECTOR_SIZE]);
        wiped.max(1)
    }

    /// Number of sectors that have ever been written.
    pub fn written_sectors(&self) -> usize {
        self.sectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_disk_not_bootable() {
        assert!(!Disk::new(100).is_bootable());
    }

    #[test]
    fn standard_layout_boots() {
        let d = Disk::with_standard_layout(10_000);
        assert!(d.is_bootable());
        assert_eq!(d.partitions().len(), 1);
        assert!(d.active_partition().unwrap().active);
    }

    #[test]
    fn sector_roundtrip_and_zero_fill() {
        let mut d = Disk::new(100);
        d.write_sector(5, &[1, 2, 3]);
        let s = d.read_sector(5);
        assert_eq!(&s[..3], &[1, 2, 3]);
        assert!(s[3..].iter().all(|&b| b == 0));
        assert_eq!(d.read_sector(6), vec![0u8; SECTOR_SIZE]);
    }

    #[test]
    fn out_of_range_write_ignored() {
        let mut d = Disk::new(10);
        d.write_sector(50, &[1]);
        assert_eq!(d.written_sectors(), 0);
    }

    #[test]
    fn overwriting_mbr_bricks() {
        let mut d = Disk::with_standard_layout(10_000);
        assert!(d.is_bootable());
        d.write_sector(0, &[0u8; SECTOR_SIZE]);
        assert!(!d.is_bootable());
    }

    #[test]
    fn wipe_active_partition_clobbers_data() {
        let mut d = Disk::with_standard_layout(10_000);
        d.write_sector(3_000, b"user data here");
        d.write_sector(4_000, b"more user data");
        let wiped = d.wipe_active_partition(0x00);
        assert!(wiped >= 2);
        assert!(d.read_sector(3_000).iter().all(|&b| b == 0));
        // MBR untouched by a partition wipe.
        assert!(d.is_bootable());
    }
}
