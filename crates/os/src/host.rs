//! The simulated host: file system, registry, services, drivers, disk,
//! patch state, trust store, and shell behaviour.

use malsim_certs::cert::Eku;
use malsim_certs::store::{CodeSignature, TrustStore, VerifyPolicy};
use malsim_kernel::define_id;
use malsim_kernel::time::SimTime;

use crate::disk::Disk;
use crate::error::HostError;
use crate::fs::{FileData, Vfs};
use crate::patches::{Bulletin, PatchState};
use crate::path::WinPath;
use crate::registry::Registry;
use crate::services::ServiceManager;
use crate::usb::UsbId;

define_id!(
    /// Identifies a host in a scenario.
    pub struct HostId("host")
);
malsim_kernel::impl_arena_id!(HostId);

/// Windows flavour installed on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowsVersion {
    /// Windows XP.
    Xp,
    /// Windows Vista.
    Vista,
    /// Windows 7.
    Seven,
    /// Windows Server 2003.
    Server2003,
}

/// Power/boot state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Booted and operating.
    Running,
    /// MBR destroyed or disk unusable; cannot boot.
    Bricked,
}

/// A loaded kernel driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedDriver {
    /// Driver file name, e.g. `mrxcls.sys` or `drdisk.sys`.
    pub name: String,
    /// Subject of the signing certificate.
    pub signer_subject: String,
    /// Whether the driver grants user-mode raw disk access (the Eldos-style
    /// capability Shamoon used).
    pub grants_raw_disk_access: bool,
    /// When it was loaded.
    pub loaded_at: SimTime,
}

/// Role of the host in its organization (used by scenarios and targeting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostRole {
    /// Ordinary office workstation.
    Workstation,
    /// Server (file/print/domain).
    Server,
    /// SCADA engineering station with Step 7 installed.
    EngineeringStation,
}

/// A simulated Windows host.
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::SimTime;
/// use malsim_os::host::{Host, HostRole, WindowsVersion};
///
/// let host = Host::new("eng-laptop", WindowsVersion::Xp, HostRole::EngineeringStation, SimTime::EPOCH);
/// assert!(host.is_running());
/// assert_eq!(host.name(), "eng-laptop");
/// ```
#[derive(Debug, Clone)]
pub struct Host {
    name: String,
    version: WindowsVersion,
    role: HostRole,
    state: HostState,
    /// The file system.
    pub fs: Vfs,
    /// The registry.
    pub registry: Registry,
    /// Services and scheduled tasks.
    pub services: ServiceManager,
    /// Patch state.
    pub patches: PatchState,
    /// Certificate trust anchors and policy.
    pub trust: TrustStore,
    /// Verification policy for code signing (legacy vs strict).
    pub verify_policy: VerifyPolicy,
    /// The physical disk.
    pub disk: Disk,
    drivers: Vec<LoadedDriver>,
    inserted_usb: Option<UsbId>,
    /// Host configuration flags read by the network layer.
    pub config: HostConfig,
    /// Names of processes currently running (coarse; used by AV heuristics
    /// and the Step 7 hook check).
    pub processes: Vec<String>,
}

/// Behavioural configuration the network and shell layers consult.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// File & print sharing enabled (MS10-061 exposure and share spreading).
    pub file_sharing: bool,
    /// Autorun honoured on removable media.
    pub autorun_enabled: bool,
    /// The browser asks for proxy config via WPAD.
    pub wpad_enabled: bool,
    /// Automatic Windows Update checks run.
    pub windows_update_enabled: bool,
    /// Bluetooth radio present and on.
    pub bluetooth: bool,
    /// Has a direct route to the internet (false inside air-gapped zones).
    pub internet_access: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            file_sharing: true,
            autorun_enabled: true,
            wpad_enabled: true,
            windows_update_enabled: true,
            bluetooth: false,
            internet_access: true,
        }
    }
}

impl Host {
    /// Creates a running host with a standard disk and user profile tree.
    pub fn new(name: impl Into<String>, version: WindowsVersion, role: HostRole, now: SimTime) -> Self {
        let name = name.into();
        let mut fs = Vfs::new();
        for dir in ["Documents", "Pictures", "Desktop", "Downloads"] {
            // Seed with a marker file so folder scans have structure to find.
            let p = WinPath::new(format!(r"C:\Users\user\{dir}\desktop.ini"));
            fs.write(&p, FileData::Bytes(vec![0; 16]), now).expect("valid seed path");
        }
        Host {
            name,
            version,
            role,
            state: HostState::Running,
            fs,
            registry: Registry::new(),
            services: ServiceManager::new(),
            patches: PatchState::unpatched(),
            trust: TrustStore::new(),
            verify_policy: VerifyPolicy::legacy(),
            disk: Disk::with_standard_layout(1 << 21),
            drivers: Vec::new(),
            inserted_usb: None,
            config: HostConfig::default(),
            processes: vec!["explorer.exe".to_owned()],
        }
    }

    /// Host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Windows flavour.
    pub fn version(&self) -> WindowsVersion {
        self.version
    }

    /// Organizational role.
    pub fn role(&self) -> HostRole {
        self.role
    }

    /// Current state.
    pub fn state(&self) -> HostState {
        self.state
    }

    /// Whether the host is running.
    pub fn is_running(&self) -> bool {
        self.state == HostState::Running
    }

    /// Whether the host is vulnerable to a bulletin's flaw.
    pub fn is_vulnerable_to(&self, bulletin: Bulletin) -> bool {
        self.patches.is_vulnerable_to(bulletin)
    }

    /// Loads a kernel driver: `content` must verify against the host trust
    /// store with the driver-signing EKU under the host policy.
    ///
    /// # Errors
    ///
    /// [`HostError::DriverRejected`] when unsigned or failing verification;
    /// [`HostError::NotRunning`] when the host is bricked.
    pub fn load_driver(
        &mut self,
        name: impl Into<String>,
        content: &[u8],
        signature: Option<&CodeSignature>,
        grants_raw_disk_access: bool,
        now: SimTime,
    ) -> Result<(), HostError> {
        self.ensure_running()?;
        let name = name.into();
        let Some(sig) = signature else {
            return Err(HostError::DriverRejected { name, reason: "unsigned driver".into() });
        };
        self.trust
            .verify_code(content, sig, now, Eku::DriverSigning, self.verify_policy)
            .map_err(|e| HostError::DriverRejected { name: name.clone(), reason: e.to_string() })?;
        self.drivers.push(LoadedDriver {
            name,
            signer_subject: sig.signer.subject.clone(),
            grants_raw_disk_access,
            loaded_at: now,
        });
        Ok(())
    }

    /// Loaded drivers.
    pub fn drivers(&self) -> &[LoadedDriver] {
        &self.drivers
    }

    /// Unloads a driver by name; returns whether one was removed.
    pub fn unload_driver(&mut self, name: &str) -> bool {
        let before = self.drivers.len();
        self.drivers.retain(|d| d.name != name);
        self.drivers.len() != before
    }

    /// Whether any loaded driver grants raw disk access to user-mode code.
    pub fn has_raw_disk_access(&self) -> bool {
        self.drivers.iter().any(|d| d.grants_raw_disk_access)
    }

    /// Writes raw sectors. User-mode callers need a capability-granting
    /// driver (the Shamoon path); pass `kernel_mode = true` only for code
    /// modelled as running in the kernel.
    ///
    /// # Errors
    ///
    /// [`HostError::RawAccessDenied`] without the capability;
    /// [`HostError::NotRunning`] when bricked.
    pub fn write_raw_sectors(&mut self, lba: u64, data: &[u8], kernel_mode: bool) -> Result<(), HostError> {
        self.ensure_running()?;
        if !kernel_mode && !self.has_raw_disk_access() {
            return Err(HostError::RawAccessDenied);
        }
        self.disk.write_sector(lba, data);
        if lba == 0 && !self.disk.is_bootable() {
            self.state = HostState::Bricked;
        }
        Ok(())
    }

    /// Inserts a USB drive (at most one at a time; replaces any current).
    pub fn insert_usb(&mut self, usb: UsbId) {
        self.inserted_usb = Some(usb);
    }

    /// Removes the USB drive, returning its id.
    pub fn eject_usb(&mut self) -> Option<UsbId> {
        self.inserted_usb.take()
    }

    /// Currently inserted drive.
    pub fn inserted_usb(&self) -> Option<UsbId> {
        self.inserted_usb
    }

    /// Marks a process as running.
    pub fn start_process(&mut self, name: impl Into<String>) {
        self.processes.push(name.into());
    }

    /// Whether a process with this name is running.
    pub fn has_process(&self, name: &str) -> bool {
        self.processes.iter().any(|p| p == name)
    }

    /// Marks the host as bricked (failed boot after MBR destruction).
    pub fn brick(&mut self) {
        self.state = HostState::Bricked;
    }

    fn ensure_running(&self) -> Result<(), HostError> {
        if self.is_running() {
            Ok(())
        } else {
            Err(HostError::NotRunning)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_certs::authority::CertificateAuthority;
    use malsim_certs::hash::HashAlgorithm;
    use malsim_certs::key::KeyPair;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn far() -> SimTime {
        SimTime::from_utc(2030, 1, 1, 0, 0, 0)
    }

    fn host() -> Host {
        Host::new("pc-1", WindowsVersion::Seven, HostRole::Workstation, t(0))
    }

    fn signed_driver(host: &mut Host) -> (Vec<u8>, CodeSignature) {
        let ca = CertificateAuthority::new_root("Root", 4, SimTime::EPOCH, far());
        host.trust.add_root(ca.root_certificate().clone());
        let kp = KeyPair::from_seed(9);
        let cert = ca.issue(
            "Eldos Corp",
            kp.public(),
            vec![Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        let content = b"raw disk driver".to_vec();
        let sig = CodeSignature::sign(&kp, cert, HashAlgorithm::Strong64, &content);
        (content, sig)
    }

    #[test]
    fn new_host_has_profile_tree() {
        let h = host();
        assert!(h.is_running());
        assert!(!h.fs.find_under_folders(&["documents"]).is_empty());
        assert!(h.has_process("explorer.exe"));
    }

    #[test]
    fn unsigned_driver_rejected() {
        let mut h = host();
        let err = h.load_driver("evil.sys", b"x", None, false, t(1)).unwrap_err();
        assert!(matches!(err, HostError::DriverRejected { .. }));
        assert!(h.drivers().is_empty());
    }

    #[test]
    fn signed_driver_loads_and_grants_capability() {
        let mut h = host();
        let (content, sig) = signed_driver(&mut h);
        assert!(!h.has_raw_disk_access());
        h.load_driver("drdisk.sys", &content, Some(&sig), true, t(1)).unwrap();
        assert!(h.has_raw_disk_access());
        assert_eq!(h.drivers()[0].signer_subject, "Eldos Corp");
        assert!(h.unload_driver("drdisk.sys"));
        assert!(!h.unload_driver("drdisk.sys"));
        assert!(!h.has_raw_disk_access());
    }

    #[test]
    fn tampered_driver_rejected() {
        let mut h = host();
        let (_content, sig) = signed_driver(&mut h);
        let err = h.load_driver("drdisk.sys", b"tampered", Some(&sig), true, t(1)).unwrap_err();
        assert!(matches!(err, HostError::DriverRejected { .. }));
    }

    #[test]
    fn raw_disk_requires_capability() {
        let mut h = host();
        assert!(matches!(h.write_raw_sectors(0, &[0u8; 512], false), Err(HostError::RawAccessDenied)));
        // Kernel mode bypasses.
        h.write_raw_sectors(100, b"data", true).unwrap();
    }

    #[test]
    fn mbr_overwrite_bricks_host() {
        let mut h = host();
        let (content, sig) = signed_driver(&mut h);
        h.load_driver("drdisk.sys", &content, Some(&sig), true, t(1)).unwrap();
        assert!(h.is_running());
        h.write_raw_sectors(0, &[0u8; 512], false).unwrap();
        assert_eq!(h.state(), HostState::Bricked);
        // Further host operations fail.
        assert!(matches!(h.write_raw_sectors(1, &[0u8; 1], false), Err(HostError::NotRunning)));
        assert!(matches!(h.load_driver("x.sys", b"", None, false, t(2)), Err(HostError::NotRunning)));
    }

    #[test]
    fn usb_insertion_cycle() {
        let mut h = host();
        assert_eq!(h.inserted_usb(), None);
        h.insert_usb(UsbId::new(3));
        assert_eq!(h.inserted_usb(), Some(UsbId::new(3)));
        assert_eq!(h.eject_usb(), Some(UsbId::new(3)));
        assert_eq!(h.inserted_usb(), None);
    }

    #[test]
    fn patch_checks_delegate() {
        let mut h = host();
        assert!(h.is_vulnerable_to(Bulletin::Ms10_046));
        h.patches.apply(Bulletin::Ms10_046);
        assert!(!h.is_vulnerable_to(Bulletin::Ms10_046));
    }
}
