//! The simulated file system.
//!
//! A [`Vfs`] is a flat map from normalized [`WinPath`]s to [`FileNode`]s plus
//! an implicit directory tree. File contents are typed ([`FileData`]) so the
//! campaign mechanics are first-class: executables carry parsed MZSM images,
//! shortcuts carry targets (the LNK vector), autorun manifests carry command
//! lines, and plain bytes cover everything else.

use std::collections::BTreeMap;

use malsim_kernel::time::SimTime;
use malsim_pe::image::Image;

use crate::error::FsError;
use crate::path::WinPath;

/// Typed file contents.
#[derive(Debug, Clone, PartialEq)]
pub enum FileData {
    /// Opaque bytes (documents, logs, payload fragments).
    Bytes(Vec<u8>),
    /// An executable image in the workspace's toy PE format.
    Executable(Image),
    /// A Windows shortcut. `exploit_payload` models a malformed LNK that
    /// triggers code execution when *rendered* by an unpatched shell
    /// (MS10-046): it names the executable path to launch.
    Shortcut {
        /// What the shortcut legitimately points at.
        target: WinPath,
        /// Path of a payload to execute on icon render, when the shell is
        /// vulnerable. `None` for benign shortcuts.
        exploit_payload: Option<WinPath>,
    },
    /// An `autorun.inf`-style manifest naming a program to run on mount.
    Autorun {
        /// Program the manifest runs.
        run: WinPath,
    },
}

impl FileData {
    /// Approximate size in bytes (used for exfiltration accounting).
    pub fn len(&self) -> usize {
        match self {
            FileData::Bytes(b) => b.len(),
            FileData::Executable(img) => img.payload_len() + 64,
            FileData::Shortcut { .. } => 1_024,
            FileData::Autorun { .. } => 128,
        }
    }

    /// Whether the content is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, FileData::Bytes(b) if b.is_empty())
    }
}

/// A file plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileNode {
    /// Contents.
    pub data: FileData,
    /// Creation time.
    pub created: SimTime,
    /// Last modification time.
    pub modified: SimTime,
    /// Hidden attribute (rootkits set this).
    pub hidden: bool,
}

/// A simulated file system.
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::SimTime;
/// use malsim_os::fs::{FileData, Vfs};
/// use malsim_os::path::WinPath;
///
/// let mut fs = Vfs::new();
/// let p = WinPath::new(r"C:\docs\plan.docx");
/// fs.write(&p, FileData::Bytes(vec![1, 2, 3]), SimTime::EPOCH)?;
/// assert!(fs.exists(&p));
/// assert_eq!(fs.read(&p)?.data.len(), 3);
/// # Ok::<(), malsim_os::error::FsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    files: BTreeMap<WinPath, FileNode>,
}

impl Vfs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Writes (creates or replaces) a file. Parent directories are implicit.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadPath`] for paths without a file name.
    pub fn write(&mut self, path: &WinPath, data: FileData, now: SimTime) -> Result<(), FsError> {
        if path.file_name().is_none() {
            return Err(FsError::BadPath { path: path.clone() });
        }
        match self.files.get_mut(path) {
            Some(node) => {
                node.data = data;
                node.modified = now;
            }
            None => {
                self.files
                    .insert(path.clone(), FileNode { data, created: now, modified: now, hidden: false });
            }
        }
        Ok(())
    }

    /// Reads a file node.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn read(&self, path: &WinPath) -> Result<&FileNode, FsError> {
        self.files.get(path).ok_or_else(|| FsError::NotFound { path: path.clone() })
    }

    /// Mutable access to a file node.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn read_mut(&mut self, path: &WinPath) -> Result<&mut FileNode, FsError> {
        self.files.get_mut(path).ok_or_else(|| FsError::NotFound { path: path.clone() })
    }

    /// Whether a file exists at `path`.
    pub fn exists(&self, path: &WinPath) -> bool {
        self.files.contains_key(path)
    }

    /// Deletes a file, returning its node.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn delete(&mut self, path: &WinPath) -> Result<FileNode, FsError> {
        self.files.remove(path).ok_or_else(|| FsError::NotFound { path: path.clone() })
    }

    /// Renames a file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the source is absent, [`FsError::Exists`] if
    /// the destination is occupied.
    pub fn rename(&mut self, from: &WinPath, to: &WinPath, now: SimTime) -> Result<(), FsError> {
        if self.files.contains_key(to) {
            return Err(FsError::Exists { path: to.clone() });
        }
        let mut node = self.delete(from)?;
        node.modified = now;
        self.files.insert(to.clone(), node);
        Ok(())
    }

    /// Sets or clears the hidden attribute.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn set_hidden(&mut self, path: &WinPath, hidden: bool) -> Result<(), FsError> {
        self.read_mut(path)?.hidden = hidden;
        Ok(())
    }

    /// All paths under `dir` (recursively), in sorted order. Pass
    /// `include_hidden = false` for the view an ordinary directory listing
    /// (or a non-rootkit-aware scanner) sees.
    pub fn list(&self, dir: &WinPath, include_hidden: bool) -> Vec<&WinPath> {
        self.files
            .iter()
            .filter(|(p, n)| p.starts_with(dir) && (include_hidden || !n.hidden))
            .map(|(p, _)| p)
            .collect()
    }

    /// Iterates every `(path, node)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (&WinPath, &FileNode)> {
        self.files.iter()
    }

    /// Total number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the file system holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total content bytes (exfiltration/wipe accounting).
    pub fn total_size(&self) -> usize {
        self.files.values().map(|n| n.data.len()).sum()
    }

    /// Paths (non-hidden unless `include_hidden`) whose final component has
    /// one of `extensions` (case-insensitive).
    pub fn find_by_extension(&self, extensions: &[&str], include_hidden: bool) -> Vec<&WinPath> {
        self.files
            .iter()
            .filter(|(_, n)| include_hidden || !n.hidden)
            .filter(|(p, _)| extensions.iter().any(|e| p.has_extension(e)))
            .map(|(p, _)| p)
            .collect()
    }

    /// Paths that live under any directory whose name matches one of
    /// `folder_names` (case-insensitive) — e.g. Shamoon's target list:
    /// download, document, picture, music, video, desktop.
    pub fn find_under_folders(&self, folder_names: &[&str]) -> Vec<&WinPath> {
        self.files
            .keys()
            .filter(|p| p.components().any(|c| folder_names.iter().any(|f| c.eq_ignore_ascii_case(f))))
            .collect()
    }

    /// Overwrites a file's contents in place (same node, new bytes) —
    /// distinct from `write` because it preserves creation time, matching
    /// what a wiper does.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn overwrite(&mut self, path: &WinPath, bytes: Vec<u8>, now: SimTime) -> Result<(), FsError> {
        let node = self.read_mut(path)?;
        node.data = FileData::Bytes(bytes);
        node.modified = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn bytes(n: usize) -> FileData {
        FileData::Bytes(vec![0xAB; n])
    }

    #[test]
    fn write_read_delete() {
        let mut fs = Vfs::new();
        let p = WinPath::new(r"C:\x\y.txt");
        fs.write(&p, bytes(10), t(1)).unwrap();
        assert!(fs.exists(&p));
        assert_eq!(fs.read(&p).unwrap().data.len(), 10);
        fs.delete(&p).unwrap();
        assert!(!fs.exists(&p));
        assert!(matches!(fs.read(&p), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn write_replaces_and_updates_mtime() {
        let mut fs = Vfs::new();
        let p = WinPath::new(r"C:\f");
        fs.write(&p, bytes(1), t(1)).unwrap();
        fs.write(&p, bytes(2), t(9)).unwrap();
        let node = fs.read(&p).unwrap();
        assert_eq!(node.created, t(1));
        assert_eq!(node.modified, t(9));
        assert_eq!(node.data.len(), 2);
    }

    #[test]
    fn rename_moves_node() {
        let mut fs = Vfs::new();
        let a = WinPath::new(r"C:\s7otbxdx.dll");
        let b = WinPath::new(r"C:\s7otbxsx.dll");
        fs.write(&a, bytes(5), t(1)).unwrap();
        fs.rename(&a, &b, t(2)).unwrap();
        assert!(!fs.exists(&a));
        assert!(fs.exists(&b));
        // Destination occupied
        fs.write(&a, bytes(1), t(3)).unwrap();
        assert!(matches!(fs.rename(&a, &b, t(4)), Err(FsError::Exists { .. })));
    }

    #[test]
    fn hidden_files_are_filtered_from_listings() {
        let mut fs = Vfs::new();
        let visible = WinPath::new(r"C:\dir\a.txt");
        let hidden = WinPath::new(r"C:\dir\rootkit.sys");
        fs.write(&visible, bytes(1), t(1)).unwrap();
        fs.write(&hidden, bytes(1), t(1)).unwrap();
        fs.set_hidden(&hidden, true).unwrap();
        let dir = WinPath::new(r"C:\dir");
        assert_eq!(fs.list(&dir, false).len(), 1);
        assert_eq!(fs.list(&dir, true).len(), 2);
    }

    #[test]
    fn find_by_extension() {
        let mut fs = Vfs::new();
        for p in [r"C:\a.docx", r"C:\b.PPT", r"C:\c.txt", r"C:\d.dwg"] {
            fs.write(&WinPath::new(p), bytes(1), t(1)).unwrap();
        }
        let hits = fs.find_by_extension(&["docx", "ppt", "dwg"], false);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn find_under_folders_matches_shamoon_targets() {
        let mut fs = Vfs::new();
        for p in [
            r"C:\Users\ali\Documents\report.pdf",
            r"C:\Users\ali\Pictures\photo.jpg",
            r"C:\Windows\System32\kernel.dll",
        ] {
            fs.write(&WinPath::new(p), bytes(1), t(1)).unwrap();
        }
        let hits = fs.find_under_folders(&["documents", "pictures", "desktop"]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn overwrite_preserves_creation_time() {
        let mut fs = Vfs::new();
        let p = WinPath::new(r"C:\f");
        fs.write(&p, bytes(100), t(1)).unwrap();
        fs.overwrite(&p, vec![0xFF; 4], t(50)).unwrap();
        let node = fs.read(&p).unwrap();
        assert_eq!(node.created, t(1));
        assert_eq!(node.modified, t(50));
        assert_eq!(node.data, FileData::Bytes(vec![0xFF; 4]));
        assert!(matches!(
            fs.overwrite(&WinPath::new(r"C:\none"), vec![], t(51)),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn totals() {
        let mut fs = Vfs::new();
        fs.write(&WinPath::new(r"C:\a"), bytes(10), t(1)).unwrap();
        fs.write(&WinPath::new(r"C:\b"), bytes(32), t(1)).unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.total_size(), 42);
        assert!(!fs.is_empty());
    }

    #[test]
    fn bad_path_rejected() {
        let mut fs = Vfs::new();
        assert!(matches!(fs.write(&WinPath::new(""), bytes(1), t(1)), Err(FsError::BadPath { .. })));
    }

    #[test]
    fn shortcut_and_autorun_data() {
        let mut fs = Vfs::new();
        let lnk = WinPath::new(r"E:\readme.lnk");
        fs.write(
            &lnk,
            FileData::Shortcut {
                target: WinPath::new(r"E:\docs"),
                exploit_payload: Some(WinPath::new(r"E:\~wtr4132.tmp")),
            },
            t(1),
        )
        .unwrap();
        let FileData::Shortcut { exploit_payload, .. } = &fs.read(&lnk).unwrap().data else { panic!() };
        assert!(exploit_payload.is_some());
    }
}
