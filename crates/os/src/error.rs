//! Errors for the simulated OS.

use std::error::Error;
use std::fmt;

use crate::path::WinPath;

/// File-system operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file at the path.
    NotFound {
        /// The missing path.
        path: WinPath,
    },
    /// Destination already occupied.
    Exists {
        /// The occupied path.
        path: WinPath,
    },
    /// The path has no file name component.
    BadPath {
        /// The malformed path.
        path: WinPath,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "file not found: {path}"),
            FsError::Exists { path } => write!(f, "file already exists: {path}"),
            FsError::BadPath { path } => write!(f, "malformed path: '{path}'"),
        }
    }
}

impl Error for FsError {}

/// Host-level operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// A file-system error.
    Fs(FsError),
    /// Driver load rejected by signing policy.
    DriverRejected {
        /// Driver file name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Raw disk access attempted without a driver granting it.
    RawAccessDenied,
    /// The host is not running (bricked or powered off).
    NotRunning,
    /// A service with this name already exists.
    ServiceExists {
        /// Service name.
        name: String,
    },
    /// No such service.
    ServiceNotFound {
        /// Service name.
        name: String,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Fs(e) => write!(f, "{e}"),
            HostError::DriverRejected { name, reason } => {
                write!(f, "driver '{name}' rejected: {reason}")
            }
            HostError::RawAccessDenied => {
                write!(f, "raw disk access denied for user-mode caller")
            }
            HostError::NotRunning => write!(f, "host is not running"),
            HostError::ServiceExists { name } => write!(f, "service '{name}' already exists"),
            HostError::ServiceNotFound { name } => write!(f, "service '{name}' not found"),
        }
    }
}

impl Error for HostError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HostError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for HostError {
    fn from(e: FsError) -> Self {
        HostError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = FsError::NotFound { path: WinPath::new(r"C:\x") };
        assert!(e.to_string().contains(r"C:\x"));
        let h: HostError = e.into();
        assert!(h.to_string().contains("not found"));
        assert!(HostError::RawAccessDenied.to_string().contains("denied"));
    }

    #[test]
    fn source_chain() {
        let h = HostError::Fs(FsError::BadPath { path: WinPath::new("") });
        assert!(h.source().is_some());
        assert!(HostError::NotRunning.source().is_none());
    }
}
