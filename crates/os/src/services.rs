//! Windows-style services and scheduled tasks.
//!
//! Persistence bookkeeping: Shamoon installs a `TrkSvr` service and a
//! scheduled task to start itself; forensic analysis later reads these
//! tables back out.

use malsim_kernel::time::SimTime;

use crate::error::HostError;
use crate::path::WinPath;

/// A registered service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Service name, e.g. `TrkSvr`.
    pub name: String,
    /// Binary the service runs.
    pub binary: WinPath,
    /// Starts at boot.
    pub autostart: bool,
    /// Currently running.
    pub running: bool,
    /// When the service was created.
    pub created: SimTime,
}

/// A scheduled task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTask {
    /// Task name.
    pub name: String,
    /// Program to run.
    pub command: WinPath,
    /// When it fires (one-shot model; recurring tasks are re-registered by
    /// their owners).
    pub at: SimTime,
    /// When it was registered.
    pub created: SimTime,
}

/// The host's service and task tables.
#[derive(Debug, Clone, Default)]
pub struct ServiceManager {
    services: Vec<Service>,
    tasks: Vec<ScheduledTask>,
}

impl ServiceManager {
    /// Creates empty tables.
    pub fn new() -> Self {
        ServiceManager::default()
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::ServiceExists`] on name collision.
    pub fn create_service(
        &mut self,
        name: impl Into<String>,
        binary: WinPath,
        autostart: bool,
        now: SimTime,
    ) -> Result<(), HostError> {
        let name = name.into();
        if self.services.iter().any(|s| s.name == name) {
            return Err(HostError::ServiceExists { name });
        }
        self.services.push(Service { name, binary, autostart, running: true, created: now });
        Ok(())
    }

    /// Stops and removes a service.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::ServiceNotFound`] if absent.
    pub fn delete_service(&mut self, name: &str) -> Result<Service, HostError> {
        let idx = self
            .services
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| HostError::ServiceNotFound { name: name.to_owned() })?;
        Ok(self.services.remove(idx))
    }

    /// Looks up a service.
    pub fn service(&self, name: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.name == name)
    }

    /// All services.
    pub fn services(&self) -> &[Service] {
        &self.services
    }

    /// Registers a scheduled task.
    pub fn schedule_task(&mut self, name: impl Into<String>, command: WinPath, at: SimTime, now: SimTime) {
        self.tasks.push(ScheduledTask { name: name.into(), command, at, created: now });
    }

    /// All scheduled tasks.
    pub fn tasks(&self) -> &[ScheduledTask] {
        &self.tasks
    }

    /// Removes every service and task (anti-forensics).
    pub fn clear(&mut self) {
        self.services.clear();
        self.tasks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn create_lookup_delete() {
        let mut sm = ServiceManager::new();
        sm.create_service("TrkSvr", WinPath::new(r"C:\Windows\System32\trksvr.exe"), true, t(1)).unwrap();
        assert!(sm.service("TrkSvr").is_some());
        assert!(sm.service("TrkSvr").unwrap().autostart);
        let removed = sm.delete_service("TrkSvr").unwrap();
        assert_eq!(removed.name, "TrkSvr");
        assert!(sm.service("TrkSvr").is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut sm = ServiceManager::new();
        sm.create_service("S", WinPath::new(r"C:\a"), false, t(1)).unwrap();
        assert!(matches!(
            sm.create_service("S", WinPath::new(r"C:\b"), false, t(2)),
            Err(HostError::ServiceExists { .. })
        ));
    }

    #[test]
    fn delete_missing_errors() {
        let mut sm = ServiceManager::new();
        assert!(matches!(sm.delete_service("nope"), Err(HostError::ServiceNotFound { .. })));
    }

    #[test]
    fn tasks_accumulate_and_clear() {
        let mut sm = ServiceManager::new();
        sm.schedule_task("wipe", WinPath::new(r"C:\w.exe"), t(100), t(1));
        sm.schedule_task("report", WinPath::new(r"C:\r.exe"), t(200), t(1));
        assert_eq!(sm.tasks().len(), 2);
        sm.clear();
        assert!(sm.tasks().is_empty());
        assert!(sm.services().is_empty());
    }
}
