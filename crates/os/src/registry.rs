//! A minimal registry: hierarchical string keys to string values.

use std::collections::BTreeMap;

/// The host registry.
///
/// Keys are `\`-separated and case-insensitive, values are strings. Enough
/// to model persistence points and configuration the campaigns touch.
///
/// # Examples
///
/// ```
/// use malsim_os::registry::Registry;
///
/// let mut reg = Registry::new();
/// reg.set(r"HKLM\Software\Proxy", "wpad-enabled");
/// assert_eq!(reg.get(r"hklm\software\proxy"), Some("wpad-enabled"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    values: BTreeMap<String, String>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Sets a value, returning the previous one if present.
    pub fn set(&mut self, key: impl AsRef<str>, value: impl Into<String>) -> Option<String> {
        self.values.insert(key.as_ref().to_lowercase(), value.into())
    }

    /// Reads a value.
    pub fn get(&self, key: impl AsRef<str>) -> Option<&str> {
        self.values.get(&key.as_ref().to_lowercase()).map(String::as_str)
    }

    /// Deletes a value, returning it if present.
    pub fn delete(&mut self, key: impl AsRef<str>) -> Option<String> {
        self.values.remove(&key.as_ref().to_lowercase())
    }

    /// Iterates `(key, value)` pairs under a prefix.
    pub fn under<'a>(&'a self, prefix: &str) -> impl Iterator<Item = (&'a str, &'a str)> {
        let prefix = prefix.to_lowercase();
        self.values.iter().filter(move |(k, _)| k.starts_with(&prefix)).map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Removes everything (anti-forensics).
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete_case_insensitive() {
        let mut r = Registry::new();
        assert_eq!(r.set(r"HKLM\A", "1"), None);
        assert_eq!(r.set(r"hklm\a", "2"), Some("1".into()));
        assert_eq!(r.get(r"HKLM\a"), Some("2"));
        assert_eq!(r.delete(r"HKLM\A"), Some("2".into()));
        assert!(r.is_empty());
    }

    #[test]
    fn prefix_iteration() {
        let mut r = Registry::new();
        r.set(r"HKLM\Run\a", "x");
        r.set(r"HKLM\Run\b", "y");
        r.set(r"HKCU\Other", "z");
        assert_eq!(r.under(r"hklm\run").count(), 2);
        assert_eq!(r.len(), 3);
    }
}
