//! Security bulletins and per-host patch state.
//!
//! The paper's Stuxnet section enumerates four zero-days by bulletin id;
//! Flame reused the LNK vector and was killed off by advisory 2718704. We
//! model patch state as the set of bulletins applied to a host: an exploit
//! "fires" exactly when its delivery precondition is met *and* the matching
//! bulletin is absent.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A security fix identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bulletin {
    /// Windows Shell shortcut-icon parsing (the LNK vector).
    Ms10_046,
    /// Print spooler service remote code execution.
    Ms10_061,
    /// Kernel-mode driver privilege escalation.
    Ms10_073,
    /// Task scheduler privilege escalation.
    Ms10_092,
    /// Moves the leveraged signing certificates to the untrusted store and
    /// closes the weak-hash code-signing path.
    Advisory2718704,
}

impl Bulletin {
    /// All bulletins modelled.
    pub const ALL: [Bulletin; 5] = [
        Bulletin::Ms10_046,
        Bulletin::Ms10_061,
        Bulletin::Ms10_073,
        Bulletin::Ms10_092,
        Bulletin::Advisory2718704,
    ];
}

impl fmt::Display for Bulletin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Bulletin::Ms10_046 => "MS10-046",
            Bulletin::Ms10_061 => "MS10-061",
            Bulletin::Ms10_073 => "MS10-073",
            Bulletin::Ms10_092 => "MS10-092",
            Bulletin::Advisory2718704 => "Advisory-2718704",
        };
        f.write_str(s)
    }
}

/// The set of bulletins applied to a host.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchState {
    applied: BTreeSet<Bulletin>,
}

impl PatchState {
    /// A fully unpatched host (the 2010 baseline the zero-days met).
    pub fn unpatched() -> Self {
        PatchState::default()
    }

    /// A host with every modelled bulletin applied.
    pub fn fully_patched() -> Self {
        PatchState { applied: Bulletin::ALL.into_iter().collect() }
    }

    /// Applies a bulletin.
    pub fn apply(&mut self, bulletin: Bulletin) {
        self.applied.insert(bulletin);
    }

    /// Whether the host is vulnerable (bulletin absent).
    pub fn is_vulnerable_to(&self, bulletin: Bulletin) -> bool {
        !self.applied.contains(&bulletin)
    }

    /// Number of applied bulletins.
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpatched_is_vulnerable_to_everything() {
        let p = PatchState::unpatched();
        for b in Bulletin::ALL {
            assert!(p.is_vulnerable_to(b), "{b}");
        }
    }

    #[test]
    fn applying_closes_vulnerability() {
        let mut p = PatchState::unpatched();
        p.apply(Bulletin::Ms10_046);
        assert!(!p.is_vulnerable_to(Bulletin::Ms10_046));
        assert!(p.is_vulnerable_to(Bulletin::Ms10_061));
        assert_eq!(p.applied_count(), 1);
    }

    #[test]
    fn fully_patched_resists_all() {
        let p = PatchState::fully_patched();
        assert!(Bulletin::ALL.iter().all(|&b| !p.is_vulnerable_to(b)));
        assert_eq!(p.applied_count(), Bulletin::ALL.len());
    }

    #[test]
    fn display_names_match_bulletin_ids() {
        assert_eq!(Bulletin::Ms10_046.to_string(), "MS10-046");
        assert_eq!(Bulletin::Advisory2718704.to_string(), "Advisory-2718704");
    }
}
