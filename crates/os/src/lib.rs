//! # malsim-os
//!
//! A simulated Windows host model for the `malsim` workspace.
//!
//! The campaigns the paper dissects act almost entirely through ordinary OS
//! state transitions: dropping files into `%system%`, renaming a vendor DLL,
//! creating services and scheduled tasks, loading signed kernel drivers, and
//! — in Shamoon's case — writing raw sectors over the MBR. This crate gives
//! those transitions explicit, observable objects:
//!
//! - [`path::WinPath`] — case-insensitive Windows-style paths with
//!   `%system%`-style expansion;
//! - [`fs::Vfs`] — the file system, with typed contents ([`fs::FileData`]:
//!   bytes, executables, shortcuts with optional LNK-exploit payloads,
//!   autorun manifests), hidden attributes, and wipe-aware operations;
//! - [`registry::Registry`], [`services::ServiceManager`] — persistence
//!   surfaces;
//! - [`disk::Disk`] — MBR, partitions, and raw sectors;
//! - [`patches::PatchState`] — which security bulletins a host has applied
//!   (exploits fire only against missing bulletins);
//! - [`usb::UsbDrive`] — removable media, including Flame's hidden
//!   exfiltration database;
//! - [`host::Host`] — the assembly, including the driver-signing policy
//!   (via `malsim-certs`) and the raw-disk capability model.
//!
//! # Examples
//!
//! ```
//! use malsim_kernel::time::SimTime;
//! use malsim_os::prelude::*;
//!
//! let now = SimTime::from_utc(2012, 8, 1, 0, 0, 0);
//! let mut host = Host::new("office-pc", WindowsVersion::Seven, HostRole::Workstation, now);
//!
//! // Drop a file where a dropper would.
//! let target = WinPath::expand(r"%system%\netinit.exe");
//! host.fs.write(&target, FileData::Bytes(vec![0; 900 * 1024]), now)?;
//! assert!(host.fs.exists(&target));
//!
//! // Raw disk writes need a capability-granting driver.
//! assert!(host.write_raw_sectors(0, &[0u8; 512], false).is_err());
//! # Ok::<(), malsim_os::error::FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod fs;
pub mod host;
pub mod patches;
pub mod path;
pub mod registry;
pub mod services;
pub mod usb;

/// Commonly used items.
pub mod prelude {
    pub use crate::disk::Disk;
    pub use crate::error::{FsError, HostError};
    pub use crate::fs::{FileData, FileNode, Vfs};
    pub use crate::host::{Host, HostConfig, HostId, HostRole, HostState, LoadedDriver, WindowsVersion};
    pub use crate::patches::{Bulletin, PatchState};
    pub use crate::path::WinPath;
    pub use crate::registry::Registry;
    pub use crate::services::{ScheduledTask, Service, ServiceManager};
    pub use crate::usb::{HiddenRecord, UsbDrive, UsbId};
}
