//! Windows-style paths for the simulated file system.
//!
//! Paths are backslash-separated, case-insensitive (comparisons fold to
//! lowercase, display preserves the original casing), and support the small
//! set of environment expansions the modelled campaigns rely on
//! (`%system%`, `%windir%`, `%temp%`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A normalized Windows-style path.
///
/// # Examples
///
/// ```
/// use malsim_os::path::WinPath;
///
/// let p = WinPath::new(r"C:\Windows\System32\s7otbxdx.dll");
/// assert_eq!(p.file_name(), Some("s7otbxdx.dll"));
/// assert_eq!(p.extension(), Some("dll"));
/// assert!(p.starts_with(&WinPath::new(r"c:\windows")));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WinPath {
    display: String,
    folded: String,
}

impl WinPath {
    /// Creates a path, normalizing separators (`/` → `\`) and collapsing
    /// repeated separators and trailing separators.
    pub fn new(raw: impl AsRef<str>) -> Self {
        let raw = raw.as_ref().replace('/', "\\");
        let mut parts: Vec<&str> = raw.split('\\').filter(|s| !s.is_empty()).collect();
        if parts.is_empty() {
            parts.push("");
        }
        let display = parts.join("\\");
        let folded = display.to_lowercase();
        WinPath { display, folded }
    }

    /// Expands `%system%`, `%windir%`, and `%temp%` then normalizes.
    pub fn expand(raw: impl AsRef<str>) -> Self {
        let s = raw
            .as_ref()
            .replace("%system%", r"C:\Windows\System32")
            .replace("%windir%", r"C:\Windows")
            .replace("%temp%", r"C:\Windows\Temp");
        WinPath::new(s)
    }

    /// The display form (original casing).
    pub fn as_str(&self) -> &str {
        &self.display
    }

    /// Appends a component.
    pub fn join(&self, component: impl AsRef<str>) -> WinPath {
        WinPath::new(format!("{}\\{}", self.display, component.as_ref()))
    }

    /// The parent path, or `None` at a root.
    pub fn parent(&self) -> Option<WinPath> {
        let idx = self.display.rfind('\\')?;
        Some(WinPath::new(&self.display[..idx]))
    }

    /// The final component.
    pub fn file_name(&self) -> Option<&str> {
        self.display.rsplit('\\').next().filter(|s| !s.is_empty())
    }

    /// The extension of the final component, lowercased at lookup sites via
    /// case-insensitive comparison (returned as written).
    pub fn extension(&self) -> Option<&str> {
        let name = self.file_name()?;
        let idx = name.rfind('.')?;
        if idx + 1 == name.len() {
            None
        } else {
            Some(&name[idx + 1..])
        }
    }

    /// Whether this path equals or descends from `prefix` (case-insensitive).
    pub fn starts_with(&self, prefix: &WinPath) -> bool {
        self.folded == prefix.folded || self.folded.starts_with(&format!("{}\\", prefix.folded))
    }

    /// Case-insensitive extension check, e.g. `has_extension("docx")`.
    pub fn has_extension(&self, ext: &str) -> bool {
        self.extension().is_some_and(|e| e.eq_ignore_ascii_case(ext))
    }

    /// The case-folded form used as a map key.
    pub fn key(&self) -> &str {
        &self.folded
    }

    /// Path components in order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.display.split('\\')
    }
}

impl PartialEq for WinPath {
    fn eq(&self, other: &Self) -> bool {
        self.folded == other.folded
    }
}

impl Eq for WinPath {}

impl PartialOrd for WinPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WinPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.folded.cmp(&other.folded)
    }
}

impl std::hash::Hash for WinPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.folded.hash(state);
    }
}

impl fmt::Display for WinPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display)
    }
}

impl From<&str> for WinPath {
    fn from(s: &str) -> Self {
        WinPath::new(s)
    }
}

impl From<String> for WinPath {
    fn from(s: String) -> Self {
        WinPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(WinPath::new("C:/a//b\\").as_str(), r"C:\a\b");
        assert_eq!(WinPath::new(r"C:\a\b"), WinPath::new("c:/A/B"));
    }

    #[test]
    fn join_and_parent() {
        let p = WinPath::new(r"C:\Windows").join("System32").join("drivers");
        assert_eq!(p.as_str(), r"C:\Windows\System32\drivers");
        assert_eq!(p.parent().unwrap().as_str(), r"C:\Windows\System32");
        assert_eq!(WinPath::new("C:").parent(), None);
    }

    #[test]
    fn file_name_and_extension() {
        let p = WinPath::new(r"C:\docs\Plan.DOCX");
        assert_eq!(p.file_name(), Some("Plan.DOCX"));
        assert_eq!(p.extension(), Some("DOCX"));
        assert!(p.has_extension("docx"));
        assert!(!p.has_extension("pdf"));
        assert_eq!(WinPath::new(r"C:\noext").extension(), None);
        assert_eq!(WinPath::new(r"C:\trailing.").extension(), None);
    }

    #[test]
    fn starts_with_is_component_wise() {
        let base = WinPath::new(r"C:\data");
        assert!(WinPath::new(r"C:\data\x").starts_with(&base));
        assert!(WinPath::new(r"C:\DATA").starts_with(&base));
        assert!(!WinPath::new(r"C:\database").starts_with(&base));
    }

    #[test]
    fn env_expansion() {
        assert_eq!(WinPath::expand(r"%system%\netinit.exe").as_str(), r"C:\Windows\System32\netinit.exe");
        assert_eq!(WinPath::expand(r"%windir%\x").as_str(), r"C:\Windows\x");
        assert_eq!(WinPath::expand(r"%temp%\f").as_str(), r"C:\Windows\Temp\f");
    }

    #[test]
    fn hash_respects_case_insensitive_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(WinPath::new(r"C:\A"));
        assert!(set.contains(&WinPath::new(r"c:\a")));
    }
}
