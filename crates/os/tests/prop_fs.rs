//! Property tests for the simulated file system and path model.

use malsim_kernel::time::SimTime;
use malsim_os::fs::{FileData, Vfs};
use malsim_os::path::WinPath;
use proptest::prelude::*;

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_]{1,8}(\\.[a-z]{1,4})?", 1..5)
        .prop_map(|parts| format!(r"C:\{}", parts.join(r"\")))
}

proptest! {
    #[test]
    fn path_normalization_is_idempotent(raw in "[a-zA-Z0-9_\\\\./]{1,60}") {
        let once = WinPath::new(&raw);
        let twice = WinPath::new(once.as_str());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn path_case_insensitive_equality(p in path_strategy()) {
        prop_assert_eq!(WinPath::new(&p), WinPath::new(p.to_uppercase()));
        prop_assert_eq!(WinPath::new(&p), WinPath::new(p.to_lowercase()));
    }

    #[test]
    fn join_then_parent_roundtrips(p in path_strategy(), child in "[a-z0-9]{1,8}") {
        let base = WinPath::new(&p);
        let joined = base.join(&child);
        prop_assert_eq!(joined.parent().unwrap(), base.clone());
        prop_assert_eq!(joined.file_name().unwrap(), child.as_str());
        prop_assert!(joined.starts_with(&base));
    }

    #[test]
    fn vfs_write_read_consistency(
        ops in proptest::collection::vec(
            (path_strategy(), proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()),
            1..40,
        )
    ) {
        let mut fs = Vfs::new();
        let mut model: std::collections::HashMap<String, Vec<u8>> = Default::default();
        let mut clock = 0u64;
        for (path, bytes, delete) in ops {
            clock += 1;
            let p = WinPath::new(&path);
            let key = p.key().to_owned();
            if delete && model.contains_key(&key) {
                fs.delete(&p).unwrap();
                model.remove(&key);
            } else {
                fs.write(&p, FileData::Bytes(bytes.clone()), SimTime::from_millis(clock)).unwrap();
                model.insert(key, bytes);
            }
        }
        prop_assert_eq!(fs.len(), model.len());
        for (key, bytes) in &model {
            let node = fs.read(&WinPath::new(key)).unwrap();
            prop_assert_eq!(&node.data, &FileData::Bytes(bytes.clone()));
        }
        let total: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(fs.total_size(), total);
    }

    #[test]
    fn listing_respects_hidden_partition(
        files in proptest::collection::btree_map(path_strategy(), any::<bool>(), 1..30)
    ) {
        let mut fs = Vfs::new();
        for (path, hidden) in &files {
            let p = WinPath::new(path);
            fs.write(&p, FileData::Bytes(vec![1]), SimTime::EPOCH).unwrap();
            fs.set_hidden(&p, *hidden).unwrap();
        }
        let root = WinPath::new("C:");
        let visible = fs.list(&root, false).len();
        let all = fs.list(&root, true).len();
        prop_assert_eq!(all, fs.len());
        let hidden_count = fs.iter().filter(|(_, n)| n.hidden).count();
        prop_assert_eq!(visible + hidden_count, all);
    }

    #[test]
    fn extension_search_agrees_with_path_predicate(paths in proptest::collection::vec(path_strategy(), 1..30)) {
        let mut fs = Vfs::new();
        for p in &paths {
            fs.write(&WinPath::new(p), FileData::Bytes(vec![]), SimTime::EPOCH).unwrap();
        }
        let hits = fs.find_by_extension(&["docx", "txt"], true).len();
        let expected = fs
            .iter()
            .filter(|(p, _)| p.has_extension("docx") || p.has_extension("txt"))
            .count();
        prop_assert_eq!(hits, expected);
    }
}
