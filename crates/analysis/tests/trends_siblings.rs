//! The trend matrix includes the lineage siblings only when their campaigns
//! saw activity, and derives their §I-claimed properties.

use malsim_analysis::trends::derive_profiles;
use malsim_kernel::metrics::Metrics;
use malsim_kernel::time::SimTime;
use malsim_malware::common::Family;
use malsim_malware::siblings::{duqu, gauss};
use malsim_malware::world::{World, WorldSim};
use malsim_os::host::{Host, HostId, HostRole, WindowsVersion};

fn two_host_world() -> (World, WorldSim, HostId, HostId) {
    let mut world = World::new();
    let sim = WorldSim::new(SimTime::from_utc(2011, 9, 1, 0, 0, 0), 3);
    let zone = world.topology.add_zone("lan", true);
    let a = world.hosts.push(Host::new("target-1", WindowsVersion::Seven, HostRole::Workstation, sim.now()));
    let b = world.hosts.push(Host::new("bystander", WindowsVersion::Xp, HostRole::Workstation, sim.now()));
    world.topology.place(a, zone);
    world.topology.place(b, zone);
    (world, sim, a, b)
}

#[test]
fn quiet_siblings_are_absent_from_the_matrix() {
    let world = World::new();
    let profiles = derive_profiles(&world, &Metrics::new());
    assert_eq!(profiles.len(), 3, "only the three dissected families by default");
    assert!(!profiles.iter().any(|p| p.family == Family::Duqu || p.family == Family::Gauss));
}

#[test]
fn active_duqu_appears_with_lineage_properties() {
    let (mut world, mut sim, a, _b) = two_host_world();
    world.campaigns.duqu.target_list = vec!["target-1".into()];
    assert!(duqu::infect_if_targeted(&mut world, &mut sim, a, "spearphish"));
    let profiles = derive_profiles(&world, &sim.metrics);
    assert_eq!(profiles.len(), 4);
    let d = profiles.iter().find(|p| p.family == Family::Duqu).unwrap();
    assert_eq!(d.infections, 1);
    assert!(d.targeted, "explicit target list");
    assert_eq!(d.modular_updates, 1, "one unique build per infection");
    assert!(d.certified);
}

#[test]
fn active_gauss_appears_with_keyed_payload_targeting() {
    let (mut world, mut sim, a, b) = two_host_world();
    let payload = gauss::build_keyed_payload(&world.hosts[a], b"module");
    world.campaigns.gauss.keyed_payload = Some(payload);
    gauss::infect_host(&mut world, &mut sim, a, "usb-autorun");
    gauss::infect_host(&mut world, &mut sim, b, "usb-autorun");
    let profiles = derive_profiles(&world, &sim.metrics);
    let g = profiles.iter().find(|p| p.family == Family::Gauss).unwrap();
    assert_eq!(g.infections, 2);
    assert!(g.targeted, "keyed payload is the targeting mechanism");
    assert!(g.usb_vector);
    // The payload detonated on exactly the intended host.
    assert_eq!(sim.metrics.counter("gauss.payload_detonations"), 1);
}

#[test]
fn expired_duqu_implants_count_as_suicides() {
    use malsim_kernel::time::SimDuration;
    let (mut world, mut sim, a, _b) = two_host_world();
    world.campaigns.duqu.target_list = vec!["target-1".into()];
    duqu::infect_if_targeted(&mut world, &mut sim, a, "spearphish");
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(duqu::LIFETIME_DAYS + 1));
    let profiles = derive_profiles(&world, &sim.metrics);
    let d = profiles.iter().find(|p| p.family == Family::Duqu).unwrap();
    assert_eq!(d.suicides, 1);
    assert_eq!(d.infections, 1, "expired implants still count as infections");
}
