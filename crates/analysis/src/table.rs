//! Plain-text table rendering for experiment outputs.
//!
//! Benches and examples print paper-style rows; this keeps the formatting in
//! one place and testable.

use std::fmt;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use malsim_analysis::table::Table;
///
/// let mut t = Table::new(vec!["family".into(), "infections".into()]);
/// t.row(vec!["stuxnet".into(), "42".into()]);
/// let s = t.to_string();
/// assert!(s.contains("stuxnet"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        line(f, &self.headers)?;
        rule(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        rule(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("| xxxxx | 1    |"));
        assert!(s.contains("| y     | 22   |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(vec![]);
    }
}
