//! # malsim-analysis
//!
//! Analysis instruments for `malsim` campaign runs — the reproduced paper's
//! §V ("Recent Malware Trends") turned into measurable quantities.
//!
//! - [`trends`] — derives the six-trend comparison matrix (sophistication,
//!   targeting, certificates, modularity, USB, suicide) from what actually
//!   happened in a run, per family;
//! - [`timeline`] — reconstructs campaign milestones from the trace log and
//!   computes latencies (notably detection latency, the stealth metric);
//! - [`table`] — plain-text tables for experiment output.
//!
//! # Examples
//!
//! ```
//! use malsim_analysis::timeline::Timeline;
//! use malsim_kernel::prelude::*;
//!
//! let mut log = TraceLog::new();
//! log.record(SimTime::EPOCH, TraceCategory::Infection, "host:a", "patient zero");
//! let tl = Timeline::from_trace(&log);
//! assert!(tl.get("first-infection").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;
pub mod timeline;
pub mod trends;

/// Commonly used items.
pub mod prelude {
    pub use crate::table::Table;
    pub use crate::timeline::{causal_chains, spread_stats, Milestone, SpreadStats, Timeline};
    pub use crate::trends::{derive_profiles, trend_table, TrendProfile};
}
