//! Campaign-timeline reconstruction from the simulation trace.
//!
//! The forensic counterpart to the trace log: given a finished run, rebuild
//! the narrative an incident-response team would produce — first compromise,
//! spread milestones, first defensive signal, destruction window, and
//! suicide events — and compute latency statistics between them.

use malsim_kernel::span::SpanLog;
use malsim_kernel::time::{SimDuration, SimTime};
use malsim_kernel::trace::{TraceCategory, TraceLog};

/// A reconstructed milestone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Milestone {
    /// When it happened.
    pub time: SimTime,
    /// Short label, e.g. `"first-infection"`.
    pub label: String,
    /// The underlying trace message.
    pub detail: String,
}

/// The reconstructed timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Milestones in chronological order.
    pub milestones: Vec<Milestone>,
}

impl Timeline {
    /// Builds a timeline from a trace.
    pub fn from_trace(trace: &TraceLog) -> Timeline {
        let mut milestones = Vec::new();
        let mut push_first = |cat: TraceCategory, label: &str| {
            if let Some(e) = trace.first_of(cat) {
                milestones.push(Milestone {
                    time: e.time,
                    label: label.to_owned(),
                    detail: e.message.clone(),
                });
            }
        };
        push_first(TraceCategory::Infection, "first-infection");
        push_first(TraceCategory::CommandControl, "first-c2-contact");
        push_first(TraceCategory::Exfiltration, "first-exfiltration");
        push_first(TraceCategory::Scada, "first-ics-activity");
        push_first(TraceCategory::Destruction, "first-destruction");
        push_first(TraceCategory::Defense, "first-defensive-signal");
        push_first(TraceCategory::Suicide, "suicide");
        milestones.sort_by_key(|m| m.time);
        Timeline { milestones }
    }

    /// Builds a timeline from a span log: the same milestone labels as
    /// [`Timeline::from_trace`], reconstructed from the first span of each
    /// category instead of the first trace event. Works on runs whose trace
    /// retention was capped or disabled but whose spans were kept.
    pub fn from_spans(spans: &SpanLog) -> Timeline {
        let mut milestones = Vec::new();
        let mut push_first = |cat: TraceCategory, label: &str| {
            if let Some(s) = spans.of(cat).min_by_key(|s| (s.start, s.id)) {
                milestones.push(Milestone {
                    time: s.start,
                    label: label.to_owned(),
                    detail: format!("{} @ {}", s.name, s.actor),
                });
            }
        };
        push_first(TraceCategory::Infection, "first-infection");
        push_first(TraceCategory::CommandControl, "first-c2-contact");
        push_first(TraceCategory::Exfiltration, "first-exfiltration");
        push_first(TraceCategory::Scada, "first-ics-activity");
        push_first(TraceCategory::Destruction, "first-destruction");
        push_first(TraceCategory::Defense, "first-defensive-signal");
        push_first(TraceCategory::Suicide, "suicide");
        milestones.sort_by_key(|m| m.time);
        Timeline { milestones }
    }

    /// Finds a milestone by label.
    pub fn get(&self, label: &str) -> Option<&Milestone> {
        self.milestones.iter().find(|m| m.label == label)
    }

    /// Latency between two milestones, if both exist and are ordered.
    pub fn latency(&self, from: &str, to: &str) -> Option<SimDuration> {
        let a = self.get(from)?.time;
        let b = self.get(to)?.time;
        if b >= a {
            Some(b - a)
        } else {
            None
        }
    }

    /// Detection latency: first infection → first defensive signal. `None`
    /// when the campaign was never noticed — the stealth success case.
    pub fn detection_latency(&self) -> Option<SimDuration> {
        self.latency("first-infection", "first-defensive-signal")
    }

    /// Renders the timeline one milestone per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.milestones {
            out.push_str(&format!("{}  {:<24} {}\n", m.time, m.label, m.detail));
        }
        out
    }
}

/// Renders the causal chain of every Exfiltration and Destruction span back
/// to its root — the incident-response "how did this happen" view. Each line
/// walks leaf → root via parent links:
///
/// ```text
/// overspeed-strike @ plant:natanz-a26  <=  plc-implant @ host:eng-station  <=  infection @ host:eng-station
/// ```
pub fn causal_chains(spans: &SpanLog) -> String {
    let mut out = String::new();
    for cat in [TraceCategory::Exfiltration, TraceCategory::Destruction] {
        for leaf in spans.of(cat) {
            let chain = spans.chain(leaf.id);
            let line: Vec<String> = chain.iter().map(|s| format!("{} @ {}", s.name, s.actor)).collect();
            out.push_str(&line.join("  <=  "));
            out.push('\n');
        }
    }
    out
}

/// Infection-curve statistics computed from a counter series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadStats {
    /// Final infected count.
    pub final_count: f64,
    /// Time from the first to the last new infection.
    pub spread_window: SimDuration,
    /// Peak new infections within any single series interval.
    pub peak_rate: f64,
}

/// Computes spread statistics from an `infected`-style monotone series.
pub fn spread_stats(points: &[(SimTime, f64)]) -> Option<SpreadStats> {
    let (first_t, _) = *points.first()?;
    let (last_t, last_v) = *points.last()?;
    let mut peak: f64 = 0.0;
    for pair in points.windows(2) {
        peak = peak.max(pair[1].1 - pair[0].1);
    }
    Some(SpreadStats { final_count: last_v, spread_window: last_t - first_t, peak_rate: peak.max(0.0) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_trace() -> TraceLog {
        let mut log = TraceLog::new();
        log.record(t(1_000), TraceCategory::Infection, "host:a", "seeded");
        log.record(t(2_000), TraceCategory::Infection, "host:b", "spread");
        log.record(t(3_000), TraceCategory::CommandControl, "host:a", "beacon");
        log.record(t(9_000), TraceCategory::Defense, "ids", "alert");
        log.record(t(12_000), TraceCategory::Suicide, "host:a", "gone");
        log
    }

    #[test]
    fn milestones_are_first_occurrences_in_order() {
        let tl = Timeline::from_trace(&sample_trace());
        assert_eq!(tl.milestones.len(), 4);
        assert_eq!(tl.get("first-infection").unwrap().time, t(1_000));
        assert_eq!(tl.get("first-infection").unwrap().detail, "seeded");
        let labels: Vec<&str> = tl.milestones.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, vec!["first-infection", "first-c2-contact", "first-defensive-signal", "suicide"]);
    }

    #[test]
    fn latencies() {
        let tl = Timeline::from_trace(&sample_trace());
        assert_eq!(tl.detection_latency(), Some(SimDuration::from_millis(8_000)));
        assert_eq!(tl.latency("first-c2-contact", "suicide"), Some(SimDuration::from_millis(9_000)));
        assert_eq!(tl.latency("suicide", "first-infection"), None, "reversed order");
        assert_eq!(tl.latency("absent", "suicide"), None);
    }

    #[test]
    fn undetected_campaign_has_no_latency() {
        let mut log = TraceLog::new();
        log.record(t(1), TraceCategory::Infection, "h", "x");
        let tl = Timeline::from_trace(&log);
        assert_eq!(tl.detection_latency(), None);
    }

    #[test]
    fn spread_statistics() {
        let pts = vec![(t(0), 1.0), (t(100), 4.0), (t(200), 5.0), (t(500), 30.0)];
        let s = spread_stats(&pts).unwrap();
        assert_eq!(s.final_count, 30.0);
        assert_eq!(s.spread_window, SimDuration::from_millis(500));
        assert_eq!(s.peak_rate, 25.0);
        assert!(spread_stats(&[]).is_none());
    }

    #[test]
    fn render_contains_labels() {
        let tl = Timeline::from_trace(&sample_trace());
        let s = tl.render();
        assert!(s.contains("first-infection"));
        assert!(s.contains("suicide"));
    }

    fn sample_spans() -> SpanLog {
        let mut spans = SpanLog::new();
        let root = spans.open(t(1_000), TraceCategory::Infection, "host:a", "infection", None);
        let c2 = spans.open(t(3_000), TraceCategory::CommandControl, "host:a", "beacon", Some(root));
        let exfil = spans.open(t(4_000), TraceCategory::Exfiltration, "host:a", "exfil-upload", Some(c2));
        spans.close(exfil, t(4_000));
        spans.close(c2, t(5_000));
        spans.close(root, t(9_000));
        spans
    }

    #[test]
    fn span_timeline_matches_trace_milestones() {
        let tl = Timeline::from_spans(&sample_spans());
        let labels: Vec<&str> = tl.milestones.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, vec!["first-infection", "first-c2-contact", "first-exfiltration"]);
        assert_eq!(tl.get("first-infection").unwrap().time, t(1_000));
        assert_eq!(tl.get("first-exfiltration").unwrap().detail, "exfil-upload @ host:a");
        assert_eq!(
            tl.latency("first-infection", "first-exfiltration"),
            Some(SimDuration::from_millis(3_000))
        );
    }

    #[test]
    fn causal_chains_walk_back_to_the_root() {
        let rendered = causal_chains(&sample_spans());
        assert_eq!(rendered.trim(), "exfil-upload @ host:a  <=  beacon @ host:a  <=  infection @ host:a");
        assert_eq!(causal_chains(&SpanLog::new()), "");
    }
}
