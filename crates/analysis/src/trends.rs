//! The Section-V trend matrix, derived from simulation state.
//!
//! The paper's §V enumerates six trends shared by the campaigns:
//! sophistication, targeting, certificate abuse, modularity, USB spreading,
//! and suicide capability. Instead of hardcoding the paper's qualitative
//! table, experiment E10 *derives* each cell from what actually happened in
//! a run — infection vectors used, certificates presented, modules updated,
//! suicides executed — so the matrix doubles as a regression check on the
//! campaign models.

use malsim_kernel::metrics::Metrics;
use malsim_malware::common::Family;
use malsim_malware::world::World;

use crate::table::Table;

/// One family's derived trend profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendProfile {
    /// Which family.
    pub family: Family,
    /// Distinct zero-day (bulletin-gated) vectors observed in infections.
    pub zero_day_vectors: usize,
    /// Total infections recorded.
    pub infections: usize,
    /// Whether a targeting predicate gated the payload (observed dormancy
    /// or strict trigger conditions).
    pub targeted: bool,
    /// Whether signed/certified components were used (stolen, forged, or
    /// borrowed certificates).
    pub certified: bool,
    /// Whether modules were updated in the field.
    pub modular_updates: u64,
    /// Whether USB media participated in spreading or exfiltration.
    pub usb_vector: bool,
    /// Suicides executed.
    pub suicides: u64,
    /// A 0–10 sophistication score aggregating the above.
    pub sophistication: f64,
}

impl TrendProfile {
    fn score(&self) -> f64 {
        let mut s = 0.0;
        s += (self.zero_day_vectors as f64).min(4.0); // up to 4 points
        if self.targeted {
            s += 2.0;
        }
        if self.certified {
            s += 1.5;
        }
        if self.modular_updates > 0 {
            s += 1.5;
        }
        if self.usb_vector {
            s += 0.5;
        }
        if self.suicides > 0 {
            s += 0.5;
        }
        s.min(10.0)
    }
}

/// Derives the per-family trend profiles from a finished run.
pub fn derive_profiles(world: &World, metrics: &Metrics) -> Vec<TrendProfile> {
    let mut out = Vec::new();

    // --- Stuxnet ---
    {
        let st = &world.campaigns.stuxnet;
        let mut vectors: Vec<&str> = st.infections.values().map(|r| r.vector.as_str()).collect();
        vectors.sort_unstable();
        vectors.dedup();
        let zero_day_vectors = vectors.iter().filter(|v| ["usb-lnk", "spooler"].contains(*v)).count();
        let mut p = TrendProfile {
            family: Family::Stuxnet,
            zero_day_vectors,
            infections: st.infections.len(),
            targeted: metrics.counter("stuxnet.plc_checked_dormant") > 0
                || metrics.counter("stuxnet.plc_implanted") > 0,
            certified: st.stolen_driver_signature.is_some() && !st.rootkit_hosts.is_empty(),
            modular_updates: st.candc.updates_served,
            usb_vector: st.infections.values().any(|r| r.vector == "usb-lnk"),
            suicides: 0,
            sophistication: 0.0,
        };
        p.sophistication = p.score();
        out.push(p);
    }

    // --- Flame ---
    {
        let infected_now = world.campaigns.flame_clients.len();
        let total = metrics.counter("flame.infections") as usize;
        let mut p = TrendProfile {
            family: Family::Flame,
            zero_day_vectors: usize::from(metrics.counter("flame.mitm_infections") > 0),
            infections: total.max(infected_now),
            targeted: true, // spread requires an operator-armed credential per zone
            certified: world.campaigns.flame_platform.as_ref().is_some_and(|p| p.forged_update.is_some()),
            modular_updates: metrics.counter("flame.module_updates"),
            usb_vector: metrics.counter("flame.usb_stashed") > 0
                || metrics.counter("flame.usb_ferried_uploads") > 0,
            suicides: metrics.counter("flame.suicides"),
            sophistication: 0.0,
        };
        p.sophistication = p.score();
        out.push(p);
    }

    // --- Shamoon ---
    {
        let sh = &world.campaigns.shamoon;
        let mut p = TrendProfile {
            family: Family::Shamoon,
            zero_day_vectors: 0, // spreads by credential abuse, not exploits
            infections: sh.infections.len(),
            targeted: sh.trigger_at.is_some(), // date-armed, org-specific
            certified: sh.signed_disk_driver.is_some(),
            modular_updates: 0,
            usb_vector: false,
            suicides: 0,
            sophistication: 0.0,
        };
        p.sophistication = p.score();
        out.push(p);
    }

    // --- Siblings (only when their campaigns saw activity) ---
    {
        let duqu = &world.campaigns.duqu;
        if !duqu.implants.is_empty() || duqu.expired > 0 {
            let mut p = TrendProfile {
                family: Family::Duqu,
                zero_day_vectors: 1, // the documented kernel zero-day delivery
                infections: duqu.implants.len() + duqu.expired as usize,
                targeted: !duqu.target_list.is_empty(),
                certified: true, // stolen-certificate driver, per the lineage
                // "Extreme modularity": every infection is its own build.
                modular_updates: (duqu.implants.len() + duqu.expired as usize) as u64,
                usb_vector: false,
                suicides: duqu.expired,
                sophistication: 0.0,
            };
            p.sophistication = p.score();
            out.push(p);
        }
    }
    {
        let gauss = &world.campaigns.gauss;
        if !gauss.infections.is_empty() {
            let mut p = TrendProfile {
                family: Family::Gauss,
                zero_day_vectors: usize::from(
                    gauss.infections.values().any(|i| i.record.vector.contains("usb")),
                ),
                infections: gauss.infections.len(),
                targeted: gauss.keyed_payload.is_some(),
                certified: false,
                modular_updates: 0,
                usb_vector: gauss.infections.values().any(|i| i.record.vector.contains("usb")),
                suicides: 0,
                sophistication: 0.0,
            };
            p.sophistication = p.score();
            out.push(p);
        }
    }
    out
}

/// Renders the trend matrix as the paper-style comparison table.
pub fn trend_table(profiles: &[TrendProfile]) -> Table {
    let mut t = Table::new(vec![
        "family".into(),
        "infections".into(),
        "0-day vectors".into(),
        "targeted".into(),
        "certified".into(),
        "module updates".into(),
        "usb".into(),
        "suicides".into(),
        "sophistication".into(),
    ]);
    for p in profiles {
        t.row(vec![
            p.family.to_string(),
            p.infections.to_string(),
            p.zero_day_vectors.to_string(),
            yes_no(p.targeted),
            yes_no(p.certified),
            p.modular_updates.to_string(),
            yes_no(p.usb_vector),
            p.suicides.to_string(),
            format!("{:.1}", p.sophistication),
        ]);
    }
    t
}

fn yes_no(v: bool) -> String {
    if v {
        "yes".to_owned()
    } else {
        "no".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::time::SimTime;
    use malsim_malware::common::InfectionRecord;
    use malsim_os::host::HostId;

    #[test]
    fn empty_world_yields_three_zeroed_profiles() {
        let world = World::new();
        let metrics = Metrics::new();
        let profiles = derive_profiles(&world, &metrics);
        assert_eq!(profiles.len(), 3);
        assert!(profiles.iter().all(|p| p.infections == 0));
        let stux = &profiles[0];
        assert_eq!(stux.family, Family::Stuxnet);
        assert!(!stux.certified);
    }

    #[test]
    fn stuxnet_profile_reflects_vectors() {
        let mut world = World::new();
        let mut metrics = Metrics::new();
        for (i, vector) in ["usb-lnk", "spooler", "spooler"].iter().enumerate() {
            world.campaigns.stuxnet.infections.insert(
                HostId::new(i),
                InfectionRecord { infected_at: SimTime::EPOCH, vector: (*vector).to_owned() },
            );
        }
        metrics.incr("stuxnet.plc_implanted");
        let profiles = derive_profiles(&world, &metrics);
        let stux = &profiles[0];
        assert_eq!(stux.infections, 3);
        assert_eq!(stux.zero_day_vectors, 2);
        assert!(stux.targeted);
        assert!(stux.usb_vector);
        assert!(stux.sophistication >= 4.0);
    }

    #[test]
    fn table_renders_all_families() {
        let world = World::new();
        let metrics = Metrics::new();
        let t = trend_table(&derive_profiles(&world, &metrics));
        let s = t.to_string();
        assert!(s.contains("stuxnet") && s.contains("flame") && s.contains("shamoon"));
    }

    #[test]
    fn score_is_bounded() {
        let p = TrendProfile {
            family: Family::Flame,
            zero_day_vectors: 9,
            infections: 1,
            targeted: true,
            certified: true,
            modular_updates: 5,
            usb_vector: true,
            suicides: 3,
            sophistication: 0.0,
        };
        assert!(p.score() <= 10.0);
    }
}
