//! PKI setup and campaign "arming" helpers.
//!
//! Scenarios need the certificate world wired up before the campaigns run:
//! a platform-vendor root every host trusts, the stolen driver credential
//! for Stuxnet's rootkit, the leveraged Terminal Services certificate for
//! Flame's fake update, and the borrowed signed disk driver for Shamoon.

use malsim_certs::authority::CertificateAuthority;
use malsim_certs::cert::Eku;
use malsim_certs::forgery::leverage_licensing_credential;
use malsim_certs::hash::HashAlgorithm;
use malsim_certs::key::KeyPair;
use malsim_certs::store::CodeSignature;
use malsim_kernel::time::SimTime;
use malsim_malware::flame::candc::FlamePlatform;
use malsim_malware::stuxnet::candc::C2_DOMAINS;
use malsim_malware::world::{World, WorldSim};
use malsim_net::addr::{Domain, Ipv4};
use malsim_net::dns::Registrant;

fn far_future() -> SimTime {
    SimTime::from_utc(2035, 1, 1, 0, 0, 0)
}

/// The scenario's certificate world: the vendor root plus the credentials
/// each campaign abuses.
#[derive(Debug)]
pub struct Pki {
    /// The platform-vendor CA (think "the OS vendor's root").
    pub vendor_ca: CertificateAuthority,
    /// The hardware-vendor CA whose customers' keys get stolen.
    pub hardware_ca: CertificateAuthority,
}

impl Pki {
    /// Builds both CAs and installs their roots into every existing host's
    /// trust store.
    pub fn install(world: &mut World) -> Pki {
        let vendor_ca =
            CertificateAuthority::new_root("Platform Vendor Root", 1, SimTime::EPOCH, far_future());
        let hardware_ca =
            CertificateAuthority::new_root("Hsinchu Hardware Root", 2, SimTime::EPOCH, far_future());
        for (_, host) in world.hosts.iter_mut() {
            host.trust.add_root(vendor_ca.root_certificate().clone());
            host.trust.add_root(hardware_ca.root_certificate().clone());
        }
        Pki { vendor_ca, hardware_ca }
    }

    /// Arms Stuxnet with a stolen driver-signing credential (the
    /// JMicron/Realtek story): a legitimate hardware vendor's key pair plus
    /// certificate, obtained by the attackers.
    pub fn arm_stuxnet(&self, world: &mut World) {
        let stolen_key = KeyPair::from_seed(0x5105);
        let cert = self.hardware_ca.issue(
            "Realtek Semiconductor Corp",
            stolen_key.public(),
            vec![Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far_future(),
        );
        let driver = b"stuxnet kernel driver (mrxcls/mrxnet)".to_vec();
        let sig = CodeSignature::sign(&stolen_key, cert, HashAlgorithm::Strong64, &driver);
        world.campaigns.stuxnet.stolen_driver_signature = Some((driver, sig));
    }

    /// Registers the Stuxnet C&C domains in DNS.
    pub fn register_stuxnet_c2(&self, world: &mut World) {
        for (i, d) in C2_DOMAINS.iter().enumerate() {
            world.dns.register(
                Domain::new(d),
                Ipv4::new(203, 0, 113, 10 + i as u8),
                Registrant { name: "futbol fan".into(), country: "MY".into(), registrar: "reg-sport".into() },
            );
        }
    }

    /// Builds the Flame platform (22 servers / 80 domains by default) and
    /// arms it with the forged-update credential leveraged from a Terminal
    /// Services licensing certificate.
    pub fn arm_flame(&self, world: &mut World, sim: &mut WorldSim, servers: usize, domains: usize) {
        let mut platform = FlamePlatform::build(&mut world.dns, &mut sim.rng, servers, domains);
        let (key, cert) = self.vendor_ca.activate_terminal_services_licensing(
            "Front Company LLC",
            0xF1A3,
            SimTime::EPOCH,
            far_future(),
        );
        let forged = leverage_licensing_credential(&key, cert, b"flame installer payload");
        platform.forged_update = Some((forged.content, forged.signature));
        world.campaigns.flame_platform = Some(platform);
    }

    /// Arms Shamoon with the legitimately signed third-party raw-disk
    /// driver (the Eldos story).
    pub fn arm_shamoon(&self, world: &mut World) {
        let vendor_key = KeyPair::from_seed(0xE1D0);
        let cert = self.vendor_ca.issue(
            "EldoS Corporation",
            vendor_key.public(),
            vec![Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far_future(),
        );
        let driver = b"rawdisk access driver".to_vec();
        let sig = CodeSignature::sign(&vendor_key, cert, HashAlgorithm::Strong64, &driver);
        world.campaigns.shamoon.signed_disk_driver = Some((driver, sig));
    }

    /// Applies advisory 2718704 to a host: distrusts the leveraged
    /// certificate chain and switches verification to the strict policy.
    pub fn apply_advisory(&self, world: &mut World, host: malsim_os::host::HostId) {
        world.hosts[host].patches.apply(malsim_os::patches::Bulletin::Advisory2718704);
        // Distrust every licensing certificate the vendor CA issued on the
        // weak path — modelled by distrusting the vendor root's weak-hash
        // children via serial scan is impossible from here, so the advisory
        // distrusts the specific forged-update signer when present.
        if let Some(platform) = &world.campaigns.flame_platform {
            if let Some((_, sig)) = &platform.forged_update {
                let serial = sig.signer.serial;
                world.hosts[host].trust.distrust(serial);
            }
        }
        world.hosts[host].verify_policy = malsim_certs::store::VerifyPolicy::strict();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn install_adds_roots_to_all_hosts() {
        let (mut world, _) = ScenarioBuilder::new(1).office_lan(3);
        let _pki = Pki::install(&mut world);
        for (_, h) in world.hosts.iter() {
            assert_eq!(h.trust.root_count(), 2);
        }
    }

    #[test]
    fn arm_stuxnet_provides_loadable_driver_credential() {
        let (mut world, _) = ScenarioBuilder::new(1).office_lan(1);
        let pki = Pki::install(&mut world);
        pki.arm_stuxnet(&mut world);
        let (content, sig) = world.campaigns.stuxnet.stolen_driver_signature.clone().unwrap();
        let host = &mut world.hosts[malsim_os::host::HostId::new(0)];
        host.load_driver("mrxcls.sys", &content, Some(&sig), false, SimTime::EPOCH).unwrap();
    }

    #[test]
    fn arm_flame_builds_platform_with_forged_update() {
        let (mut world, mut sim) = ScenarioBuilder::new(1).office_lan(1);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 22, 80);
        let p = world.campaigns.flame_platform.as_ref().unwrap();
        assert_eq!(p.servers.len(), 22);
        assert_eq!(p.domains.len(), 80);
        assert!(p.forged_update.is_some());
        assert_eq!(world.dns.live_ips().len(), 22);
    }

    #[test]
    fn advisory_blocks_forged_update_on_host() {
        use malsim_net::winupdate::{client_accepts_update, UpdatePackage};
        let (mut world, mut sim) = ScenarioBuilder::new(1).office_lan(1);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 4, 10);
        let host_id = malsim_os::host::HostId::new(0);
        let (binary, sig) = world.campaigns.flame_platform.as_ref().unwrap().forged_update.clone().unwrap();
        let pkg = UpdatePackage { name: "x".into(), binary, signature: Some(sig) };
        // Pre-advisory: accepted.
        let h = &world.hosts[host_id];
        assert!(client_accepts_update(&pkg, &h.trust, h.verify_policy, sim.now()).is_ok());
        // Post-advisory: rejected.
        pki.apply_advisory(&mut world, host_id);
        let h = &world.hosts[host_id];
        assert!(client_accepts_update(&pkg, &h.trust, h.verify_policy, sim.now()).is_err());
    }

    #[test]
    fn arm_shamoon_driver_loads() {
        let (mut world, _) = ScenarioBuilder::new(1).office_lan(1);
        let pki = Pki::install(&mut world);
        pki.arm_shamoon(&mut world);
        let (content, sig) = world.campaigns.shamoon.signed_disk_driver.clone().unwrap();
        let host = &mut world.hosts[malsim_os::host::HostId::new(0)];
        host.load_driver("drdisk.sys", &content, Some(&sig), true, SimTime::EPOCH).unwrap();
        assert!(host.has_raw_disk_access());
    }
}
