//! Trace exporters: Chrome trace-event JSON (Perfetto) and streaming JSONL.
//!
//! Both exporters are pure functions of the run's [`TraceLog`] and
//! [`SpanLog`]: the output is fully determined by the simulation, so two runs
//! with the same seed produce byte-identical files at any thread count.
//!
//! The Chrome format (loadable at `ui.perfetto.dev` or `chrome://tracing`)
//! maps sim entities onto the trace model:
//!
//! * one **process** (`pid` 1) holds the whole run;
//! * each **actor** (host, plant, attack-center…) becomes a thread, with a
//!   `thread_name` metadata record and a stable `tid` assigned from the
//!   sorted actor list;
//! * each closed **span** becomes a complete slice (`ph: "X"`) whose `ts`
//!   and `dur` are sim time in microseconds; open spans export with their
//!   start time and zero duration;
//! * each **trace event** becomes a thread-scoped instant (`ph: "i"`).
//!
//! Causality (span ids and parent links) travels in the `args` object of
//! every record, so the chain survives the round trip through Perfetto.

use malsim_kernel::span::{Span, SpanLog};
use malsim_kernel::time::SimTime;
use malsim_kernel::trace::{TraceEvent, TraceLog};

use crate::report::Json;

/// Builds the Chrome trace-event document for one run.
///
/// Timestamps are microseconds of **sim time** relative to the earliest
/// span start or event in the run, so traces from different scenario start
/// dates line up at zero.
pub fn chrome_trace(trace: &TraceLog, spans: &SpanLog) -> Json {
    let t0 = earliest(trace, spans);
    let actors = actor_table(trace, spans);
    let mut events = Vec::new();
    // Metadata first: name the process and each actor thread.
    events.push(Json::obj([
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(0)),
        ("args", Json::obj([("name", "malsim".into())])),
    ]));
    for (i, actor) in actors.iter().enumerate() {
        events.push(Json::obj([
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", Json::U64(1)),
            ("tid", Json::U64(i as u64 + 1)),
            ("args", Json::obj([("name", actor.as_str().into())])),
        ]));
    }
    for span in spans.spans() {
        events.push(span_slice(span, t0, &actors));
    }
    for event in trace.events() {
        events.push(instant(event, t0, &actors));
    }
    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", "ms".into())])
}

/// Renders the run as a JSONL feed: one compact record per line, spans
/// first (in id order), then events (in emission order). Each record carries
/// a `kind` discriminator so stream consumers can dispatch without
/// lookahead.
pub fn jsonl(trace: &TraceLog, spans: &SpanLog) -> String {
    let mut out = String::new();
    for span in spans.spans() {
        let record = Json::obj([
            ("kind", "span".into()),
            ("id", Json::U64(span.id.as_u64())),
            ("parent", span.parent.map(|p| p.as_u64()).into()),
            ("category", span.category.name().into()),
            ("actor", span.actor.as_str().into()),
            ("name", span.name.as_str().into()),
            ("start_ms", Json::U64(span.start.as_millis())),
            ("end_ms", span.end.map(SimTime::as_millis).into()),
            ("attrs", attrs_obj(&span.attrs)),
        ]);
        out.push_str(&record.to_compact_string());
        out.push('\n');
    }
    for event in trace.events() {
        let record = Json::obj([
            ("kind", "event".into()),
            ("time_ms", Json::U64(event.time.as_millis())),
            ("category", event.category.name().into()),
            ("actor", event.actor.as_str().into()),
            ("message", event.message.as_str().into()),
            ("span", event.span.map(|s| s.as_u64()).into()),
        ]);
        out.push_str(&record.to_compact_string());
        out.push('\n');
    }
    out
}

/// Validates the shape of a Chrome trace document produced by
/// [`chrome_trace`] (or hand-edited): top-level `traceEvents` array, every
/// record carrying `name`/`ph`/`pid`/`tid`, phase-specific fields present
/// (`ts` + `dur` on slices, `ts` + `s` on instants), and every `parent` id
/// in `args` referring to a span slice that exists in the document.
///
/// Used by the `trace_lint` example (and CI) to catch schema drift.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let Json::Obj(top) = doc else { return Err("top level must be an object".into()) };
    let Some((_, Json::Arr(events))) = top.iter().find(|(k, _)| k == "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut span_ids = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(fields) = ev else { return Err(format!("traceEvents[{i}] is not an object")) };
        let field = |k: &str| fields.iter().find(|(fk, _)| fk == k).map(|(_, v)| v);
        let ph = match field("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err(format!("traceEvents[{i}]: missing string ph")),
        };
        for required in ["name", "pid", "tid"] {
            if field(required).is_none() {
                return Err(format!("traceEvents[{i}]: missing {required}"));
            }
        }
        match ph {
            "M" => {}
            "X" => {
                for required in ["ts", "dur", "cat"] {
                    if field(required).is_none() {
                        return Err(format!("traceEvents[{i}]: slice missing {required}"));
                    }
                }
                if let Some(Json::Obj(args)) = field("args") {
                    if let Some((_, Json::U64(id))) = args.iter().find(|(k, _)| k == "span") {
                        span_ids.push(*id);
                    }
                }
            }
            "i" => {
                if field("ts").is_none() || field("s").is_none() {
                    return Err(format!("traceEvents[{i}]: instant missing ts or s"));
                }
            }
            other => return Err(format!("traceEvents[{i}]: unknown phase {other:?}")),
        }
    }
    // Parent links must resolve inside the document.
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(fields) = ev else { continue };
        let Some((_, Json::Obj(args))) = fields.iter().find(|(k, _)| k == "args") else { continue };
        if let Some((_, Json::U64(parent))) = args.iter().find(|(k, _)| k == "parent") {
            if !span_ids.contains(parent) {
                return Err(format!("traceEvents[{i}]: parent span {parent} not in document"));
            }
        }
    }
    Ok(())
}

/// Earliest timestamp across spans and events (the trace's zero point).
fn earliest(trace: &TraceLog, spans: &SpanLog) -> SimTime {
    let span_min = spans.spans().iter().map(|s| s.start).min();
    let event_min = trace.events().iter().map(|e| e.time).min();
    match (span_min, event_min) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => SimTime::EPOCH,
    }
}

/// Sorted, deduplicated actor names. Index + 1 is the actor's `tid` (tid 0
/// is reserved for process metadata).
fn actor_table(trace: &TraceLog, spans: &SpanLog) -> Vec<String> {
    let mut actors: Vec<String> = spans
        .spans()
        .iter()
        .map(|s| s.actor.clone())
        .chain(trace.events().iter().map(|e| e.actor.clone()))
        .collect();
    actors.sort();
    actors.dedup();
    actors
}

fn tid_of(actor: &str, actors: &[String]) -> u64 {
    actors.binary_search_by(|a| a.as_str().cmp(actor)).map(|i| i as u64 + 1).unwrap_or(0)
}

/// Sim-time microseconds since the trace zero point.
fn micros_since(t: SimTime, t0: SimTime) -> u64 {
    t.as_millis().saturating_sub(t0.as_millis()) * 1_000
}

fn span_slice(span: &Span, t0: SimTime, actors: &[String]) -> Json {
    let ts = micros_since(span.start, t0);
    let dur = span.end.map_or(0, |end| micros_since(end, t0).saturating_sub(ts));
    let mut args = vec![
        ("span".to_owned(), Json::U64(span.id.as_u64())),
        ("parent".to_owned(), span.parent.map(|p| p.as_u64()).into()),
    ];
    for (k, v) in &span.attrs {
        args.push((k.clone(), v.as_str().into()));
    }
    Json::obj([
        ("name", span.name.as_str().into()),
        ("cat", span.category.name().into()),
        ("ph", "X".into()),
        ("ts", Json::U64(ts)),
        ("dur", Json::U64(dur)),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid_of(&span.actor, actors))),
        ("args", Json::Obj(args)),
    ])
}

fn instant(event: &TraceEvent, t0: SimTime, actors: &[String]) -> Json {
    Json::obj([
        ("name", event.message.as_str().into()),
        ("cat", event.category.name().into()),
        ("ph", "i".into()),
        ("ts", Json::U64(micros_since(event.time, t0))),
        ("s", "t".into()),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid_of(&event.actor, actors))),
        ("args", Json::obj([("span", event.span.map(|s| s.as_u64()).into())])),
    ])
}

fn attrs_obj(attrs: &[(String, String)]) -> Json {
    Json::Obj(attrs.iter().map(|(k, v)| (k.clone(), v.as_str().into())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;
    use malsim_kernel::trace::TraceCategory;

    fn sample_run() -> (TraceLog, SpanLog) {
        let mut trace = TraceLog::new();
        let mut spans = SpanLog::new();
        let t = |mins: u64| SimTime::EPOCH + malsim_kernel::time::SimDuration::from_mins(mins);
        let root = spans.open(t(0), TraceCategory::Infection, "host:a", "infection", None);
        spans.set_attr(root, "vector", "usb");
        trace.record_in(t(0), TraceCategory::Infection, "host:a", "infected", Some(root));
        let child = spans.open(t(5), TraceCategory::CommandControl, "host:a", "beacon", Some(root));
        trace.record_in(t(6), TraceCategory::CommandControl, "host:a", "beacon ok", Some(child));
        spans.close(child, t(7));
        spans.close(root, t(10));
        (trace, spans)
    }

    #[test]
    fn chrome_trace_is_valid_and_stable() {
        let (trace, spans) = sample_run();
        let doc = chrome_trace(&trace, &spans);
        validate_chrome_trace(&doc).expect("well-formed");
        // Canonical text round-trips and is stable across calls.
        let text = doc.to_canonical_string();
        assert_eq!(report::parse(&text).unwrap(), doc);
        assert_eq!(chrome_trace(&trace, &spans).to_canonical_string(), text);
    }

    #[test]
    fn slices_carry_parent_links_and_sim_durations() {
        let (trace, spans) = sample_run();
        let doc = chrome_trace(&trace, &spans);
        let Json::Obj(top) = &doc else { panic!() };
        let Json::Arr(events) = &top[0].1 else { panic!() };
        let slices: Vec<&Json> = events
            .iter()
            .filter(|e| matches!(e, Json::Obj(f) if f.iter().any(|(k, v)| k == "ph" && *v == Json::Str("X".into()))))
            .collect();
        assert_eq!(slices.len(), 2);
        // The beacon slice: starts at +5 min, lasts 2 min, parented on span 1.
        let Json::Obj(beacon) = slices[1] else { panic!() };
        let get = |k: &str| beacon.iter().find(|(fk, _)| fk == k).map(|(_, v)| v.clone());
        assert_eq!(get("ts"), Some(Json::U64(5 * 60_000 * 1_000)));
        assert_eq!(get("dur"), Some(Json::U64(2 * 60_000 * 1_000)));
        let Some(Json::Obj(args)) = get("args") else { panic!() };
        assert!(args.contains(&("parent".to_owned(), Json::U64(1))));
    }

    #[test]
    fn jsonl_records_parse_line_by_line() {
        let (trace, spans) = sample_run();
        let feed = jsonl(&trace, &spans);
        let lines: Vec<&str> = feed.lines().collect();
        assert_eq!(lines.len(), 2 + 2, "two spans + two events");
        for line in &lines {
            report::parse(line).expect("each line is a standalone document");
        }
        assert!(lines[0].starts_with(r#"{"kind":"span","id":1,"parent":null"#));
        assert!(lines[2].contains(r#""kind":"event""#));
    }

    #[test]
    fn validator_rejects_dangling_parents_and_bad_phases() {
        let dangling = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("name", "x".into()),
                ("cat", "c2".into()),
                ("ph", "X".into()),
                ("ts", Json::U64(0)),
                ("dur", Json::U64(1)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(1)),
                ("args", Json::obj([("span", Json::U64(2)), ("parent", Json::U64(99))])),
            ])]),
        )]);
        let err = validate_chrome_trace(&dangling).unwrap_err();
        assert!(err.contains("parent span 99"), "{err}");

        let bad_phase = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("name", "x".into()),
                ("ph", "Q".into()),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(1)),
            ])]),
        )]);
        assert!(validate_chrome_trace(&bad_phase).unwrap_err().contains("unknown phase"));
        assert!(validate_chrome_trace(&Json::Null).is_err());
    }

    #[test]
    fn empty_run_exports_cleanly() {
        let doc = chrome_trace(&TraceLog::new(), &SpanLog::new());
        validate_chrome_trace(&doc).expect("metadata-only document is valid");
        assert_eq!(jsonl(&TraceLog::new(), &SpanLog::new()), "");
    }
}
