//! Multi-tenant sweep job queue: admission control, budgets, cancellation,
//! and crash-tolerant journaling.
//!
//! The sweep runner ([`crate::sweep`]) evaluates one grid for one caller.
//! This layer makes that shared infrastructure safe for many concurrent,
//! mutually untrusted workloads: a [`JobSpec`] names an experiment, a grid,
//! a seed policy, a priority, and a [`JobBudget`]; a [`JobQueue`] schedules
//! every admitted job's points onto one worker pool with weighted-fair
//! interleaving across tenants, so a hostile or runaway job can slow the
//! others but never starve or crash them. The kernel stays synchronous and
//! deterministic — all concurrency lives here.
//!
//! ## Containment
//!
//! Each point runs under the job's own supervisor
//! ([`sweep::supervised_point_fallible`]): panics are retried with linear
//! backoff up to the budget and then quarantined as poisoned, script faults
//! are typed and final, and the per-point watchdog truncates over-budget
//! simulations. None of these kill the queue — they fold into the job's
//! [`JobOutcome`] as a [`JobStatus::Degraded`] verdict while every other
//! tenant's work completes untouched. Admission control rejects
//! over-capacity or malformed submissions up front with a typed
//! [`Rejected`] instead of queueing unbounded work.
//!
//! ## Cancellation
//!
//! Cancellation is cooperative: flipping a [`CancelToken`] (via its
//! [`JobHandle`]) marks the job's not-yet-started points cancelled at the
//! next scheduling boundary; points already in flight complete and are
//! recorded. Cancelling one job never perturbs another tenant's results —
//! their reports stay byte-identical to solo runs at any thread count.
//!
//! ## Journal and result cache
//!
//! With a journal configured, the queue appends one fsynced compact-JSON
//! line per state transition (admission, each point record, the terminal
//! verdict), FNV-hashed exactly like checkpoint records. A `SIGKILL`'d
//! queue resumed with the same submissions replays the journal and
//! reproduces every finished job's report byte-identically without
//! re-evaluating its points; a changed resubmission is rejected with
//! [`RejectReason::JournalMismatch`] rather than silently spliced.
//!
//! The journal rides through a [`StorageBackend`]
//! (see [`chaosfs`](crate::chaosfs)): transient I/O faults are retried with
//! bounded backoff, and a fatal fault (disk full, a failed fsync)
//! quarantines the journal instead of aborting the run — every grid still
//! completes, reports stay byte-identical, and the typed reason surfaces as
//! [`QueueRun::storage_degraded`] / [`JobOutcome::storage_degraded`]. Only
//! crash-tolerance for a *future* resume is lost.
//!
//! Identical work is deduplicated across tenants by a content-addressed
//! result cache: each deterministic point is addressed by the FNV-1a hash
//! of the canonical JSON of `(experiment, seed policy, effective seed,
//! event budget, grid point)`. The first submission in admission order
//! becomes the designated evaluator; duplicates park and are served a copy
//! of its record (re-indexed to their own grid slot) the moment it lands.
//! Jobs with a host-clock deadline are nondeterministic and never cached.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use malsim_kernel::sched::Watchdog;

use crate::chaosfs::{StorageBackend, StorageFault, REAL_FS};
use crate::checkpoint::{self, fnv1a64, CheckpointError, CheckpointRecord, CheckpointWriter, PointStatus};
use crate::report::{self, Json};
use crate::sweep::{self, PointRun, PoolConfig, ScriptFaultInfo, SweepCtx, SweepSupervisor};
use crate::telemetry;

/// Scheduling priority of a job, expressed as a weight in the weighted-fair
/// queue: a `High` job receives 16× the dispatch share of a `Low` one when
/// both tenants have work pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Weight 1: background work, yields to everyone.
    Low,
    /// Weight 4: the default.
    #[default]
    Normal,
    /// Weight 16: latency-sensitive work.
    High,
}

impl Priority {
    /// The WFQ weight (dispatch share relative to other tenants).
    pub fn weight(&self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 4,
            Priority::High => 16,
        }
    }

    /// Stable lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One virtual-time quantum; a dispatched point advances its tenant's clock
/// by `QUANTUM / weight`, so higher-weight tenants are picked more often.
const WFQ_QUANTUM: u64 = 16;

/// Per-job resource limits, all enforced without trusting the job's code.
///
/// The default budget imposes nothing: no retries, no watchdog limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBudget {
    /// Deterministic per-point event budget (see
    /// [`Watchdog::max_events`]); overruns truncate the point.
    pub event_budget: Option<u64>,
    /// Host-clock per-point deadline in milliseconds. Nondeterministic —
    /// setting it makes the job ineligible for the result cache.
    pub deadline_ms: Option<u64>,
    /// Panic re-attempts per point before quarantining it as poisoned.
    pub retries: u32,
    /// Linear backoff between panic re-attempts, in milliseconds (see
    /// [`SweepSupervisor::retry_backoff_ms`]).
    pub retry_backoff_ms: u64,
    /// Host-clock sleep before each point starts, in milliseconds. Zero in
    /// normal use; nonzero only to widen the kill window in resume drills.
    pub stagger_ms: u64,
}

impl JobBudget {
    /// The per-point supervision policy this budget implies.
    pub fn supervisor(&self) -> SweepSupervisor {
        SweepSupervisor {
            retries: self.retries,
            event_budget: self.event_budget,
            deadline_ms: self.deadline_ms,
            check_invariants: false,
            stagger_ms: self.stagger_ms,
            retry_backoff_ms: self.retry_backoff_ms,
        }
    }

    /// The per-point watchdog this budget implies.
    pub fn watchdog(&self) -> Watchdog {
        self.supervisor().watchdog()
    }

    /// Whether points under this budget are deterministic enough to share
    /// through the result cache. A host-clock deadline can truncate at a
    /// different event on every run, so deadline jobs are never cached.
    pub fn cacheable(&self) -> bool {
        self.deadline_ms.is_none()
    }
}

/// How a job's points derive their seeds (see the [`crate::sweep`] module
/// docs for when each design applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedPolicy {
    /// Each point gets its own stream seed from
    /// [`SweepCtx::derived_seed`] — independent points.
    #[default]
    Derived,
    /// Every point shares the job's base seed — paired/ablation designs.
    Paired,
}

impl SeedPolicy {
    /// Stable lower-case label used in cache keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SeedPolicy::Derived => "derived",
            SeedPolicy::Paired => "paired",
        }
    }
}

/// One unit of admission: which experiment to run, over which grid, for
/// which tenant, under which budget.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Queue-unique job id; also the journal identity of the job's records.
    pub job_id: String,
    /// Tenant name; the unit of weighted-fair scheduling.
    pub tenant: String,
    /// Stable experiment label, part of every point's stream key.
    pub experiment: &'static str,
    /// The job's base seed.
    pub base_seed: u64,
    /// How points derive their seeds.
    pub seed_policy: SeedPolicy,
    /// WFQ weight class.
    pub priority: Priority,
    /// Per-point limits.
    pub budget: JobBudget,
    /// The parameter grid, one [`Json`] value per point.
    pub grid: Vec<Json>,
}

impl JobSpec {
    /// FNV-1a hash (hex) of everything that determines the job's results:
    /// experiment, base seed, seed policy, deterministic budget, and the
    /// full grid. Recorded in the journal at admission; a resumed
    /// submission whose identity differs is rejected instead of spliced.
    pub fn identity_hash(&self) -> String {
        let key = Json::obj([
            ("experiment", self.experiment.into()),
            ("base_seed", Json::U64(self.base_seed)),
            ("policy", self.seed_policy.label().into()),
            ("event_budget", self.budget.event_budget.map_or(Json::Null, Json::U64)),
            ("grid", Json::Arr(self.grid.clone())),
        ]);
        format!("{:016x}", fnv1a64(key.to_compact_string().as_bytes()))
    }

    /// The content address of one point's result: `(address, key)` where
    /// the key is the canonical JSON of everything the point's result is a
    /// pure function of, and the address is its FNV-1a hash. The stored key
    /// guards against (astronomically unlikely) address collisions.
    fn cache_key(&self, point: usize) -> (String, String) {
        let ctx = SweepCtx { experiment: self.experiment, point, base_seed: self.base_seed };
        let seed = match self.seed_policy {
            SeedPolicy::Derived => ctx.derived_seed(),
            SeedPolicy::Paired => self.base_seed,
        };
        let key = Json::obj([
            ("experiment", self.experiment.into()),
            ("policy", self.seed_policy.label().into()),
            ("seed", Json::U64(seed)),
            ("event_budget", self.budget.event_budget.map_or(Json::Null, Json::U64)),
            ("params", self.grid[point].clone()),
        ])
        .to_compact_string();
        let addr = format!("{:016x}", fnv1a64(key.as_bytes()));
        (addr, key)
    }
}

/// Why a submission was turned away at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue already holds its maximum number of jobs; shed load
    /// instead of queueing unbounded work.
    QueueFull {
        /// The queue's job capacity.
        capacity: usize,
    },
    /// A job with this id is already queued.
    DuplicateJobId,
    /// The grid has no points; there is nothing to run.
    EmptyGrid,
    /// The grid exceeds the per-job point cap.
    GridTooLarge {
        /// Points in the submitted grid.
        points: usize,
        /// The queue's per-job cap.
        max_points: usize,
    },
    /// On resume, the journal recorded a different identity for this job id
    /// — accepting the submission would splice unrelated results.
    JournalMismatch {
        /// The identity hash the journal recorded at admission.
        expected: String,
        /// The resubmitted spec's identity hash.
        found: String,
    },
}

/// Typed admission failure: which job, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// The rejected submission's job id.
    pub job_id: String,
    /// Why it was turned away.
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' rejected: ", self.job_id)?;
        match &self.reason {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue is full (capacity {capacity})")
            }
            RejectReason::DuplicateJobId => write!(f, "a job with this id is already queued"),
            RejectReason::EmptyGrid => write!(f, "the grid is empty"),
            RejectReason::GridTooLarge { points, max_points } => {
                write!(f, "grid has {points} points, above the per-job cap of {max_points}")
            }
            RejectReason::JournalMismatch { expected, found } => {
                write!(
                    f,
                    "journal identity mismatch: the journal admitted {expected}, \
                     this submission hashes to {found}"
                )
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Errors from the job queue: typed admission failures and journal I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A submission failed admission control.
    Rejected(Rejected),
    /// The job journal could not be read or appended.
    Journal(CheckpointError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Rejected(r) => write!(f, "{r}"),
            JobError::Journal(e) => write!(f, "job journal: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Rejected(r) => Some(r),
            JobError::Journal(e) => Some(e),
        }
    }
}

impl From<Rejected> for JobError {
    fn from(r: Rejected) -> JobError {
        JobError::Rejected(r)
    }
}

impl From<CheckpointError> for JobError {
    fn from(e: CheckpointError) -> JobError {
        JobError::Journal(e)
    }
}

/// Cooperative cancellation flag, checked at point boundaries.
///
/// Cancelling never interrupts a point mid-simulation: in-flight points
/// complete and are recorded; not-yet-started points are marked
/// [`PointStatus::Cancelled`] at the next scheduling boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// What a successful submission returns: the admitted id plus the job's
/// cancellation token.
#[derive(Debug, Clone)]
pub struct JobHandle {
    /// The admitted job id.
    pub job_id: String,
    /// The job's cancellation token (cloneable; flip it from anywhere).
    pub token: CancelToken,
}

impl JobHandle {
    /// Shorthand for `self.token.cancel()`.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

/// Terminal verdict of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every point completed untruncated.
    Completed,
    /// The job finished, but at least one point was truncated, poisoned, or
    /// script-faulted — partial results, typed per point.
    Degraded,
    /// The job was cancelled; at least one point never ran.
    Cancelled,
}

impl JobStatus {
    /// Stable lower-case label used in the journal and reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Degraded => "degraded",
            JobStatus::Cancelled => "cancelled",
        }
    }

    fn from_label(label: &str) -> Option<JobStatus> {
        match label {
            "completed" => Some(JobStatus::Completed),
            "degraded" => Some(JobStatus::Degraded),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }
}

/// Everything one job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub job_id: String,
    /// The submitting tenant.
    pub tenant: String,
    /// The experiment label.
    pub experiment: &'static str,
    /// The job's base seed.
    pub base_seed: u64,
    /// The job's WFQ weight class.
    pub priority: Priority,
    /// The budget the job ran under (used to derive the degraded-reason
    /// breakdown in [`JobOutcome::report`]).
    pub budget: JobBudget,
    /// Terminal verdict.
    pub status: JobStatus,
    /// Per-point records in point order.
    pub points: Vec<CheckpointRecord>,
    /// Points this run actually evaluated.
    pub evaluated_points: usize,
    /// Points served from the result cache (deduplicated submissions).
    pub cached_points: usize,
    /// Points restored from the journal on resume.
    pub resumed_points: usize,
    /// The typed reason journal persistence degraded during this run, if it
    /// did (shared across the queue — the journal is one file). The
    /// [`JobStatus`] stays a pure function of the point records so reports
    /// remain byte-identical under storage chaos; this field is the
    /// out-of-band "degraded, and here is why" signal.
    pub storage_degraded: Option<StorageFault>,
}

impl JobOutcome {
    fn count(&self, status: PointStatus) -> usize {
        self.points.iter().filter(|r| r.status == status).count()
    }

    fn count_truncation(&self, kind: &str) -> usize {
        self.points.iter().filter(|r| r.truncation.as_deref() == Some(kind)).count()
    }

    /// The degraded-reason breakdown: why this job is less than `completed`,
    /// diagnosable from the report alone. Every field is a pure function of
    /// the point records and the budget — a poisoned point by definition
    /// burned the full retry budget, so `retries_burned` needs no run
    /// history and survives kill/resume byte-identically.
    fn degraded_breakdown(&self) -> Json {
        let poisoned = self.count(PointStatus::Poisoned) as u64;
        Json::obj([
            ("retries_burned", Json::U64(poisoned * u64::from(self.budget.retries))),
            ("truncated_event_budget", Json::U64(self.count_truncation("event_budget") as u64)),
            ("truncated_host_deadline", Json::U64(self.count_truncation("host_deadline") as u64)),
            ("script_faults", Json::U64(self.count(PointStatus::ScriptFault) as u64)),
        ])
    }

    /// The job report. Contains only deterministic, run-history-free data
    /// (no evaluated/cached/resumed counts), so a killed-and-resumed or
    /// cache-served job renders byte-identically to a solo uninterrupted
    /// run.
    pub fn report(&self) -> Json {
        let rows = self
            .points
            .iter()
            .map(|r| {
                Json::obj([
                    ("point", Json::U64(r.point as u64)),
                    ("status", r.status.label().into()),
                    ("truncation", r.truncation.clone().into()),
                    ("row", r.row.clone().unwrap_or(Json::Null)),
                    ("panic_msg", r.panic_msg.clone().into()),
                    ("params", r.params.clone().into()),
                    ("script_id", r.script_id.clone().into()),
                    ("script_error", r.script_error.clone().into()),
                    ("fuel_used", r.fuel_used.map_or(Json::Null, Json::U64)),
                    ("violations", Json::Arr(r.violations.iter().map(|v| v.as_str().into()).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("job_id", self.job_id.as_str().into()),
            ("tenant", self.tenant.as_str().into()),
            ("experiment", self.experiment.into()),
            ("base_seed", Json::U64(self.base_seed)),
            ("priority", self.priority.label().into()),
            ("status", self.status.label().into()),
            ("points", Json::U64(self.points.len() as u64)),
            ("completed", Json::U64(self.count(PointStatus::Completed) as u64)),
            ("truncated", Json::U64(self.count(PointStatus::Truncated) as u64)),
            ("poisoned", Json::U64(self.count(PointStatus::Poisoned) as u64)),
            ("script_faults", Json::U64(self.count(PointStatus::ScriptFault) as u64)),
            ("cancelled", Json::U64(self.count(PointStatus::Cancelled) as u64)),
            ("degraded", self.degraded_breakdown()),
            ("rows", Json::Arr(rows)),
        ])
    }
}

/// Everything one queue run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRun {
    /// Per-job outcomes in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Damaged journal lines skipped during resume.
    pub skipped_lines: usize,
    /// The typed reason journal persistence degraded during this run (a
    /// fatal load fault or a writer quarantine), if it did. The grids still
    /// completed; only crash-tolerance for a *future* resume was lost.
    pub storage_degraded: Option<StorageFault>,
}

/// Configuration for a [`JobQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Worker-pool sizing, shared with every other parallel surface.
    pub pool: PoolConfig,
    /// Admission cap: at most this many jobs queued at once.
    pub max_jobs: usize,
    /// Admission cap: at most this many grid points per job.
    pub max_points_per_job: usize,
    /// Journal path; `None` runs without persistence.
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it.
    pub resume: bool,
    /// Storage backend for the journal; `None` is the real filesystem.
    /// Chaos soaks pass a seeded [`ChaosFs`](crate::chaosfs::ChaosFs) here.
    pub storage: Option<Arc<dyn StorageBackend>>,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            pool: PoolConfig::default(),
            max_jobs: 16,
            max_points_per_job: 4096,
            journal: None,
            resume: false,
            storage: None,
        }
    }
}

/// One point handed to the queue's point function: the sweep identity, the
/// grid parameters, and the limits the point must honour when it builds its
/// simulation (the runner cannot reach inside a point).
#[derive(Debug)]
pub struct JobPoint<'a> {
    /// The owning job's id.
    pub job_id: &'a str,
    /// The owning tenant.
    pub tenant: &'a str,
    /// Sweep identity: experiment label, point index, base seed.
    pub ctx: SweepCtx,
    /// This point's grid parameters.
    pub params: &'a Json,
    /// The job's seed policy (already folded into [`JobPoint::seed`]).
    pub seed_policy: SeedPolicy,
    /// The watchdog the point's simulation must run under.
    pub watchdog: Watchdog,
}

impl JobPoint<'_> {
    /// The seed this point's scenario must use, per the job's policy.
    pub fn seed(&self) -> u64 {
        match self.seed_policy {
            SeedPolicy::Derived => self.ctx.derived_seed(),
            SeedPolicy::Paired => self.ctx.base_seed,
        }
    }
}

/// A job's usable journal content after a lenient replay.
#[derive(Debug, Clone, Default)]
struct JournalJob {
    /// The identity hash recorded at admission, if that line survived.
    identity: Option<String>,
    /// The terminal transition, if the job finished before the kill.
    terminal: Option<JobStatus>,
    /// Last valid record per point index.
    records: BTreeMap<usize, CheckpointRecord>,
}

/// Builds one self-hashed transition line. The hash field covers the line
/// with itself blanked, mirroring the row hash on point records.
fn transition(spec: &JobSpec, status: &str) -> Json {
    let fields = |hash: &str| {
        Json::obj([
            ("kind", "transition".into()),
            ("job_id", spec.job_id.as_str().into()),
            ("tenant", spec.tenant.as_str().into()),
            ("experiment", spec.experiment.into()),
            ("base_seed", Json::U64(spec.base_seed)),
            ("status", status.into()),
            ("identity", spec.identity_hash().into()),
            ("hash", hash.into()),
        ])
    };
    let hash = format!("{:016x}", fnv1a64(fields("").to_compact_string().as_bytes()));
    fields(&hash)
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
struct JournalLoad {
    jobs: BTreeMap<String, JournalJob>,
    skipped: usize,
    /// Set when the file could not be read at all: the queue degrades to a
    /// fresh start (every point re-runs) instead of failing the run.
    load_fault: Option<StorageFault>,
}

/// Replays a job journal through `backend`. Damaged lines (torn writes,
/// failed hashes) are skipped and counted; a missing file is an empty
/// journal; a fatal read fault degrades to an empty journal with the typed
/// reason in [`JournalLoad::load_fault`].
fn load_journal(path: &Path, backend: &dyn StorageBackend) -> Result<JournalLoad, CheckpointError> {
    let text = match checkpoint::read_with_retry(path, backend) {
        Ok(Some(text)) => text,
        Ok(None) => return Ok(JournalLoad::default()),
        Err(fault) => {
            telemetry::ckpt_journal_quarantined();
            return Ok(JournalLoad { load_fault: Some(fault), ..JournalLoad::default() });
        }
    };
    let mut jobs: BTreeMap<String, JournalJob> = BTreeMap::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = report::parse(line) else {
            skipped += 1;
            continue;
        };
        if v.get("kind").and_then(Json::as_str) == Some("transition") {
            // Integrity gate: the self-hash must cover the line with its own
            // hash field blanked (shared with the repair pass).
            let (Some(job_id), Some(status)) =
                (v.get("job_id").and_then(Json::as_str), v.get("status").and_then(Json::as_str))
            else {
                skipped += 1;
                continue;
            };
            if !checkpoint::self_hash_valid(&v) {
                skipped += 1;
                continue;
            }
            let entry = jobs.entry(job_id.to_owned()).or_default();
            if status == "admitted" {
                entry.identity = v.get("identity").and_then(Json::as_str).map(str::to_owned);
            } else if let Some(s) = JobStatus::from_label(status) {
                entry.terminal = Some(s);
            } else {
                skipped += 1;
            }
        } else {
            // A point record; its `experiment` field carries the job id, so
            // parse it under the line's own identity (`from_line` still
            // validates status and row hash).
            let (Some(job_id), Some(seed)) =
                (v.get("experiment").and_then(Json::as_str), v.get("base_seed").and_then(Json::as_u64))
            else {
                skipped += 1;
                continue;
            };
            match CheckpointRecord::from_line(line, path, job_id, seed)? {
                Some(rec) => {
                    jobs.entry(job_id.to_owned()).or_default().records.insert(rec.point, rec);
                }
                None => skipped += 1,
            }
        }
    }
    telemetry::ckpt_damaged_lines(skipped as u64);
    Ok(JournalLoad { jobs, skipped, load_fault: None })
}

/// One entry of the content-addressed result cache / claim table.
#[derive(Debug)]
struct CacheEntry {
    /// The full canonical-JSON key, kept to rule out address collisions.
    key_json: String,
    state: ClaimState,
}

#[derive(Debug)]
enum ClaimState {
    /// The designated evaluator: first `(job, point)` in admission order to
    /// claim this address. Duplicates park until it delivers.
    Owner { job: usize, point: usize },
    /// The evaluator delivered; parked duplicates copy this record
    /// (re-indexed to their own grid slot).
    Done(CheckpointRecord),
}

/// Per-job scheduler state.
#[derive(Debug, Default)]
struct JobState {
    /// Points waiting to be dispatched, in point order.
    pending: VecDeque<usize>,
    /// Points parked on another job's in-flight evaluation: `(point, addr)`.
    parked: Vec<(usize, String)>,
    /// Finished records by point index.
    records: BTreeMap<usize, CheckpointRecord>,
    /// Points currently evaluating on a worker.
    inflight: usize,
    /// The cancel token has been observed and pending work swept.
    cancel_seen: bool,
    /// All points accounted for; terminal transition written.
    done: bool,
    /// The journal already holds this job's terminal transition (resume).
    had_terminal: bool,
    evaluated: usize,
    cached: usize,
    resumed: usize,
}

/// Shared scheduler state: one mutex, held only for bookkeeping — never
/// across a point evaluation or a journal fsync of another worker.
#[derive(Debug, Default)]
struct Sched {
    jobs: Vec<JobState>,
    cache: BTreeMap<String, CacheEntry>,
    /// Per-tenant virtual time: the tenant with the smallest clock is
    /// dispatched next; each dispatch advances it by `QUANTUM / weight`.
    vtime: BTreeMap<String, u64>,
    /// First journal failure; aborts the run.
    error: Option<CheckpointError>,
}

impl Sched {
    fn all_done(&self) -> bool {
        self.error.is_some() || self.jobs.iter().all(|j| j.done)
    }
}

fn job_status(records: &BTreeMap<usize, CheckpointRecord>) -> JobStatus {
    let mut degraded = false;
    for rec in records.values() {
        match rec.status {
            PointStatus::Cancelled => return JobStatus::Cancelled,
            PointStatus::Poisoned | PointStatus::ScriptFault | PointStatus::Truncated => degraded = true,
            PointStatus::Completed => {}
        }
    }
    if degraded {
        JobStatus::Degraded
    } else {
        JobStatus::Completed
    }
}

/// The multi-tenant job queue. Submit jobs, then [`JobQueue::run`] them all
/// to completion on one shared worker pool.
#[derive(Debug)]
pub struct JobQueue {
    cfg: QueueConfig,
    specs: Vec<JobSpec>,
    tokens: Vec<CancelToken>,
    journal_jobs: BTreeMap<String, JournalJob>,
    journal_skipped: usize,
    journal_fault: Option<StorageFault>,
}

impl JobQueue {
    /// Creates a queue; with `cfg.resume`, replays the journal up front so
    /// admission can verify resubmitted identities. A journal that cannot
    /// be read at all (a fatal storage fault) degrades to a fresh start —
    /// every point re-runs — with the typed reason carried through to
    /// [`QueueRun::storage_degraded`].
    pub fn new(cfg: QueueConfig) -> Result<JobQueue, JobError> {
        let loaded = match (&cfg.journal, cfg.resume) {
            (Some(path), true) => load_journal(path, cfg.storage.as_deref().unwrap_or(&REAL_FS))?,
            _ => JournalLoad::default(),
        };
        Ok(JobQueue {
            cfg,
            specs: Vec::new(),
            tokens: Vec::new(),
            journal_jobs: loaded.jobs,
            journal_skipped: loaded.skipped,
            journal_fault: loaded.load_fault,
        })
    }

    /// Jobs admitted so far.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no jobs have been admitted.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Admission control: bounds the queue and rejects malformed or (on
    /// resume) inconsistent submissions with a typed [`Rejected`] instead
    /// of queueing them.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, Rejected> {
        let reject = |reason| {
            telemetry::jobs_rejected(&reason);
            Rejected { job_id: spec.job_id.clone(), reason }
        };
        if spec.grid.is_empty() {
            return Err(reject(RejectReason::EmptyGrid));
        }
        if spec.grid.len() > self.cfg.max_points_per_job {
            return Err(reject(RejectReason::GridTooLarge {
                points: spec.grid.len(),
                max_points: self.cfg.max_points_per_job,
            }));
        }
        if self.specs.iter().any(|s| s.job_id == spec.job_id) {
            return Err(reject(RejectReason::DuplicateJobId));
        }
        if self.specs.len() >= self.cfg.max_jobs {
            return Err(reject(RejectReason::QueueFull { capacity: self.cfg.max_jobs }));
        }
        if let Some(entry) = self.journal_jobs.get(&spec.job_id) {
            if let Some(expected) = &entry.identity {
                let found = spec.identity_hash();
                if *expected != found {
                    return Err(reject(RejectReason::JournalMismatch { expected: expected.clone(), found }));
                }
            }
        }
        let token = CancelToken::new();
        let handle = JobHandle { job_id: spec.job_id.clone(), token: token.clone() };
        self.specs.push(spec);
        self.tokens.push(token);
        telemetry::jobs_admitted(self.specs.len());
        Ok(handle)
    }

    /// Runs every admitted job to its terminal status and returns the
    /// outcomes in submission order.
    ///
    /// `run_point` evaluates one grid point: it must be a pure function of
    /// its [`JobPoint`] (seed from [`JobPoint::seed`], simulation run under
    /// [`JobPoint::watchdog`]) so that results are byte-identical at every
    /// worker count and safely shareable through the result cache. Panics
    /// and script faults are contained per the owning job's budget.
    pub fn run<F>(self, run_point: F) -> Result<QueueRun, JobError>
    where
        F: Fn(&JobPoint<'_>) -> Result<PointRun<Json>, ScriptFaultInfo> + Sync,
    {
        let JobQueue { cfg, specs, tokens, journal_jobs, journal_skipped, journal_fault } = self;
        let backend: &dyn StorageBackend = cfg.storage.as_deref().unwrap_or(&REAL_FS);
        let writer = cfg.journal.as_ref().map(|path| {
            if cfg.resume {
                CheckpointWriter::append_with(path, backend)
            } else {
                CheckpointWriter::create_with(path, backend)
            }
        });
        let writer = writer.as_ref();

        // Seed per-job state: restore journal records, register resumed
        // results in the cache, then assign every remaining point either a
        // claim (owner → pending, duplicate → parked/served) or, for
        // uncacheable jobs, straight to pending. Claims are made in
        // submission order, so the designated evaluator is deterministic.
        let mut sched = Sched::default();
        for (j, spec) in specs.iter().enumerate() {
            let mut st = JobState::default();
            if let Some(entry) = journal_jobs.get(&spec.job_id) {
                st.had_terminal = entry.terminal.is_some();
                for (&idx, rec) in &entry.records {
                    if idx >= spec.grid.len() {
                        continue;
                    }
                    // Poisoned points of unfinished jobs re-run; records of
                    // finished jobs are all kept so the report reproduces.
                    if entry.terminal.is_some() || rec.status != PointStatus::Poisoned {
                        st.records.insert(idx, rec.clone());
                        st.resumed += 1;
                    }
                }
                telemetry::points_resumed(st.resumed as u64);
                if entry.terminal == Some(JobStatus::Cancelled) {
                    // The job was cancelled before the kill; points lost in
                    // flight stay cancelled rather than re-running.
                    for idx in 0..spec.grid.len() {
                        if let std::collections::btree_map::Entry::Vacant(slot) = st.records.entry(idx) {
                            let rec = CheckpointRecord::cancelled(idx);
                            if let Some(w) = writer {
                                w.record(&spec.job_id, spec.base_seed, &rec)?;
                            }
                            slot.insert(rec);
                            telemetry::jobs_cancelled_points(1);
                        }
                    }
                }
            } else if let Some(w) = writer {
                w.append_json(&transition(spec, "admitted"))?;
            }
            if spec.budget.cacheable() {
                for (&idx, rec) in &st.records {
                    if rec.status == PointStatus::Poisoned || rec.status == PointStatus::Cancelled {
                        continue;
                    }
                    let (addr, key_json) = spec.cache_key(idx);
                    sched
                        .cache
                        .entry(addr)
                        .or_insert_with(|| CacheEntry { key_json, state: ClaimState::Done(rec.clone()) });
                }
            }
            for idx in 0..spec.grid.len() {
                if st.records.contains_key(&idx) {
                    continue;
                }
                if !spec.budget.cacheable() {
                    st.pending.push_back(idx);
                    continue;
                }
                let (addr, key_json) = spec.cache_key(idx);
                match sched.cache.get(&addr) {
                    Some(e) if e.key_json == key_json => match &e.state {
                        ClaimState::Done(rec) => {
                            let mut copy = rec.clone();
                            copy.point = idx;
                            if let Some(w) = writer {
                                w.record(&spec.job_id, spec.base_seed, &copy)?;
                            }
                            st.records.insert(idx, copy);
                            st.cached += 1;
                            telemetry::cache_hit();
                        }
                        ClaimState::Owner { .. } => {
                            telemetry::cache_park();
                            st.parked.push((idx, addr));
                        }
                    },
                    // An address collision with different content: evaluate
                    // the point ourselves rather than serve a wrong record.
                    Some(_) => st.pending.push_back(idx),
                    None => {
                        sched.cache.insert(
                            addr,
                            CacheEntry { key_json, state: ClaimState::Owner { job: j, point: idx } },
                        );
                        st.pending.push_back(idx);
                    }
                }
            }
            sched.vtime.entry(spec.tenant.clone()).or_insert(0);
            sched.jobs.push(st);
        }

        let total_pending: usize = sched.jobs.iter().map(|s| s.pending.len()).sum();
        let threads = cfg.pool.resolve().clamp(1, total_pending.max(1));
        let sched = Mutex::new(sched);
        let cv = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| worker(&sched, &cv, &specs, &tokens, writer, &run_point));
            }
        });

        let sched = sched.into_inner().expect("scheduler lock never held across a panic");
        if let Some(e) = sched.error {
            return Err(JobError::Journal(e));
        }
        // End-of-run WFQ fairness: each tenant's virtual-time lag behind the
        // fleet minimum. Final vtimes are a pure function of the dispatch
        // counts, so the gauge is deterministic for deterministic workloads.
        if let Some(&min) = sched.vtime.values().min() {
            for (tenant, &vt) in &sched.vtime {
                telemetry::wfq_lag_set(tenant, vt - min);
            }
        }
        // Storage degradation is queue-wide (one journal file): a fatal load
        // fault or a writer quarantine marks every outcome with the typed
        // reason, out of band of the byte-stable reports.
        let storage_degraded = journal_fault.or_else(|| writer.and_then(|w| w.quarantine()));
        if storage_degraded.is_some() {
            telemetry::jobs_degraded_storage(sched.jobs.len() as u64);
        }
        let outcomes = specs
            .into_iter()
            .zip(sched.jobs)
            .map(|(spec, st)| JobOutcome {
                status: job_status(&st.records),
                job_id: spec.job_id,
                tenant: spec.tenant,
                experiment: spec.experiment,
                base_seed: spec.base_seed,
                priority: spec.priority,
                budget: spec.budget,
                points: st.records.into_values().collect(),
                evaluated_points: st.evaluated,
                cached_points: st.cached,
                resumed_points: st.resumed,
                storage_degraded: storage_degraded.clone(),
            })
            .collect();
        Ok(QueueRun { outcomes, skipped_lines: journal_skipped, storage_degraded })
    }
}

/// One dispatched unit of work.
#[derive(Debug, Clone, Copy)]
struct Task {
    job: usize,
    point: usize,
}

/// One worker's loop: settle bookkeeping, pick the weighted-fair next
/// point, evaluate it outside the lock, record it, repeat. The wait has a
/// timeout so an externally flipped cancel token is noticed even when every
/// worker is parked.
fn worker<F>(
    sched: &Mutex<Sched>,
    cv: &Condvar,
    specs: &[JobSpec],
    tokens: &[CancelToken],
    writer: Option<&CheckpointWriter>,
    run_point: &F,
) where
    F: Fn(&JobPoint<'_>) -> Result<PointRun<Json>, ScriptFaultInfo> + Sync,
{
    let mut guard = sched.lock().expect("scheduler lock never held across a panic");
    loop {
        settle(&mut guard, specs, tokens, writer);
        if guard.all_done() {
            cv.notify_all();
            return;
        }
        let Some(task) = pick(&mut guard, specs) else {
            let (g, _) = cv
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .expect("scheduler lock never held across a panic");
            guard = g;
            continue;
        };
        drop(guard);

        let spec = &specs[task.job];
        let supervisor = spec.budget.supervisor();
        let ctx = SweepCtx { experiment: spec.experiment, point: task.point, base_seed: spec.base_seed };
        let jp = JobPoint {
            job_id: &spec.job_id,
            tenant: &spec.tenant,
            ctx,
            params: &spec.grid[task.point],
            seed_policy: spec.seed_policy,
            watchdog: supervisor.watchdog(),
        };
        let outcome =
            sweep::supervised_point_fallible(&ctx, &supervisor, &jp, &|_, p: &JobPoint<'_>| run_point(p));
        let record = checkpoint::outcome_record(task.point, outcome);

        guard = sched.lock().expect("scheduler lock never held across a panic");
        complete(&mut guard, specs, writer, task, record);
        cv.notify_all();
    }
}

/// Weighted-fair dispatch: among jobs with pending points, pick the one
/// whose tenant has the smallest virtual time (ties broken by tenant name,
/// then submission order), then advance that tenant's clock by
/// `QUANTUM / weight`. Deterministic: at one worker the dispatch sequence
/// is a pure function of the submissions.
fn pick(sched: &mut Sched, specs: &[JobSpec]) -> Option<Task> {
    let mut best: Option<(u64, &str, usize)> = None;
    for (j, st) in sched.jobs.iter().enumerate() {
        if st.pending.is_empty() {
            continue;
        }
        let tenant = specs[j].tenant.as_str();
        let key = (sched.vtime[tenant], tenant, j);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    let (_, tenant, j) = best?;
    let point = sched.jobs[j].pending.pop_front().expect("picked job has a pending point");
    sched.jobs[j].inflight += 1;
    *sched.vtime.get_mut(tenant).expect("every tenant has a clock") +=
        WFQ_QUANTUM / specs[j].priority.weight();
    Some(Task { job: j, point })
}

/// Folds a journal failure into the scheduler (first one wins; the run
/// aborts and reports it).
fn note_error(sched: &mut Sched, result: Result<(), CheckpointError>) {
    if let Err(e) = result {
        sched.error.get_or_insert(e);
    }
}

/// Records a finished evaluation: journals it, fulfils the point's claim
/// for parked duplicates (or promotes a duplicate if the result is
/// poisoned and thus unshareable), and books the record.
fn complete(
    sched: &mut Sched,
    specs: &[JobSpec],
    writer: Option<&CheckpointWriter>,
    task: Task,
    record: CheckpointRecord,
) {
    let spec = &specs[task.job];
    if let Some(w) = writer {
        note_error(sched, w.record(&spec.job_id, spec.base_seed, &record));
    }
    if spec.budget.cacheable() {
        let (addr, _) = spec.cache_key(task.point);
        let owns = matches!(
            sched.cache.get(&addr),
            Some(CacheEntry { state: ClaimState::Owner { job, point }, .. })
                if *job == task.job && *point == task.point
        );
        if owns {
            if record.status == PointStatus::Poisoned {
                // A poisoned record is a quarantined panic, not a result —
                // parked duplicates must evaluate for themselves.
                promote_or_drop(sched, &addr);
            } else {
                let entry = sched.cache.get_mut(&addr).expect("claim checked above");
                entry.state = ClaimState::Done(record.clone());
            }
        }
    }
    let st = &mut sched.jobs[task.job];
    st.inflight -= 1;
    st.evaluated += 1;
    st.records.insert(task.point, record);
    telemetry::sample_boundary();
}

/// Re-assigns an orphaned claim (owner cancelled or poisoned) to the first
/// parked duplicate in submission order, moving that point back to its
/// job's pending queue; with no duplicates the claim is dropped.
fn promote_or_drop(sched: &mut Sched, addr: &str) {
    for (j, st) in sched.jobs.iter_mut().enumerate() {
        if let Some(pos) = st.parked.iter().position(|(_, a)| a == addr) {
            let (idx, _) = st.parked.remove(pos);
            st.pending.push_back(idx);
            sched.cache.get_mut(addr).expect("claim exists while parked on").state =
                ClaimState::Owner { job: j, point: idx };
            telemetry::cache_promotion();
            return;
        }
    }
    sched.cache.remove(addr);
}

/// Scheduler bookkeeping, run under the lock at every boundary: sweep
/// newly cancelled jobs, serve parked duplicates whose claims delivered,
/// and finalize jobs with no work left.
fn settle(sched: &mut Sched, specs: &[JobSpec], tokens: &[CancelToken], writer: Option<&CheckpointWriter>) {
    // 1. Cancellations: mark every not-yet-started point cancelled and hand
    //    orphaned claims to parked duplicates. In-flight points finish
    //    normally (cooperative contract).
    for (j, spec) in specs.iter().enumerate() {
        if sched.jobs[j].cancel_seen || !tokens[j].is_cancelled() {
            continue;
        }
        sched.jobs[j].cancel_seen = true;
        let pending: Vec<usize> = sched.jobs[j].pending.drain(..).collect();
        let parked: Vec<(usize, String)> = std::mem::take(&mut sched.jobs[j].parked);
        telemetry::jobs_cancelled_points((pending.len() + parked.len()) as u64);
        for &idx in pending.iter().chain(parked.iter().map(|(idx, _)| idx)) {
            let rec = CheckpointRecord::cancelled(idx);
            if let Some(w) = writer {
                note_error(sched, w.record(&spec.job_id, spec.base_seed, &rec));
            }
            sched.jobs[j].records.insert(idx, rec);
        }
        if spec.budget.cacheable() {
            for &idx in &pending {
                let (addr, _) = spec.cache_key(idx);
                let owns = matches!(
                    sched.cache.get(&addr),
                    Some(CacheEntry { state: ClaimState::Owner { job, point }, .. })
                        if *job == j && *point == idx
                );
                if owns {
                    promote_or_drop(sched, &addr);
                }
            }
        }
    }

    // 2. Serve parked duplicates whose designated evaluator delivered.
    for (j, spec) in specs.iter().enumerate() {
        let parked = std::mem::take(&mut sched.jobs[j].parked);
        let mut still = Vec::with_capacity(parked.len());
        for (idx, addr) in parked {
            match sched.cache.get(&addr) {
                Some(CacheEntry { state: ClaimState::Done(rec), .. }) => {
                    let mut copy = rec.clone();
                    copy.point = idx;
                    if let Some(w) = writer {
                        note_error(sched, w.record(&spec.job_id, spec.base_seed, &copy));
                    }
                    sched.jobs[j].records.insert(idx, copy);
                    sched.jobs[j].cached += 1;
                    telemetry::cache_hit();
                }
                _ => still.push((idx, addr)),
            }
        }
        sched.jobs[j].parked = still;
    }

    // 3. Finalize jobs with nothing pending, parked, or in flight.
    for (j, spec) in specs.iter().enumerate() {
        let st = &sched.jobs[j];
        if st.done || !st.pending.is_empty() || !st.parked.is_empty() || st.inflight > 0 {
            continue;
        }
        let status = job_status(&st.records);
        sched.jobs[j].done = true;
        if let Some(w) = writer {
            if !sched.jobs[j].had_terminal {
                note_error(sched, w.append_json(&transition(spec, status.label())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job_id: &str, tenant: &str, points: u64) -> JobSpec {
        JobSpec {
            job_id: job_id.to_owned(),
            tenant: tenant.to_owned(),
            experiment: "jobtest",
            base_seed: 7,
            seed_policy: SeedPolicy::Derived,
            priority: Priority::Normal,
            budget: JobBudget::default(),
            grid: (0..points).map(|p| Json::obj([("p", Json::U64(p))])).collect(),
        }
    }

    #[test]
    fn identity_hash_tracks_result_relevant_fields_only() {
        let a = spec("a", "t1", 3);
        let mut b = spec("b", "t2", 3);
        b.priority = Priority::High;
        b.budget.retries = 9;
        b.budget.stagger_ms = 5;
        assert_eq!(a.identity_hash(), b.identity_hash(), "id/tenant/priority/pacing are not identity");
        let mut c = spec("c", "t1", 3);
        c.base_seed = 8;
        assert_ne!(a.identity_hash(), c.identity_hash(), "the seed is identity");
        let mut d = spec("d", "t1", 3);
        d.budget.event_budget = Some(100);
        assert_ne!(a.identity_hash(), d.identity_hash(), "the event budget shapes results");
    }

    #[test]
    fn rejections_render_their_reason() {
        let cases = [
            (RejectReason::QueueFull { capacity: 2 }, "queue is full (capacity 2)"),
            (RejectReason::DuplicateJobId, "already queued"),
            (RejectReason::EmptyGrid, "grid is empty"),
            (RejectReason::GridTooLarge { points: 9, max_points: 4 }, "above the per-job cap of 4"),
            (
                RejectReason::JournalMismatch { expected: "aa".into(), found: "bb".into() },
                "journal admitted aa",
            ),
        ];
        for (reason, needle) in cases {
            let msg = Rejected { job_id: "j".into(), reason }.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(msg.contains("job 'j' rejected"), "{msg:?}");
        }
    }

    #[test]
    fn transition_lines_self_hash_and_survive_reload() {
        let s = spec("job-a", "tenant-a", 2);
        let line = transition(&s, "admitted").to_compact_string();
        let path = std::env::temp_dir().join(format!("malsim-jobs-transition-{}.jnl", std::process::id()));
        std::fs::write(&path, format!("{line}\n")).unwrap();
        let loaded = load_journal(&path, &REAL_FS).unwrap();
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.jobs["job-a"].identity.as_deref(), Some(s.identity_hash().as_str()));
        // A tampered status fails the self-hash and is counted, not trusted.
        std::fs::write(&path, format!("{}\n", line.replace("admitted", "cancelled"))).unwrap();
        let loaded = load_journal(&path, &REAL_FS).unwrap();
        assert_eq!(loaded.skipped, 1);
        assert!(loaded.jobs.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn job_status_ranks_cancelled_over_degraded_over_completed() {
        let mut records = BTreeMap::new();
        records.insert(0, CheckpointRecord::cancelled(0));
        let mut poisoned = CheckpointRecord::cancelled(1);
        poisoned.status = PointStatus::Poisoned;
        let mut completed = CheckpointRecord::cancelled(2);
        completed.status = PointStatus::Completed;
        records.insert(1, poisoned.clone());
        records.insert(2, completed.clone());
        assert_eq!(job_status(&records), JobStatus::Cancelled);
        records.remove(&0);
        assert_eq!(job_status(&records), JobStatus::Degraded);
        records.remove(&1);
        assert_eq!(job_status(&records), JobStatus::Completed);
    }
}
