//! # malsim
//!
//! The facade crate of the **malsim** workspace: a deterministic
//! discrete-event simulation framework for studying the targeted-malware
//! campaigns dissected in *"The Middle East under Malware Attack: Dissecting
//! Cyber Weapons"* (Zhioua, ICDCS 2013 Workshops) — Stuxnet, Flame, and
//! Shamoon — as abstract, measurable system models.
//!
//! Everything is synthetic: hosts, exploits, certificates, PLCs, and
//! payloads are simulation objects, and the only "crypto" is a deliberately
//! toy scheme. The framework exists to reproduce the paper's *campaign
//! dynamics* — spread curves, targeting discipline, C&C data flow,
//! destruction counts, anti-forensics effects — as experiments.
//!
//! ## Layers
//!
//! | crate | role |
//! |---|---|
//! | `malsim-kernel` | event scheduler, seeded rng, trace, metrics |
//! | `malsim-pe` | toy executable container (MZSM) |
//! | `malsim-certs` | toy PKI with the weak-hash forgery path |
//! | `malsim-script` | the "Flua" VM running Flame's modules |
//! | `malsim-os` | simulated Windows hosts |
//! | `malsim-net` | zones, DNS, WPAD MITM, HTTP, bluetooth |
//! | `malsim-scada` | Step 7 / PLC / centrifuge plant |
//! | `malsim-defense` | AV, IDS, forensics |
//! | `malsim-malware` | the three campaign models |
//! | `malsim-analysis` | trend matrix, timelines, tables |
//! | `malsim` (this) | scenarios, arming, activity, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use malsim::prelude::*;
//!
//! // Reproduce the paper's Figure 1 chain in a few lines:
//! let result = experiments::e1_stuxnet_end_to_end(42, 30);
//! assert!(result.plc_implanted);
//! assert!(result.destroyed > 0);
//! assert!(!result.safety_tripped, "the rootkit blinds the safety system");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod armory;
pub mod chaosfs;
pub mod checkpoint;
pub mod error;
pub mod experiments;
pub mod export;
pub mod golden;
pub mod invariants;
pub mod jobs;
pub mod report;
pub mod scenario;
pub mod script_api;
pub mod sweep;
pub mod telemetry;

pub use error::Error;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use crate::activity;
    pub use crate::armory::Pki;
    pub use crate::chaosfs::{self, ChaosFs, FaultSchedule, RealFs, StorageBackend};
    pub use crate::checkpoint::{self, CheckpointConfig, SweepOutcomes};
    pub use crate::error::Error;
    pub use crate::experiments;
    pub use crate::export;
    pub use crate::golden;
    pub use crate::invariants;
    pub use crate::jobs::{
        self, CancelToken, JobBudget, JobOutcome, JobQueue, JobSpec, JobStatus, Priority, QueueConfig,
        SeedPolicy,
    };
    pub use crate::report::{self, Json};
    pub use crate::scenario::ScenarioBuilder;
    pub use crate::script_api::{self, ScriptManifest, ScriptRunReport, ScriptScenario};
    pub use crate::sweep::{
        self, PointOutcome, PointRun, PoolConfig, ScriptFaultInfo, SweepSupervisor, Truncation,
    };
    pub use crate::telemetry;
    pub use malsim_analysis::prelude::*;
    pub use malsim_kernel::prelude::*;
    pub use malsim_malware::prelude::*;
    pub use malsim_os::host::HostId;
}
