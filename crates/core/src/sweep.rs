//! Deterministic parallel sweep runner.
//!
//! Every experiment in [`crate::experiments`] is a parameter sweep: a grid of
//! points (patch rates, LAN sizes, takedown fractions, action rates), each
//! evaluated by an independent simulation. [`run`] fans those points across
//! scoped worker threads and returns the results **in point order**, with a
//! hard determinism contract: the output is byte-identical at every thread
//! count, including 1.
//!
//! The contract holds because a point's randomness comes only from its
//! [`SweepCtx`] — either the stable derived stream seed
//! ([`SweepCtx::derived_seed`], keyed on `(experiment, point, seed)` via
//! [`SimRng::derive_stream_seed`]) or, for *paired* designs, the shared base
//! seed — never from shared mutable state, thread identity, or execution
//! order.
//!
//! ## Derived vs paired seeding
//!
//! Independent points (E2's patch rates, E4's LAN sizes, E6's takedown
//! fractions, E11's action rates) seed their scenario from
//! [`SweepCtx::derived_seed`], so each point explores its own world.
//! Ablation pairs and monotone sweeps that compare points against each other
//! (E3, E8, E12, E13) instead seed every point from
//! [`SweepCtx::base_seed`]: the arms then share corpora, topologies, and
//! fault prefixes, and differ only in the treatment — the paired design the
//! shape tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use malsim_kernel::rng::SimRng;
use malsim_kernel::sched::ProfileSummary;

/// The identity of one sweep point: which experiment, which point index, and
/// the sweep's base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCtx {
    /// Stable experiment label (e.g. `"e2"`); part of the stream key.
    pub experiment: &'static str,
    /// Zero-based index of the point in the grid.
    pub point: usize,
    /// The seed the whole sweep was invoked with.
    pub base_seed: u64,
}

impl SweepCtx {
    /// The stable per-point seed derived from `(experiment, point,
    /// base_seed)`. Use for independent points.
    pub fn derived_seed(&self) -> u64 {
        SimRng::derive_stream_seed(self.base_seed, self.experiment, self.point as u64)
    }

    /// An rng seeded from [`SweepCtx::derived_seed`], for point-local draws
    /// outside a simulation.
    pub fn rng(&self) -> SimRng {
        SimRng::for_stream(self.base_seed, self.experiment, self.point as u64)
    }
}

/// Worker-thread count for sweeps: `MALSIM_THREADS` if set (minimum 1),
/// otherwise the machine's available parallelism.
///
/// The count never changes *what* a sweep computes — only how fast.
pub fn threads_from_env() -> usize {
    match std::env::var("MALSIM_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Evaluates `run_point` over every point of `points` on up to `threads`
/// worker threads, returning results in point order.
///
/// Scheduling is work-stealing over an atomic point index, so stragglers
/// (e.g. E13's 0%-takedown point, which uploads the most) don't serialize
/// the sweep; determinism is unaffected because results are placed by index
/// and each point's randomness is keyed, not sequenced.
///
/// # Panics
///
/// Propagates a panic from any worker (the sweep is aborted).
pub fn run<P, R, F>(
    experiment: &'static str,
    base_seed: u64,
    points: &[P],
    threads: usize,
    run_point: F,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&SweepCtx, &P) -> R + Sync,
{
    let ctx = |point: usize| SweepCtx { experiment, point, base_seed };
    let threads = threads.clamp(1, points.len().max(1));
    if threads == 1 {
        return points.iter().enumerate().map(|(i, p)| run_point(&ctx(i), p)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(points.len()).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = points.get(i) else { break };
                        mine.push((i, run_point(&ctx(i), p)));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            for (i, r) in worker.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every sweep point is computed exactly once")).collect()
}

/// Per-category roll-up of one metric across a grid of profiling summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupRow {
    /// Dispatch category (a [`TraceCategory`](malsim_kernel::trace::TraceCategory)
    /// name or `"(untraced)"`).
    pub category: String,
    /// `(min, median, max)` events dispatched per point.
    pub events: (u64, u64, u64),
    /// `(min, median, max)` host milliseconds per point.
    pub host_ms: (f64, f64, f64),
}

/// Min/median/max roll-up of per-point [`ProfileSummary`]s across a sweep
/// grid. A point that never dispatched a category contributes zero for it,
/// so the rows compare like-for-like across the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRollup {
    /// One row per category seen anywhere in the grid, sorted by name.
    pub rows: Vec<RollupRow>,
    /// Number of grid points rolled up.
    pub points: usize,
}

/// Builds the [`ProfileRollup`] for a sweep's per-point profiling summaries
/// (as returned by the `_profiled_t` experiment variants).
pub fn profile_rollup(summaries: &[ProfileSummary]) -> ProfileRollup {
    let mut per_cat: BTreeMap<&str, (Vec<u64>, Vec<f64>)> = BTreeMap::new();
    for summary in summaries {
        for row in &summary.rows {
            per_cat.entry(&row.category).or_default();
        }
    }
    for summary in summaries {
        for (cat, (events, host_ms)) in per_cat.iter_mut() {
            let row = summary.rows.iter().find(|r| r.category == *cat);
            events.push(row.map_or(0, |r| r.events));
            host_ms.push(row.map_or(0.0, |r| r.host_ms));
        }
    }
    let rows = per_cat
        .into_iter()
        .map(|(category, (mut events, mut host_ms))| {
            events.sort_unstable();
            host_ms.sort_by(f64::total_cmp);
            RollupRow {
                category: category.to_owned(),
                events: (events[0], nearest_rank(&events), events[events.len() - 1]),
                host_ms: (host_ms[0], nearest_rank(&host_ms), host_ms[host_ms.len() - 1]),
            }
        })
        .collect();
    ProfileRollup { rows, points: summaries.len() }
}

/// Nearest-rank median of a sorted non-empty slice (same convention as
/// [`Histogram::quantile`](malsim_kernel::metrics::Histogram::quantile)).
fn nearest_rank<T: Copy>(sorted: &[T]) -> T {
    let rank = (0.5 * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl ProfileRollup {
    /// Renders the roll-up as an aligned table, one category per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scheduler profile across {} sweep points (min / median / max):", self.points);
        let width = self.rows.iter().map(|r| r.category.len()).max().unwrap_or(8).max(8);
        let _ = writeln!(out, "{:width$}  {:>27}  {:>30}", "category", "events", "host ms");
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:width$}  {:>7} / {:>7} / {:>7}  {:>8.2} / {:>8.2} / {:>8.2}",
                row.category,
                row.events.0,
                row.events.1,
                row.events.2,
                row.host_ms.0,
                row.host_ms.1,
                row.host_ms.2,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::sched::ProfileRow;

    #[test]
    fn results_come_back_in_point_order() {
        let points: Vec<usize> = (0..100).collect();
        let out = run("order", 1, &points, 8, |ctx, &p| {
            assert_eq!(ctx.point, p);
            p * 2
        });
        assert_eq!(out, (0..100).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let points: Vec<u64> = (0..40).collect();
        let eval = |ctx: &SweepCtx, &p: &u64| {
            // Draw from the derived stream so the value depends on the key
            // alone; any order- or thread-dependence would break equality.
            let mut rng = ctx.rng();
            (p, ctx.derived_seed(), rng.bits())
        };
        let serial = run("par", 9, &points, 1, eval);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, run("par", 9, &points, threads, eval), "threads={threads}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_per_point_and_experiment() {
        let a = SweepCtx { experiment: "e2", point: 0, base_seed: 42 };
        let b = SweepCtx { experiment: "e2", point: 1, base_seed: 42 };
        let c = SweepCtx { experiment: "e4", point: 0, base_seed: 42 };
        assert_ne!(a.derived_seed(), b.derived_seed());
        assert_ne!(a.derived_seed(), c.derived_seed());
    }

    #[test]
    fn degenerate_grids_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(run("empty", 1, &empty, 8, |_, &p| p).is_empty());
        assert_eq!(run("one", 1, &[7u32], 8, |_, &p| p), vec![7]);
    }

    fn summary(cats: &[(&str, u64, f64)]) -> ProfileSummary {
        let rows: Vec<ProfileRow> = cats
            .iter()
            .map(|&(category, events, host_ms)| ProfileRow { category: category.to_owned(), events, host_ms })
            .collect();
        let total_events = rows.iter().map(|r| r.events).sum();
        let total_host_ms = rows.iter().map(|r| r.host_ms).sum();
        ProfileSummary {
            rows,
            total_events,
            total_host_ms,
            queue_p50: 0.0,
            queue_p95: 0.0,
            queue_p99: 0.0,
            queue_max: 0.0,
        }
    }

    #[test]
    fn rollup_takes_min_median_max_per_category() {
        let grid = [
            summary(&[("net", 10, 1.0), ("c2", 5, 0.5)]),
            summary(&[("net", 30, 3.0)]),
            summary(&[("net", 20, 2.0), ("c2", 7, 0.7)]),
        ];
        let rollup = profile_rollup(&grid);
        assert_eq!(rollup.points, 3);
        assert_eq!(rollup.rows.len(), 2);
        // Categories come back sorted; missing categories count as zero.
        assert_eq!(rollup.rows[0].category, "c2");
        assert_eq!(rollup.rows[0].events, (0, 5, 7));
        assert_eq!(rollup.rows[1].category, "net");
        assert_eq!(rollup.rows[1].events, (10, 20, 30));
        assert_eq!(rollup.rows[1].host_ms, (1.0, 2.0, 3.0));
        let table = rollup.render();
        assert!(table.contains("3 sweep points"), "{table}");
        assert!(table.contains("net"), "{table}");
    }

    #[test]
    fn thread_env_override_is_respected() {
        // Not set in the test environment by default; the parse path is what
        // matters, so exercise it directly.
        assert_eq!("3".trim().parse::<usize>().unwrap_or(1).max(1), 3);
        assert_eq!("bogus".trim().parse::<usize>().unwrap_or(1).max(1), 1);
        assert_eq!("0".trim().parse::<usize>().unwrap_or(1).max(1), 1);
        assert!(threads_from_env() >= 1);
    }
}
