//! Deterministic parallel sweep runner.
//!
//! Every experiment in [`crate::experiments`] is a parameter sweep: a grid of
//! points (patch rates, LAN sizes, takedown fractions, action rates), each
//! evaluated by an independent simulation. [`run`] fans those points across
//! scoped worker threads and returns the results **in point order**, with a
//! hard determinism contract: the output is byte-identical at every thread
//! count, including 1.
//!
//! The contract holds because a point's randomness comes only from its
//! [`SweepCtx`] — either the stable derived stream seed
//! ([`SweepCtx::derived_seed`], keyed on `(experiment, point, seed)` via
//! [`SimRng::derive_stream_seed`]) or, for *paired* designs, the shared base
//! seed — never from shared mutable state, thread identity, or execution
//! order.
//!
//! ## Derived vs paired seeding
//!
//! Independent points (E2's patch rates, E4's LAN sizes, E6's takedown
//! fractions, E11's action rates) seed their scenario from
//! [`SweepCtx::derived_seed`], so each point explores its own world.
//! Ablation pairs and monotone sweeps that compare points against each other
//! (E3, E8, E12, E13) instead seed every point from
//! [`SweepCtx::base_seed`]: the arms then share corpora, topologies, and
//! fault prefixes, and differ only in the treatment — the paired design the
//! shape tests rely on.
//!
//! The contract survives hostile storage, too: the checkpointed runner
//! ([`crate::checkpoint`]) persists through a [`crate::chaosfs`] backend
//! that retries transient I/O faults and quarantines on fatal ones, so a
//! failing disk can cost durability but never perturb the sweep's bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use malsim_kernel::invariant::InvariantViolation;
use malsim_kernel::rng::SimRng;
use malsim_kernel::sched::{ProfileSummary, StopReason, Watchdog};

use crate::telemetry;

/// The identity of one sweep point: which experiment, which point index, and
/// the sweep's base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCtx {
    /// Stable experiment label (e.g. `"e2"`); part of the stream key.
    pub experiment: &'static str,
    /// Zero-based index of the point in the grid.
    pub point: usize,
    /// The seed the whole sweep was invoked with.
    pub base_seed: u64,
}

impl SweepCtx {
    /// The stable per-point seed derived from `(experiment, point,
    /// base_seed)`. Use for independent points.
    pub fn derived_seed(&self) -> u64 {
        SimRng::derive_stream_seed(self.base_seed, self.experiment, self.point as u64)
    }

    /// An rng seeded from [`SweepCtx::derived_seed`], for point-local draws
    /// outside a simulation.
    pub fn rng(&self) -> SimRng {
        SimRng::for_stream(self.base_seed, self.experiment, self.point as u64)
    }
}

/// Worker-pool sizing shared by every parallel surface: plain sweeps, the
/// supervised and checkpointed runners, and the multi-tenant
/// [`JobQueue`](crate::jobs::JobQueue).
///
/// There is exactly one sizing rule in the workspace — this type — so an
/// explicit per-run override and the `MALSIM_THREADS` environment knob can
/// never disagree about what a "default" worker count means. The resolved
/// count never changes *what* a run computes, only how fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolConfig {
    /// Explicit worker count (clamped to ≥ 1 on resolve). `None` defers to
    /// `MALSIM_THREADS`, then to the machine's available parallelism.
    pub threads: Option<usize>,
}

impl PoolConfig {
    /// Defer entirely to the environment (`MALSIM_THREADS`, then core count).
    pub fn from_env() -> PoolConfig {
        PoolConfig { threads: None }
    }

    /// A fixed worker count, ignoring the environment.
    pub const fn explicit(threads: usize) -> PoolConfig {
        PoolConfig { threads: Some(threads) }
    }

    /// The effective worker count: the explicit override if set (minimum 1),
    /// else `MALSIM_THREADS` (minimum 1, unparsable values read as 1), else
    /// the machine's available parallelism.
    pub fn resolve(&self) -> usize {
        match self.threads {
            Some(n) => n.max(1),
            None => match std::env::var("MALSIM_THREADS") {
                Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
                Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            },
        }
    }
}

/// Worker-thread count for sweeps: `MALSIM_THREADS` if set (minimum 1),
/// otherwise the machine's available parallelism. Shorthand for
/// [`PoolConfig::from_env`]`.resolve()`.
pub fn threads_from_env() -> usize {
    PoolConfig::from_env().resolve()
}

/// Evaluates `run_point` over every point of `points` on up to `threads`
/// worker threads, returning results in point order.
///
/// Scheduling is work-stealing over an atomic point index, so stragglers
/// (e.g. E13's 0%-takedown point, which uploads the most) don't serialize
/// the sweep; determinism is unaffected because results are placed by index
/// and each point's randomness is keyed, not sequenced.
///
/// # Panics
///
/// Propagates a panic from any worker (the sweep is aborted).
pub fn run<P, R, F>(
    experiment: &'static str,
    base_seed: u64,
    points: &[P],
    threads: usize,
    run_point: F,
) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&SweepCtx, &P) -> R + Sync,
{
    let ctx = |point: usize| SweepCtx { experiment, point, base_seed };
    let threads = threads.clamp(1, points.len().max(1));
    if threads == 1 {
        return points.iter().enumerate().map(|(i, p)| run_point(&ctx(i), p)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(points.len()).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = points.get(i) else { break };
                        mine.push((i, run_point(&ctx(i), p)));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            for (i, r) in worker.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every sweep point is computed exactly once")).collect()
}

/// Supervision policy for a sweep: retry budget for panicking points, the
/// per-point [`Watchdog`] limits, and whether to arm the runtime invariant
/// checker inside each point's simulation.
///
/// The default supervisor imposes nothing: no retries, no limits, checker
/// off — [`supervised_point`] then only adds panic isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepSupervisor {
    /// How many times a panicking point is re-attempted before it is
    /// quarantined as [`PointOutcome::Poisoned`].
    pub retries: u32,
    /// Deterministic per-point event budget (see [`Watchdog::max_events`]).
    pub event_budget: Option<u64>,
    /// Host-clock per-point deadline in milliseconds; nondeterministic, for
    /// runaway protection only (see [`Watchdog::deadline_ms`]).
    pub deadline_ms: Option<u64>,
    /// Arm the kernel invariant checker (non-strict) inside each point.
    pub check_invariants: bool,
    /// Host-clock sleep before each point starts, in milliseconds. Zero in
    /// normal use; nonzero only to widen the kill window in resume drills.
    pub stagger_ms: u64,
    /// Host-clock backoff between panic re-attempts, in milliseconds; the
    /// sleep grows linearly with the attempt number (`backoff × attempts`).
    /// Zero (the default) retries immediately. Backoff is pure pacing: it
    /// never changes what a retried point computes.
    pub retry_backoff_ms: u64,
}

impl SweepSupervisor {
    /// The per-point watchdog this policy implies.
    pub fn watchdog(&self) -> Watchdog {
        Watchdog { max_events: self.event_budget, deadline_ms: self.deadline_ms }
    }
}

/// Why a point's simulation was cut short by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The deterministic event budget ran out.
    EventBudget,
    /// The host-clock deadline passed (nondeterministic).
    HostDeadline,
}

impl Truncation {
    /// Maps a watched run's stop reason; `Completed` is not a truncation.
    pub fn from_stop(reason: StopReason) -> Option<Truncation> {
        match reason {
            StopReason::Completed => None,
            StopReason::EventBudget => Some(Truncation::EventBudget),
            StopReason::HostDeadline => Some(Truncation::HostDeadline),
        }
    }

    /// Stable lower-case label (`"event_budget"` / `"host_deadline"`).
    pub fn label(&self) -> &'static str {
        match self {
            Truncation::EventBudget => "event_budget",
            Truncation::HostDeadline => "host_deadline",
        }
    }
}

/// What one supervised point produced: the experiment's own result plus the
/// supervision verdicts (was it truncated, what invariants broke).
#[derive(Debug, Clone, PartialEq)]
pub struct PointRun<R> {
    /// The experiment's result row for this point (partial if truncated).
    pub result: R,
    /// Set when the watchdog cut the point short.
    pub truncation: Option<Truncation>,
    /// Invariant violations observed during the point, if the checker ran.
    pub violations: Vec<InvariantViolation>,
}

impl<R> PointRun<R> {
    /// A run that completed untruncated with no violations.
    pub fn complete(result: R) -> Self {
        PointRun { result, truncation: None, violations: Vec::new() }
    }
}

/// How a scenario script failed at one grid point: the typed fault rendered
/// for the report, plus enough context to reproduce and triage it.
///
/// Produced by fallible point closures (see [`supervised_point_fallible`]);
/// the sweep turns it into [`PointOutcome::ScriptFault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptFaultInfo {
    /// The script's manifest name (or a stable synthetic id).
    pub script_id: String,
    /// `Display` rendering of the underlying
    /// [`RunScriptError`](malsim_script::error::RunScriptError) or
    /// [`CompileScriptError`](malsim_script::error::CompileScriptError).
    pub error: String,
    /// Fuel the script had consumed when it faulted (0 for compile faults).
    pub fuel_used: u64,
}

/// Terminal outcome of one supervised sweep point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome<R> {
    /// The point produced a result (possibly truncated) within the retry
    /// budget.
    Completed {
        /// The run's result and supervision verdicts.
        run: PointRun<R>,
        /// Attempts consumed, counting the successful one (1 = first try).
        attempts: u32,
    },
    /// Every attempt panicked; the point is quarantined so the rest of the
    /// grid can complete.
    Poisoned {
        /// Rendered panic payload from the final attempt.
        panic_msg: String,
        /// The point's derived stream seed, for standalone reproduction.
        seed: u64,
        /// Zero-based grid index of the point.
        point: usize,
        /// `Debug` rendering of the point's parameters.
        params: String,
        /// Attempts consumed (all panicked).
        attempts: u32,
    },
    /// The point's scenario script faulted (ran out of fuel/memory, called
    /// a forbidden capability, hit a runtime error…). Deterministic — the
    /// same script fails the same way every time — so unlike
    /// [`PointOutcome::Poisoned`] no retries are burned; the point is
    /// tagged and the rest of the grid completes.
    ScriptFault {
        /// The script's manifest name.
        script_id: String,
        /// `Display` rendering of the typed fault.
        error: String,
        /// Fuel consumed before the fault.
        fuel_used: u64,
        /// Zero-based grid index of the point.
        point: usize,
    },
}

impl<R> PointOutcome<R> {
    /// The completed run, if the point was not poisoned or script-faulted.
    pub fn run(&self) -> Option<&PointRun<R>> {
        match self {
            PointOutcome::Completed { run, .. } => Some(run),
            PointOutcome::Poisoned { .. } | PointOutcome::ScriptFault { .. } => None,
        }
    }
}

/// Renders a caught panic payload (the `String`/`&str` cases panics almost
/// always carry).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one point under the supervisor: optional stagger sleep, then up to
/// `1 + retries` attempts with each panic caught and the last one quarantined
/// as [`PointOutcome::Poisoned`].
///
/// # Unwind safety
///
/// The `catch_unwind` here uses `AssertUnwindSafe`, which is sound under the
/// sweep contract: `run_point` must be a pure function of `(ctx, point)` that
/// rebuilds all simulation state from the ctx's seed. The only state crossing
/// the unwind boundary is shared *immutable* borrows (`point`, the closure's
/// captures); a panicking attempt can therefore leave nothing half-mutated
/// for the retry — or any other point — to observe. Closures that mutate
/// shared state through interior mutability are outside the contract.
pub fn supervised_point<P, R, F>(
    ctx: &SweepCtx,
    supervisor: &SweepSupervisor,
    point: &P,
    run_point: &F,
) -> PointOutcome<R>
where
    P: std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> PointRun<R>,
{
    supervised_point_fallible(ctx, supervisor, point, &|ctx: &SweepCtx, p: &P| Ok(run_point(ctx, p)))
}

/// [`supervised_point`] for points that can fail with a typed script fault
/// in addition to panicking.
///
/// The two failure modes are handled differently: a panic is assumed
/// transient-ish and retried up to the supervisor's budget; an
/// `Err(ScriptFaultInfo)` is deterministic (the same script faults the same
/// way on every attempt), so it is tagged as
/// [`PointOutcome::ScriptFault`] immediately without burning a retry.
pub fn supervised_point_fallible<P, R, F>(
    ctx: &SweepCtx,
    supervisor: &SweepSupervisor,
    point: &P,
    run_point: &F,
) -> PointOutcome<R>
where
    P: std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> Result<PointRun<R>, ScriptFaultInfo>,
{
    if supervisor.stagger_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(supervisor.stagger_ms));
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_point(ctx, point))) {
            Ok(Ok(run)) => {
                telemetry::points_retried(u64::from(attempts - 1));
                telemetry::point_completed(run.truncation);
                return PointOutcome::Completed { run, attempts };
            }
            Ok(Err(fault)) => {
                telemetry::point_script_fault();
                return PointOutcome::ScriptFault {
                    script_id: fault.script_id,
                    error: fault.error,
                    fuel_used: fault.fuel_used,
                    point: ctx.point,
                };
            }
            Err(payload) => {
                if attempts > supervisor.retries {
                    telemetry::points_retried(u64::from(attempts - 1));
                    telemetry::point_quarantined();
                    return PointOutcome::Poisoned {
                        panic_msg: panic_message(payload),
                        seed: ctx.derived_seed(),
                        point: ctx.point,
                        params: format!("{point:?}"),
                        attempts,
                    };
                }
                if supervisor.retry_backoff_ms > 0 {
                    let pause = supervisor.retry_backoff_ms.saturating_mul(u64::from(attempts));
                    std::thread::sleep(std::time::Duration::from_millis(pause));
                }
            }
        }
    }
}

/// [`run`] with per-point supervision: a panicking point is retried up to
/// `supervisor.retries` times and then quarantined as
/// [`PointOutcome::Poisoned`] instead of aborting the sweep, so the other
/// `n - 1` points still complete.
///
/// `run_point` is responsible for honouring the supervisor's watchdog and
/// invariant settings when it builds its simulation (see
/// [`SweepSupervisor::watchdog`]); the runner cannot reach inside a point.
/// Determinism: outcomes are byte-identical across thread counts exactly as
/// with [`run`], as long as only deterministic limits (event budget, not
/// host deadline) are in force.
pub fn run_supervised<P, R, F>(
    experiment: &'static str,
    base_seed: u64,
    points: &[P],
    pool: PoolConfig,
    supervisor: &SweepSupervisor,
    run_point: F,
) -> Vec<PointOutcome<R>>
where
    P: Sync + std::fmt::Debug,
    R: Send,
    F: Fn(&SweepCtx, &P) -> PointRun<R> + Sync,
{
    run(experiment, base_seed, points, pool.resolve(), |ctx, p| {
        supervised_point(ctx, supervisor, p, &run_point)
    })
}

/// [`run_supervised`] for fallible point closures: a point returning
/// `Err(ScriptFaultInfo)` becomes [`PointOutcome::ScriptFault`] (no retries)
/// while the rest of the grid completes normally.
pub fn run_supervised_fallible<P, R, F>(
    experiment: &'static str,
    base_seed: u64,
    points: &[P],
    pool: PoolConfig,
    supervisor: &SweepSupervisor,
    run_point: F,
) -> Vec<PointOutcome<R>>
where
    P: Sync + std::fmt::Debug,
    R: Send,
    F: Fn(&SweepCtx, &P) -> Result<PointRun<R>, ScriptFaultInfo> + Sync,
{
    run(experiment, base_seed, points, pool.resolve(), |ctx, p| {
        supervised_point_fallible(ctx, supervisor, p, &run_point)
    })
}

/// Per-category roll-up of one metric across a grid of profiling summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupRow {
    /// Dispatch category (a [`TraceCategory`](malsim_kernel::trace::TraceCategory)
    /// name or `"(untraced)"`).
    pub category: String,
    /// `(min, median, max)` events dispatched per point.
    pub events: (u64, u64, u64),
    /// `(min, median, max)` host milliseconds per point.
    pub host_ms: (f64, f64, f64),
}

/// Min/median/max roll-up of per-point [`ProfileSummary`]s across a sweep
/// grid. A point that never dispatched a category contributes zero for it,
/// so the rows compare like-for-like across the whole grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRollup {
    /// One row per category seen anywhere in the grid, sorted by name.
    pub rows: Vec<RollupRow>,
    /// Number of grid points rolled up.
    pub points: usize,
    /// Points excluded because they produced no profile (poisoned, or
    /// truncated before [`finish_profile`](malsim_kernel::sched::Sim::finish_profile)).
    /// They are *counted*, never folded in as zeros, so min/median/max reflect
    /// only real measurements.
    pub omitted_points: usize,
}

/// Builds the [`ProfileRollup`] for a sweep's per-point profiling summaries
/// (as returned by the `_profiled_t` experiment variants).
pub fn profile_rollup(summaries: &[ProfileSummary]) -> ProfileRollup {
    rollup_inner(summaries.iter().collect(), 0)
}

/// [`profile_rollup`] over a supervised grid where some points may have no
/// summary: `None` entries (failed, poisoned, or truncated points) are
/// skipped and tallied in [`ProfileRollup::omitted_points`] rather than
/// skewing every category's min toward zero.
pub fn profile_rollup_partial(summaries: &[Option<ProfileSummary>]) -> ProfileRollup {
    let present: Vec<&ProfileSummary> = summaries.iter().flatten().collect();
    let omitted = summaries.len() - present.len();
    rollup_inner(present, omitted)
}

fn rollup_inner(summaries: Vec<&ProfileSummary>, omitted_points: usize) -> ProfileRollup {
    let mut per_cat: BTreeMap<&str, (Vec<u64>, Vec<f64>)> = BTreeMap::new();
    for summary in &summaries {
        for row in &summary.rows {
            per_cat.entry(&row.category).or_default();
        }
    }
    for summary in &summaries {
        for (cat, (events, host_ms)) in per_cat.iter_mut() {
            let row = summary.rows.iter().find(|r| r.category == *cat);
            events.push(row.map_or(0, |r| r.events));
            host_ms.push(row.map_or(0.0, |r| r.host_ms));
        }
    }
    let rows = per_cat
        .into_iter()
        .map(|(category, (mut events, mut host_ms))| {
            events.sort_unstable();
            host_ms.sort_by(f64::total_cmp);
            RollupRow {
                category: category.to_owned(),
                events: (events[0], nearest_rank(&events), events[events.len() - 1]),
                host_ms: (host_ms[0], nearest_rank(&host_ms), host_ms[host_ms.len() - 1]),
            }
        })
        .collect();
    ProfileRollup { rows, points: summaries.len(), omitted_points }
}

/// Nearest-rank median of a sorted non-empty slice (same convention as
/// [`Histogram::quantile`](malsim_kernel::metrics::Histogram::quantile)).
fn nearest_rank<T: Copy>(sorted: &[T]) -> T {
    let rank = (0.5 * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl ProfileRollup {
    /// Renders the roll-up as an aligned table, one category per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scheduler profile across {} sweep points (min / median / max):", self.points);
        if self.omitted_points > 0 {
            let _ =
                writeln!(out, "({} point(s) without a profile omitted from the stats)", self.omitted_points);
        }
        let width = self.rows.iter().map(|r| r.category.len()).max().unwrap_or(8).max(8);
        let _ = writeln!(out, "{:width$}  {:>27}  {:>30}", "category", "events", "host ms");
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:width$}  {:>7} / {:>7} / {:>7}  {:>8.2} / {:>8.2} / {:>8.2}",
                row.category,
                row.events.0,
                row.events.1,
                row.events.2,
                row.host_ms.0,
                row.host_ms.1,
                row.host_ms.2,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::sched::ProfileRow;

    #[test]
    fn results_come_back_in_point_order() {
        let points: Vec<usize> = (0..100).collect();
        let out = run("order", 1, &points, 8, |ctx, &p| {
            assert_eq!(ctx.point, p);
            p * 2
        });
        assert_eq!(out, (0..100).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let points: Vec<u64> = (0..40).collect();
        let eval = |ctx: &SweepCtx, &p: &u64| {
            // Draw from the derived stream so the value depends on the key
            // alone; any order- or thread-dependence would break equality.
            let mut rng = ctx.rng();
            (p, ctx.derived_seed(), rng.bits())
        };
        let serial = run("par", 9, &points, 1, eval);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, run("par", 9, &points, threads, eval), "threads={threads}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_per_point_and_experiment() {
        let a = SweepCtx { experiment: "e2", point: 0, base_seed: 42 };
        let b = SweepCtx { experiment: "e2", point: 1, base_seed: 42 };
        let c = SweepCtx { experiment: "e4", point: 0, base_seed: 42 };
        assert_ne!(a.derived_seed(), b.derived_seed());
        assert_ne!(a.derived_seed(), c.derived_seed());
    }

    #[test]
    fn degenerate_grids_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(run("empty", 1, &empty, 8, |_, &p| p).is_empty());
        assert_eq!(run("one", 1, &[7u32], 8, |_, &p| p), vec![7]);
    }

    fn summary(cats: &[(&str, u64, f64)]) -> ProfileSummary {
        let rows: Vec<ProfileRow> = cats
            .iter()
            .map(|&(category, events, host_ms)| ProfileRow { category: category.to_owned(), events, host_ms })
            .collect();
        let total_events = rows.iter().map(|r| r.events).sum();
        let total_host_ms = rows.iter().map(|r| r.host_ms).sum();
        ProfileSummary {
            rows,
            total_events,
            total_host_ms,
            queue_p50: 0.0,
            queue_p95: 0.0,
            queue_p99: 0.0,
            queue_max: 0.0,
        }
    }

    #[test]
    fn rollup_takes_min_median_max_per_category() {
        let grid = [
            summary(&[("net", 10, 1.0), ("c2", 5, 0.5)]),
            summary(&[("net", 30, 3.0)]),
            summary(&[("net", 20, 2.0), ("c2", 7, 0.7)]),
        ];
        let rollup = profile_rollup(&grid);
        assert_eq!(rollup.points, 3);
        assert_eq!(rollup.rows.len(), 2);
        // Categories come back sorted; missing categories count as zero.
        assert_eq!(rollup.rows[0].category, "c2");
        assert_eq!(rollup.rows[0].events, (0, 5, 7));
        assert_eq!(rollup.rows[1].category, "net");
        assert_eq!(rollup.rows[1].events, (10, 20, 30));
        assert_eq!(rollup.rows[1].host_ms, (1.0, 2.0, 3.0));
        let table = rollup.render();
        assert!(table.contains("3 sweep points"), "{table}");
        assert!(table.contains("net"), "{table}");
    }

    #[test]
    fn rollup_partial_counts_omissions_instead_of_zero_filling() {
        let grid = [Some(summary(&[("net", 10, 1.0)])), None, Some(summary(&[("net", 30, 3.0)])), None];
        let rollup = profile_rollup_partial(&grid);
        assert_eq!(rollup.points, 2);
        assert_eq!(rollup.omitted_points, 2);
        // The min is a real measurement, not a zero injected by a dead point
        // (the median of an even count takes the upper of the two middles).
        assert_eq!(rollup.rows[0].events, (10, 30, 30));
        let table = rollup.render();
        assert!(table.contains("2 point(s) without a profile"), "{table}");
    }

    #[test]
    fn rollup_of_nothing_is_empty_not_a_panic() {
        let rollup = profile_rollup_partial(&[None, None]);
        assert!(rollup.rows.is_empty());
        assert_eq!(rollup.points, 0);
        assert_eq!(rollup.omitted_points, 2);
    }

    #[test]
    fn poisoned_point_is_quarantined_while_others_complete() {
        let points: Vec<u32> = (0..8).collect();
        let supervisor = SweepSupervisor::default();
        for threads in [1, 2, 8] {
            let outcomes = run_supervised(
                "quarantine",
                3,
                &points,
                PoolConfig::explicit(threads),
                &supervisor,
                |ctx, &p| {
                    if p == 5 {
                        panic!("injected failure at point {p}");
                    }
                    PointRun::complete((ctx.point, p * 10))
                },
            );
            assert_eq!(outcomes.len(), 8);
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 5 {
                    let PointOutcome::Poisoned { panic_msg, seed, point, params, attempts } = outcome else {
                        panic!("point 5 must be poisoned, got {outcome:?}");
                    };
                    assert_eq!(panic_msg, "injected failure at point 5");
                    let ctx = SweepCtx { experiment: "quarantine", point: 5, base_seed: 3 };
                    assert_eq!(*seed, ctx.derived_seed());
                    assert_eq!(*point, 5);
                    assert_eq!(params, "5");
                    assert_eq!(*attempts, 1, "no retries configured");
                } else {
                    assert_eq!(outcome.run().map(|r| r.result), Some((i, i as u32 * 10)));
                }
            }
        }
    }

    #[test]
    fn retry_budget_rescues_flaky_points() {
        use std::sync::atomic::AtomicU32;
        let points: Vec<usize> = (0..4).collect();
        let tries: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let supervisor = SweepSupervisor { retries: 2, ..SweepSupervisor::default() };
        let outcomes = run_supervised("flaky", 1, &points, PoolConfig::explicit(2), &supervisor, |_, &p| {
            let attempt = tries[p].fetch_add(1, Ordering::SeqCst) + 1;
            // Point 2 fails twice, then succeeds — within the retry budget.
            if p == 2 && attempt < 3 {
                panic!("flaky");
            }
            PointRun::complete(p)
        });
        match &outcomes[2] {
            PointOutcome::Completed { run, attempts } => {
                assert_eq!(run.result, 2);
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected rescue, got {other:?}"),
        }
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.run().map(|r| r.result), Some(i));
        }

        // With a smaller budget the same point stays poisoned.
        let tries: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let supervisor = SweepSupervisor { retries: 1, ..SweepSupervisor::default() };
        let outcomes = run_supervised("flaky", 1, &points, PoolConfig::explicit(2), &supervisor, |_, &p| {
            let attempt = tries[p].fetch_add(1, Ordering::SeqCst) + 1;
            if p == 2 && attempt < 3 {
                panic!("flaky");
            }
            PointRun::complete(p)
        });
        match &outcomes[2] {
            PointOutcome::Poisoned { attempts, panic_msg, .. } => {
                assert_eq!(*attempts, 2, "initial try plus one retry");
                assert_eq!(panic_msg, "flaky");
            }
            other => panic!("expected poisoning, got {other:?}"),
        }
    }

    #[test]
    fn script_fault_tags_the_point_without_burning_retries() {
        use std::sync::atomic::AtomicU32;
        let points: Vec<u32> = (0..6).collect();
        let tries: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        // Generous retry budget: a deterministic script fault must still be
        // reported after exactly one attempt.
        let supervisor = SweepSupervisor { retries: 5, ..SweepSupervisor::default() };
        for threads in [1, 4] {
            for t in &tries {
                t.store(0, Ordering::SeqCst);
            }
            let outcomes = run_supervised_fallible(
                "scriptfault",
                7,
                &points,
                PoolConfig::explicit(threads),
                &supervisor,
                |ctx, &p| {
                    tries[p as usize].fetch_add(1, Ordering::SeqCst);
                    if p == 3 {
                        return Err(ScriptFaultInfo {
                            script_id: "bomb.flua".into(),
                            error: "script exceeded its fuel budget".into(),
                            fuel_used: 20_000,
                        });
                    }
                    Ok(PointRun::complete((ctx.point, p)))
                },
            );
            assert_eq!(outcomes.len(), 6);
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == 3 {
                    let PointOutcome::ScriptFault { script_id, error, fuel_used, point } = outcome else {
                        panic!("point 3 must be a script fault, got {outcome:?}");
                    };
                    assert_eq!(script_id, "bomb.flua");
                    assert_eq!(error, "script exceeded its fuel budget");
                    assert_eq!(*fuel_used, 20_000);
                    assert_eq!(*point, 3);
                    assert!(outcome.run().is_none());
                } else {
                    assert_eq!(outcome.run().map(|r| r.result), Some((i, i as u32)));
                }
            }
            assert_eq!(tries[3].load(Ordering::SeqCst), 1, "no retry burned on a script fault");
        }
    }

    #[test]
    fn supervisor_watchdog_reflects_limits() {
        let s = SweepSupervisor { event_budget: Some(100), deadline_ms: Some(5), ..Default::default() };
        assert_eq!(s.watchdog(), Watchdog { max_events: Some(100), deadline_ms: Some(5) });
        assert_eq!(SweepSupervisor::default().watchdog(), Watchdog::UNLIMITED);
        assert_eq!(Truncation::from_stop(StopReason::Completed), None);
        assert_eq!(Truncation::from_stop(StopReason::EventBudget), Some(Truncation::EventBudget));
        assert_eq!(Truncation::EventBudget.label(), "event_budget");
        assert_eq!(Truncation::HostDeadline.label(), "host_deadline");
    }

    #[test]
    fn thread_env_override_is_respected() {
        // Not set in the test environment by default; the parse path is what
        // matters, so exercise it directly.
        assert_eq!("3".trim().parse::<usize>().unwrap_or(1).max(1), 3);
        assert_eq!("bogus".trim().parse::<usize>().unwrap_or(1).max(1), 1);
        assert_eq!("0".trim().parse::<usize>().unwrap_or(1).max(1), 1);
        assert!(threads_from_env() >= 1);
    }
}
