//! Sweep checkpointing: append-only per-point records and exact resume.
//!
//! A supervised sweep appends one line to a checkpoint file (`sweep.ckpt`)
//! after each point finishes — compact canonical JSON (the
//! [`report`](crate::report) writer, so `serialize ∘ parse` is the identity)
//! carrying the point's status, its result row, an FNV-1a hash of that row,
//! and any invariant violations. A later `--resume` run replays the file,
//! verifies each record's hash, keeps the completed and truncated points,
//! and re-runs only the missing or poisoned ones.
//!
//! **Resume contract:** for a fixed `(experiment, base_seed, grid,
//! supervisor)` with only deterministic limits in force, the final
//! [`SweepOutcomes::report`] is byte-identical whether the sweep ran
//! uninterrupted or was killed and resumed any number of times, at any
//! `MALSIM_THREADS` setting. This holds because each point is a pure
//! function of its [`SweepCtx`] and the report is assembled in point order
//! from (checkpointed ∪ re-run) results, never from file order.
//!
//! Loading is lenient where an interrupted writer can leave damage (a torn
//! final line, a corrupted record) — those lines are counted in
//! [`Manifest::skipped_lines`] and the affected points simply re-run — and
//! strict where silence would be wrong: records from a different experiment
//! or base seed fail loudly with [`CheckpointError::WrongSweep`].

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::report::{self, Json};
use crate::sweep::{self, PointOutcome, PointRun, PoolConfig, SweepCtx, SweepSupervisor};
use crate::telemetry;

/// FNV-1a 64-bit hash (the checkpoint record integrity check).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from checkpoint persistence and resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint file could not be created, read, or appended to.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The checkpoint belongs to a different sweep — resuming would splice
    /// unrelated results into the report.
    WrongSweep {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The `(experiment, base_seed)` this run expected.
        expected: String,
        /// The identity found in the file.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint i/o error on {}: {detail}", path.display())
            }
            CheckpointError::WrongSweep { path, expected, found } => {
                write!(
                    f,
                    "checkpoint {} belongs to a different sweep: expected {expected}, found {found}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Terminal status of one checkpointed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The point ran to completion.
    Completed,
    /// The watchdog cut the point short; the row is partial but consistent.
    Truncated,
    /// Every attempt panicked; there is no row. Poisoned points re-run on
    /// resume.
    Poisoned,
    /// The point's scenario script faulted with a typed error; there is no
    /// row. Unlike poisoned points these are deterministic, so the record
    /// is *kept* on resume rather than re-run.
    ScriptFault,
    /// The point's job was cancelled before the point started; there is no
    /// row. Only the [`jobs`](crate::jobs) layer produces this status —
    /// plain sweeps have no cancellation surface.
    Cancelled,
}

impl PointStatus {
    /// Stable lower-case label used in records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PointStatus::Completed => "completed",
            PointStatus::Truncated => "truncated",
            PointStatus::Poisoned => "poisoned",
            PointStatus::ScriptFault => "script_fault",
            PointStatus::Cancelled => "cancelled",
        }
    }

    pub(crate) fn from_label(label: &str) -> Option<PointStatus> {
        match label {
            "completed" => Some(PointStatus::Completed),
            "truncated" => Some(PointStatus::Truncated),
            "poisoned" => Some(PointStatus::Poisoned),
            "script_fault" => Some(PointStatus::ScriptFault),
            "cancelled" => Some(PointStatus::Cancelled),
            _ => None,
        }
    }
}

/// One point's durable record: everything needed to reconstruct its slot in
/// the final report without re-running it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Zero-based grid index.
    pub point: usize,
    /// Terminal status.
    pub status: PointStatus,
    /// Watchdog truncation label (see
    /// [`Truncation::label`](crate::sweep::Truncation::label)), if truncated.
    pub truncation: Option<String>,
    /// The point's result row; `None` for poisoned points.
    pub row: Option<Json>,
    /// Rendered panic payload, for poisoned points.
    pub panic_msg: Option<String>,
    /// `Debug` rendering of the point's parameters, for poisoned points.
    pub params: Option<String>,
    /// The scenario script's manifest name, for script-faulted points.
    pub script_id: Option<String>,
    /// The typed script fault rendered via `Display`, for script-faulted
    /// points.
    pub script_error: Option<String>,
    /// Fuel the script had consumed when it faulted.
    pub fuel_used: Option<u64>,
    /// Rendered invariant violations observed during the point.
    pub violations: Vec<String>,
}

impl CheckpointRecord {
    /// An empty record for a cancelled point (no row, no fault detail).
    pub(crate) fn cancelled(point: usize) -> CheckpointRecord {
        CheckpointRecord {
            point,
            status: PointStatus::Cancelled,
            truncation: None,
            row: None,
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: Vec::new(),
        }
    }

    /// Serialises the record as one journal/checkpoint object under the
    /// given `(scope, base_seed)` identity — the sweep's experiment label
    /// for checkpoints, the job id for job journals.
    pub(crate) fn to_json(&self, experiment: &str, base_seed: u64) -> Json {
        let (row, hash) = match &self.row {
            Some(row) => (row.clone(), format!("{:016x}", fnv1a64(row.to_compact_string().as_bytes()))),
            None => (Json::Null, String::new()),
        };
        Json::obj([
            ("experiment", experiment.into()),
            ("base_seed", Json::U64(base_seed)),
            ("point", Json::U64(self.point as u64)),
            ("status", self.status.label().into()),
            ("truncation", self.truncation.clone().into()),
            ("hash", hash.into()),
            ("row", row),
            ("panic_msg", self.panic_msg.clone().into()),
            ("params", self.params.clone().into()),
            ("script_id", self.script_id.clone().into()),
            ("script_error", self.script_error.clone().into()),
            ("fuel_used", self.fuel_used.map_or(Json::Null, Json::U64)),
            ("violations", Json::Arr(self.violations.iter().map(|v| v.as_str().into()).collect())),
        ])
    }

    /// Parses one checkpoint line. `Ok(None)` means the line is damaged or
    /// stale (skip and re-run the point); `Err` means it belongs to another
    /// sweep entirely.
    pub(crate) fn from_line(
        line: &str,
        path: &Path,
        experiment: &str,
        base_seed: u64,
    ) -> Result<Option<CheckpointRecord>, CheckpointError> {
        let Ok(v) = report::parse(line) else { return Ok(None) };
        let (Some(exp), Some(seed)) =
            (v.get("experiment").and_then(Json::as_str), v.get("base_seed").and_then(Json::as_u64))
        else {
            return Ok(None);
        };
        if exp != experiment || seed != base_seed {
            return Err(CheckpointError::WrongSweep {
                path: path.to_owned(),
                expected: format!("({experiment}, seed {base_seed})"),
                found: format!("({exp}, seed {seed})"),
            });
        }
        let (Some(point), Some(status), Some(hash)) = (
            v.get("point").and_then(Json::as_u64),
            v.get("status").and_then(Json::as_str).and_then(PointStatus::from_label),
            v.get("hash").and_then(Json::as_str),
        ) else {
            return Ok(None);
        };
        let row = match v.get("row") {
            Some(Json::Null) | None => None,
            Some(row) => Some(row.clone()),
        };
        // Integrity gate: a record whose row does not hash to its recorded
        // digest (torn write, manual edit) is treated as absent.
        let hash_ok = match &row {
            Some(row) => hash == format!("{:016x}", fnv1a64(row.to_compact_string().as_bytes())),
            None => hash.is_empty(),
        };
        if !hash_ok {
            return Ok(None);
        }
        let strings = |key: &str| -> Vec<String> {
            match v.get(key) {
                Some(Json::Arr(items)) => items.iter().filter_map(Json::as_str).map(str::to_owned).collect(),
                _ => Vec::new(),
            }
        };
        Ok(Some(CheckpointRecord {
            point: point as usize,
            status,
            truncation: v.get("truncation").and_then(Json::as_str).map(str::to_owned),
            row,
            panic_msg: v.get("panic_msg").and_then(Json::as_str).map(str::to_owned),
            params: v.get("params").and_then(Json::as_str).map(str::to_owned),
            script_id: v.get("script_id").and_then(Json::as_str).map(str::to_owned),
            script_error: v.get("script_error").and_then(Json::as_str).map(str::to_owned),
            fuel_used: v.get("fuel_used").and_then(Json::as_u64),
            violations: strings("violations"),
        }))
    }
}

/// The usable content of a checkpoint file after a lenient replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Last valid record per point index.
    pub records: BTreeMap<usize, CheckpointRecord>,
    /// Lines that were torn, corrupt, or failed their hash check.
    pub skipped_lines: usize,
}

impl Manifest {
    /// Replays `path`. A missing file is an empty manifest (fresh start);
    /// damaged lines are skipped and counted; a record from a different
    /// `(experiment, base_seed)` is a hard [`CheckpointError::WrongSweep`].
    pub fn load(path: &Path, experiment: &str, base_seed: u64) -> Result<Manifest, CheckpointError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Manifest::default()),
            Err(e) => return Err(CheckpointError::Io { path: path.to_owned(), detail: e.to_string() }),
        };
        let mut manifest = Manifest::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match CheckpointRecord::from_line(line, path, experiment, base_seed)? {
                Some(rec) => {
                    manifest.records.insert(rec.point, rec);
                }
                None => manifest.skipped_lines += 1,
            }
        }
        telemetry::ckpt_damaged_lines(manifest.skipped_lines as u64);
        Ok(manifest)
    }
}

/// Append-only checkpoint writer, safe to share across sweep workers.
///
/// The file lock is held only while serialising one already-computed record
/// — never across user code — so a panicking point cannot poison it.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl CheckpointWriter {
    /// Creates (or truncates) the checkpoint file for a fresh sweep.
    pub fn create(path: &Path) -> Result<CheckpointWriter, CheckpointError> {
        let file = std::fs::File::create(path)
            .map_err(|e| CheckpointError::Io { path: path.to_owned(), detail: e.to_string() })?;
        Ok(CheckpointWriter { path: path.to_owned(), file: Mutex::new(file) })
    }

    /// Opens the checkpoint file for appending (creating it if missing), for
    /// a resumed sweep.
    pub fn append(path: &Path) -> Result<CheckpointWriter, CheckpointError> {
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| CheckpointError::Io { path: path.to_owned(), detail: e.to_string() })?;
        Ok(CheckpointWriter { path: path.to_owned(), file: Mutex::new(file) })
    }

    /// Appends one record as a single compact-JSON line, flushed **and
    /// fsynced**: once this returns, the record survives a `SIGKILL` — or a
    /// power cut — landing immediately after. A kill mid-call can tear at
    /// most the line in flight, which the lenient loader skips and counts.
    pub fn record(
        &self,
        experiment: &str,
        base_seed: u64,
        rec: &CheckpointRecord,
    ) -> Result<(), CheckpointError> {
        self.append_json(&rec.to_json(experiment, base_seed))
    }

    /// Appends one arbitrary record as a single compact-JSON line with the
    /// same flush+fsync durability contract as [`CheckpointWriter::record`].
    /// The job journal writes its state transitions through this.
    pub fn append_json(&self, record: &Json) -> Result<(), CheckpointError> {
        let line = record.to_compact_string();
        let io = |e: std::io::Error| CheckpointError::Io { path: self.path.clone(), detail: e.to_string() };
        let mut file = self.file.lock().expect("checkpoint lock never held across user code");
        writeln!(file, "{line}").map_err(io)?;
        file.flush().map_err(io)?;
        // Time only the durability syscall, and only when telemetry is armed
        // (`Instant::now` is not free on the unarmed path).
        let started = telemetry::armed().then(std::time::Instant::now);
        file.sync_data().map_err(io)?;
        if let Some(t) = started {
            telemetry::ckpt_fsync_micros(t.elapsed().as_micros() as u64);
        }
        telemetry::ckpt_line_written(line.len() as u64 + 1);
        Ok(())
    }
}

/// One point's slot in the final sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The durable fields (shared with the checkpoint record).
    pub record: CheckpointRecord,
    /// Whether this slot was restored from the checkpoint rather than run
    /// in this invocation. Not part of the report payload.
    pub resumed: bool,
}

/// Everything a checkpointed sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcomes {
    /// Stable experiment label.
    pub experiment: &'static str,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// Per-point results in point order.
    pub points: Vec<PointReport>,
    /// How many points were restored from the checkpoint.
    pub resumed_points: usize,
    /// Damaged checkpoint lines that were skipped during load.
    pub skipped_lines: usize,
}

impl SweepOutcomes {
    fn count(&self, status: PointStatus) -> usize {
        self.points.iter().filter(|p| p.record.status == status).count()
    }

    /// The sweep report. Contains only deterministic, run-history-free data
    /// (no attempt counts, no resumed-from markers), so an interrupted-and-
    /// resumed sweep renders byte-identically to an uninterrupted one.
    pub fn report(&self) -> Json {
        let rows = self
            .points
            .iter()
            .map(|p| {
                let r = &p.record;
                Json::obj([
                    ("point", Json::U64(r.point as u64)),
                    ("status", r.status.label().into()),
                    ("truncation", r.truncation.clone().into()),
                    ("row", r.row.clone().unwrap_or(Json::Null)),
                    ("panic_msg", r.panic_msg.clone().into()),
                    ("params", r.params.clone().into()),
                    ("script_id", r.script_id.clone().into()),
                    ("script_error", r.script_error.clone().into()),
                    ("fuel_used", r.fuel_used.map_or(Json::Null, Json::U64)),
                    ("violations", Json::Arr(r.violations.iter().map(|v| v.as_str().into()).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("experiment", self.experiment.into()),
            ("base_seed", Json::U64(self.base_seed)),
            ("points", Json::U64(self.points.len() as u64)),
            ("completed", Json::U64(self.count(PointStatus::Completed) as u64)),
            ("truncated", Json::U64(self.count(PointStatus::Truncated) as u64)),
            ("poisoned", Json::U64(self.count(PointStatus::Poisoned) as u64)),
            ("script_faults", Json::U64(self.count(PointStatus::ScriptFault) as u64)),
            ("rows", Json::Arr(rows)),
        ])
    }
}

/// Configuration for [`run_checkpointed`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig<'a> {
    /// Stable experiment label; part of every record's identity.
    pub experiment: &'static str,
    /// The sweep's base seed; part of every record's identity.
    pub base_seed: u64,
    /// Worker-pool sizing (see [`PoolConfig`]).
    pub pool: PoolConfig,
    /// Per-point supervision policy.
    pub supervisor: SweepSupervisor,
    /// The checkpoint file.
    pub path: &'a Path,
    /// Resume from `path` instead of truncating it.
    pub resume: bool,
}

pub(crate) fn outcome_record(point: usize, outcome: PointOutcome<Json>) -> CheckpointRecord {
    match outcome {
        PointOutcome::Completed { run, .. } => {
            let PointRun { result, truncation, violations } = run;
            CheckpointRecord {
                point,
                status: if truncation.is_some() { PointStatus::Truncated } else { PointStatus::Completed },
                truncation: truncation.map(|t| t.label().to_owned()),
                row: Some(result),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: violations.iter().map(|v| v.to_string()).collect(),
            }
        }
        PointOutcome::Poisoned { panic_msg, params, .. } => CheckpointRecord {
            point,
            status: PointStatus::Poisoned,
            truncation: None,
            row: None,
            panic_msg: Some(panic_msg),
            params: Some(params),
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: Vec::new(),
        },
        PointOutcome::ScriptFault { script_id, error, fuel_used, .. } => CheckpointRecord {
            point,
            status: PointStatus::ScriptFault,
            truncation: None,
            row: None,
            panic_msg: None,
            params: None,
            script_id: Some(script_id),
            script_error: Some(error),
            fuel_used: Some(fuel_used),
            violations: Vec::new(),
        },
    }
}

/// Runs a supervised sweep with per-point checkpointing (and, with
/// `cfg.resume`, exact resume — see the module docs for the contract).
///
/// `run_point` receives the **original** grid index in its [`SweepCtx`] even
/// on a resumed run that only re-runs a subset, so per-point seeds never
/// shift. It returns the point's report row as [`Json`] inside a
/// [`PointRun`]; panics are quarantined per the supervisor's retry budget.
pub fn run_checkpointed<P, F>(
    cfg: &CheckpointConfig<'_>,
    points: &[P],
    run_point: F,
) -> Result<SweepOutcomes, CheckpointError>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> PointRun<Json> + Sync,
{
    run_checkpointed_fallible(cfg, points, |ctx, p| Ok(run_point(ctx, p)))
}

/// Like [`run_checkpointed`], for point functions that can fail with a typed
/// script fault instead of a row.
///
/// A faulting point is recorded as [`PointStatus::ScriptFault`] after a
/// single attempt — script faults are deterministic, so retrying would burn
/// the panic budget for nothing — and, unlike poisoned points, the record is
/// **kept** on resume: re-running it would only reproduce the same fault.
pub fn run_checkpointed_fallible<P, F>(
    cfg: &CheckpointConfig<'_>,
    points: &[P],
    run_point: F,
) -> Result<SweepOutcomes, CheckpointError>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> Result<PointRun<Json>, sweep::ScriptFaultInfo> + Sync,
{
    let manifest = if cfg.resume {
        Manifest::load(cfg.path, cfg.experiment, cfg.base_seed)?
    } else {
        Manifest::default()
    };
    let mut slots: BTreeMap<usize, PointReport> = BTreeMap::new();
    for (&idx, rec) in &manifest.records {
        // Poisoned points re-run; script-faulted points are deterministic and
        // stay; records beyond the grid (a shrunk sweep) are ignored.
        if idx < points.len() && rec.status != PointStatus::Poisoned {
            slots.insert(idx, PointReport { record: rec.clone(), resumed: true });
        }
    }
    let resumed_points = slots.len();
    telemetry::points_resumed(resumed_points as u64);

    let todo: Vec<(usize, &P)> = points.iter().enumerate().filter(|(i, _)| !slots.contains_key(i)).collect();
    let writer =
        if cfg.resume { CheckpointWriter::append(cfg.path)? } else { CheckpointWriter::create(cfg.path)? };
    let supervisor = cfg.supervisor;
    let fresh = sweep::run(cfg.experiment, cfg.base_seed, &todo, cfg.pool.resolve(), |_, &(orig, p)| {
        let ctx = SweepCtx { experiment: cfg.experiment, point: orig, base_seed: cfg.base_seed };
        let record = outcome_record(orig, sweep::supervised_point_fallible(&ctx, &supervisor, p, &run_point));
        let written = writer.record(cfg.experiment, cfg.base_seed, &record);
        telemetry::sample_boundary();
        (record, written)
    });
    for (record, written) in fresh {
        written?;
        slots.insert(record.point, PointReport { record, resumed: false });
    }

    Ok(SweepOutcomes {
        experiment: cfg.experiment,
        base_seed: cfg.base_seed,
        points: slots.into_values().collect(),
        resumed_points,
        skipped_lines: manifest.skipped_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malsim-ckpt-{tag}-{}.ckpt", std::process::id()))
    }

    fn row(point: usize) -> Json {
        Json::obj([("point", Json::U64(point as u64)), ("value", Json::U64(point as u64 * 10))])
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_path("roundtrip");
        let writer = CheckpointWriter::create(&path).unwrap();
        let recs = [
            CheckpointRecord {
                point: 0,
                status: PointStatus::Completed,
                truncation: None,
                row: Some(row(0)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            },
            CheckpointRecord {
                point: 1,
                status: PointStatus::Truncated,
                truncation: Some("event_budget".into()),
                row: Some(row(1)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec!["invariant 'x' violated".into()],
            },
            CheckpointRecord {
                point: 2,
                status: PointStatus::Poisoned,
                truncation: None,
                row: None,
                panic_msg: Some("boom".into()),
                params: Some("2".into()),
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            },
            CheckpointRecord {
                point: 3,
                status: PointStatus::ScriptFault,
                truncation: None,
                row: None,
                panic_msg: None,
                params: None,
                script_id: Some("bomb.flua".into()),
                script_error: Some("script exceeded its memory budget (70000 > 65536 bytes)".into()),
                fuel_used: Some(4242),
                violations: vec![],
            },
        ];
        for rec in &recs {
            writer.record("test", 7, rec).unwrap();
        }
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 0);
        assert_eq!(manifest.records.len(), 4);
        for rec in &recs {
            assert_eq!(manifest.records[&rec.point], *rec);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_lines_are_skipped_and_last_record_wins() {
        let path = temp_path("damaged");
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut rec = CheckpointRecord {
            point: 0,
            status: PointStatus::Completed,
            truncation: None,
            row: Some(row(0)),
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: vec![],
        };
        writer.record("test", 7, &rec).unwrap();
        rec.row = Some(row(5));
        writer.record("test", 7, &rec).unwrap();
        // A torn final line and a hash-tampered record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"value\":50", "\"value\":51");
        assert_ne!(tampered, text, "tamper target must exist");
        text.push_str("{\"experiment\":\"test\",\"base_se");
        std::fs::write(&path, &text).unwrap();

        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "the torn line");
        assert_eq!(manifest.records[&0].row, Some(row(5)), "last valid record wins");

        std::fs::write(&path, &tampered).unwrap();
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "hash mismatch drops the record");
        assert_eq!(manifest.records[&0].row, Some(row(0)), "first record survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_mid_line_is_counted_and_prior_records_survive() {
        let path = temp_path("set-len");
        let writer = CheckpointWriter::create(&path).unwrap();
        for point in 0..3 {
            let rec = CheckpointRecord {
                point,
                status: PointStatus::Completed,
                truncation: None,
                row: Some(row(point)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            };
            writer.record("test", 7, &rec).unwrap();
        }
        drop(writer);
        // Chop the file mid-way through the final line, as a SIGKILL (or a
        // power cut) landing inside the last append would.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::File::options().write(true).open(&path).unwrap();
        file.set_len(len - 20).unwrap();
        drop(file);

        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "the torn tail line is counted");
        assert_eq!(manifest.records.len(), 2, "fsynced predecessors survive intact");
        assert_eq!(manifest.records[&0].row, Some(row(0)));
        assert_eq!(manifest.records[&1].row, Some(row(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_sweep_is_a_hard_error() {
        let path = temp_path("wrong");
        let writer = CheckpointWriter::create(&path).unwrap();
        let rec = CheckpointRecord {
            point: 0,
            status: PointStatus::Completed,
            truncation: None,
            row: Some(row(0)),
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: vec![],
        };
        writer.record("test", 7, &rec).unwrap();
        let err = Manifest::load(&path, "test", 8).unwrap_err();
        assert!(matches!(err, CheckpointError::WrongSweep { .. }), "{err}");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let err = Manifest::load(&path, "other", 7).unwrap_err();
        assert!(matches!(err, CheckpointError::WrongSweep { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_manifest() {
        let manifest = Manifest::load(Path::new("/nonexistent/never/sweep.ckpt"), "test", 7).unwrap();
        assert_eq!(manifest, Manifest::default());
    }

    #[test]
    fn checkpointed_sweep_resumes_exactly() {
        let points: Vec<u64> = (0..6).collect();
        let eval = |ctx: &SweepCtx, &p: &u64| {
            PointRun::complete(Json::obj([("param", Json::U64(p)), ("seed", Json::U64(ctx.derived_seed()))]))
        };
        let full_path = temp_path("resume-full");
        let cfg = CheckpointConfig {
            experiment: "resume",
            base_seed: 11,
            pool: PoolConfig::explicit(2),
            supervisor: SweepSupervisor::default(),
            path: &full_path,
            resume: false,
        };
        let full = run_checkpointed(&cfg, &points, eval).unwrap();
        let full_report = full.report().to_canonical_string();

        // Keep only the first 3 checkpoint lines, as if killed mid-grid.
        let partial_path = temp_path("resume-partial");
        let full_text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = full_text.lines().take(3).collect();
        std::fs::write(&partial_path, format!("{}\n", lines.join("\n"))).unwrap();

        for threads in [1, 2, 8] {
            let seed_path = temp_path(&format!("resume-t{threads}"));
            std::fs::copy(&partial_path, &seed_path).unwrap();
            let resumed = run_checkpointed(
                &CheckpointConfig {
                    path: &seed_path,
                    resume: true,
                    pool: PoolConfig::explicit(threads),
                    ..cfg
                },
                &points,
                eval,
            )
            .unwrap();
            assert_eq!(resumed.resumed_points, 3);
            assert_eq!(
                resumed.report().to_canonical_string(),
                full_report,
                "resume must be byte-identical at threads={threads}"
            );
            std::fs::remove_file(&seed_path).unwrap();
        }
        std::fs::remove_file(&full_path).unwrap();
        std::fs::remove_file(&partial_path).unwrap();
    }

    #[test]
    fn poisoned_points_rerun_on_resume() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let points: Vec<u64> = (0..3).collect();
        let path = temp_path("poison-rerun");
        let fail = AtomicBool::new(true);
        let eval = |_: &SweepCtx, &p: &u64| {
            if p == 1 && fail.load(Ordering::SeqCst) {
                panic!("transient environment failure");
            }
            PointRun::complete(Json::U64(p))
        };
        let cfg = CheckpointConfig {
            experiment: "poison",
            base_seed: 3,
            pool: PoolConfig::explicit(1),
            supervisor: SweepSupervisor::default(),
            path: &path,
            resume: false,
        };
        let first = run_checkpointed(&cfg, &points, eval).unwrap();
        assert_eq!(first.points[1].record.status, PointStatus::Poisoned);
        assert_eq!(first.points[1].record.panic_msg.as_deref(), Some("transient environment failure"));
        assert_eq!(first.points[1].record.params.as_deref(), Some("1"));

        fail.store(false, Ordering::SeqCst);
        let second = run_checkpointed(&CheckpointConfig { resume: true, ..cfg }, &points, eval).unwrap();
        assert_eq!(second.resumed_points, 2, "completed points are kept");
        assert_eq!(second.points[1].record.status, PointStatus::Completed, "poisoned point re-ran");
        assert!(!second.points[1].resumed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn script_faults_are_kept_on_resume_and_reports_stay_byte_identical() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let points: Vec<u64> = (0..6).collect();
        let fault_runs = AtomicU32::new(0);
        let eval = |ctx: &SweepCtx, &p: &u64| {
            if p == 2 {
                fault_runs.fetch_add(1, Ordering::SeqCst);
                return Err(sweep::ScriptFaultInfo {
                    script_id: "bomb.flua".into(),
                    error: "script ran out of fuel".into(),
                    fuel_used: 20_000,
                });
            }
            Ok(PointRun::complete(Json::obj([
                ("param", Json::U64(p)),
                ("seed", Json::U64(ctx.derived_seed())),
            ])))
        };
        let full_path = temp_path("fault-full");
        let cfg = CheckpointConfig {
            experiment: "fault",
            base_seed: 23,
            pool: PoolConfig::explicit(2),
            supervisor: SweepSupervisor { retries: 5, ..SweepSupervisor::default() },
            path: &full_path,
            resume: false,
        };
        let full = run_checkpointed_fallible(&cfg, &points, eval).unwrap();
        let full_report = full.report().to_canonical_string();
        assert_eq!(full.points[2].record.status, PointStatus::ScriptFault);
        assert_eq!(full.points[2].record.script_id.as_deref(), Some("bomb.flua"));
        assert_eq!(full.points[2].record.fuel_used, Some(20_000));
        assert_eq!(fault_runs.load(Ordering::SeqCst), 1, "deterministic fault: no retry burn");
        assert_eq!(full.report().get("script_faults").and_then(Json::as_u64), Some(1));

        // Truncate to the first 4 lines (which include the faulted point in
        // some interleaving or not — either way resume must reconverge).
        let partial_path = temp_path("fault-partial");
        let full_text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = full_text.lines().take(4).collect();
        std::fs::write(&partial_path, format!("{}\n", lines.join("\n"))).unwrap();
        let resumed = run_checkpointed_fallible(
            &CheckpointConfig { path: &partial_path, resume: true, ..cfg },
            &points,
            eval,
        )
        .unwrap();
        assert_eq!(
            resumed.report().to_canonical_string(),
            full_report,
            "resume with a ScriptFault record must be byte-identical"
        );
        // If the fault record survived truncation it was kept, not re-run.
        let kept_fault = lines.iter().any(|l| l.contains("script_fault"));
        let expected_runs = if kept_fault { 1 } else { 2 };
        assert_eq!(fault_runs.load(Ordering::SeqCst), expected_runs);
        std::fs::remove_file(&full_path).unwrap();
        std::fs::remove_file(&partial_path).unwrap();
    }
}
