//! Sweep checkpointing: append-only per-point records and exact resume.
//!
//! A supervised sweep appends one line to a checkpoint file (`sweep.ckpt`)
//! after each point finishes — compact canonical JSON (the
//! [`report`](crate::report) writer, so `serialize ∘ parse` is the identity)
//! carrying the point's status, its result row, an FNV-1a hash of that row,
//! and any invariant violations. A later `--resume` run replays the file,
//! verifies each record's hash, keeps the completed and truncated points,
//! and re-runs only the missing or poisoned ones.
//!
//! **Resume contract:** for a fixed `(experiment, base_seed, grid,
//! supervisor)` with only deterministic limits in force, the final
//! [`SweepOutcomes::report`] is byte-identical whether the sweep ran
//! uninterrupted or was killed and resumed any number of times, at any
//! `MALSIM_THREADS` setting. This holds because each point is a pure
//! function of its [`SweepCtx`] and the report is assembled in point order
//! from (checkpointed ∪ re-run) results, never from file order.
//!
//! Loading is lenient where an interrupted writer can leave damage (a torn
//! final line, a corrupted record) — those lines are counted in
//! [`Manifest::skipped_lines`] and the affected points simply re-run — and
//! strict where silence would be wrong: records from a different experiment
//! or base seed fail loudly with [`CheckpointError::WrongSweep`].
//!
//! ## Storage faults
//!
//! All persistence goes through a [`StorageBackend`]
//! (see [`chaosfs`](crate::chaosfs)), so checkpoint durability can be
//! soak-tested under injected I/O faults. Transient errors (`EINTR`,
//! timeouts) are retried with bounded backoff per [`IoRetryPolicy`]; fatal
//! ones never fail the sweep. A fatal *read* degrades [`Manifest::load_with`]
//! to an empty manifest carrying a typed [`Manifest::load_fault`] (the
//! affected points re-run); a fatal *write or fsync* quarantines the
//! [`CheckpointWriter`] — further appends become no-ops, the grid still
//! completes, and the typed reason surfaces as
//! [`SweepOutcomes::storage_fault`]. The fault is deliberately **not** part
//! of [`SweepOutcomes::report`]: reports carry only deterministic,
//! run-history-free data, and whether this particular run's disk misbehaved
//! is run history. [`repair_journal`] compacts a damaged journal down to its
//! self-hash-valid lines.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::chaosfs::{
    classify, FaultClass, IoRetryPolicy, StorageBackend, StorageFault, StorageFile, StorageOp, REAL_FS,
};
use crate::report::{self, Json};
use crate::sweep::{self, PointOutcome, PointRun, PoolConfig, SweepCtx, SweepSupervisor};
use crate::telemetry;

/// FNV-1a 64-bit hash (the checkpoint record integrity check).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from checkpoint persistence and resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint file could not be created, read, or appended to.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The typed error kind, so callers and the retry classifier
        /// ([`crate::chaosfs::classify`]) never parse strings.
        kind: std::io::ErrorKind,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The checkpoint belongs to a different sweep — resuming would splice
    /// unrelated results into the report.
    WrongSweep {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The `(experiment, base_seed)` this run expected.
        expected: String,
        /// The identity found in the file.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, detail, .. } => {
                write!(f, "checkpoint i/o error on {}: {detail}", path.display())
            }
            CheckpointError::WrongSweep { path, expected, found } => {
                write!(
                    f,
                    "checkpoint {} belongs to a different sweep: expected {expected}, found {found}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Wraps a `std::io::Error` with its path, preserving the typed kind.
pub(crate) fn io_error(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.to_owned(), kind: e.kind(), detail: e.to_string() }
}

/// Terminal status of one checkpointed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The point ran to completion.
    Completed,
    /// The watchdog cut the point short; the row is partial but consistent.
    Truncated,
    /// Every attempt panicked; there is no row. Poisoned points re-run on
    /// resume.
    Poisoned,
    /// The point's scenario script faulted with a typed error; there is no
    /// row. Unlike poisoned points these are deterministic, so the record
    /// is *kept* on resume rather than re-run.
    ScriptFault,
    /// The point's job was cancelled before the point started; there is no
    /// row. Only the [`jobs`](crate::jobs) layer produces this status —
    /// plain sweeps have no cancellation surface.
    Cancelled,
}

impl PointStatus {
    /// Stable lower-case label used in records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PointStatus::Completed => "completed",
            PointStatus::Truncated => "truncated",
            PointStatus::Poisoned => "poisoned",
            PointStatus::ScriptFault => "script_fault",
            PointStatus::Cancelled => "cancelled",
        }
    }

    pub(crate) fn from_label(label: &str) -> Option<PointStatus> {
        match label {
            "completed" => Some(PointStatus::Completed),
            "truncated" => Some(PointStatus::Truncated),
            "poisoned" => Some(PointStatus::Poisoned),
            "script_fault" => Some(PointStatus::ScriptFault),
            "cancelled" => Some(PointStatus::Cancelled),
            _ => None,
        }
    }
}

/// One point's durable record: everything needed to reconstruct its slot in
/// the final report without re-running it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Zero-based grid index.
    pub point: usize,
    /// Terminal status.
    pub status: PointStatus,
    /// Watchdog truncation label (see
    /// [`Truncation::label`](crate::sweep::Truncation::label)), if truncated.
    pub truncation: Option<String>,
    /// The point's result row; `None` for poisoned points.
    pub row: Option<Json>,
    /// Rendered panic payload, for poisoned points.
    pub panic_msg: Option<String>,
    /// `Debug` rendering of the point's parameters, for poisoned points.
    pub params: Option<String>,
    /// The scenario script's manifest name, for script-faulted points.
    pub script_id: Option<String>,
    /// The typed script fault rendered via `Display`, for script-faulted
    /// points.
    pub script_error: Option<String>,
    /// Fuel the script had consumed when it faulted.
    pub fuel_used: Option<u64>,
    /// Rendered invariant violations observed during the point.
    pub violations: Vec<String>,
}

impl CheckpointRecord {
    /// An empty record for a cancelled point (no row, no fault detail).
    pub(crate) fn cancelled(point: usize) -> CheckpointRecord {
        CheckpointRecord {
            point,
            status: PointStatus::Cancelled,
            truncation: None,
            row: None,
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: Vec::new(),
        }
    }

    /// Serialises the record as one journal/checkpoint object under the
    /// given `(scope, base_seed)` identity — the sweep's experiment label
    /// for checkpoints, the job id for job journals.
    pub(crate) fn to_json(&self, experiment: &str, base_seed: u64) -> Json {
        let (row, hash) = match &self.row {
            Some(row) => (row.clone(), format!("{:016x}", fnv1a64(row.to_compact_string().as_bytes()))),
            None => (Json::Null, String::new()),
        };
        Json::obj([
            ("experiment", experiment.into()),
            ("base_seed", Json::U64(base_seed)),
            ("point", Json::U64(self.point as u64)),
            ("status", self.status.label().into()),
            ("truncation", self.truncation.clone().into()),
            ("hash", hash.into()),
            ("row", row),
            ("panic_msg", self.panic_msg.clone().into()),
            ("params", self.params.clone().into()),
            ("script_id", self.script_id.clone().into()),
            ("script_error", self.script_error.clone().into()),
            ("fuel_used", self.fuel_used.map_or(Json::Null, Json::U64)),
            ("violations", Json::Arr(self.violations.iter().map(|v| v.as_str().into()).collect())),
        ])
    }

    /// Parses one checkpoint line. `Ok(None)` means the line is damaged or
    /// stale (skip and re-run the point); `Err` means it belongs to another
    /// sweep entirely.
    pub(crate) fn from_line(
        line: &str,
        path: &Path,
        experiment: &str,
        base_seed: u64,
    ) -> Result<Option<CheckpointRecord>, CheckpointError> {
        let Ok(v) = report::parse(line) else { return Ok(None) };
        let (Some(exp), Some(seed)) =
            (v.get("experiment").and_then(Json::as_str), v.get("base_seed").and_then(Json::as_u64))
        else {
            return Ok(None);
        };
        if exp != experiment || seed != base_seed {
            return Err(CheckpointError::WrongSweep {
                path: path.to_owned(),
                expected: format!("({experiment}, seed {base_seed})"),
                found: format!("({exp}, seed {seed})"),
            });
        }
        let (Some(point), Some(status), Some(hash)) = (
            v.get("point").and_then(Json::as_u64),
            v.get("status").and_then(Json::as_str).and_then(PointStatus::from_label),
            v.get("hash").and_then(Json::as_str),
        ) else {
            return Ok(None);
        };
        let row = match v.get("row") {
            Some(Json::Null) | None => None,
            Some(row) => Some(row.clone()),
        };
        // Integrity gate: a record whose row does not hash to its recorded
        // digest (torn write, manual edit) is treated as absent.
        let hash_ok = match &row {
            Some(row) => hash == format!("{:016x}", fnv1a64(row.to_compact_string().as_bytes())),
            None => hash.is_empty(),
        };
        if !hash_ok {
            return Ok(None);
        }
        let strings = |key: &str| -> Vec<String> {
            match v.get(key) {
                Some(Json::Arr(items)) => items.iter().filter_map(Json::as_str).map(str::to_owned).collect(),
                _ => Vec::new(),
            }
        };
        Ok(Some(CheckpointRecord {
            point: point as usize,
            status,
            truncation: v.get("truncation").and_then(Json::as_str).map(str::to_owned),
            row,
            panic_msg: v.get("panic_msg").and_then(Json::as_str).map(str::to_owned),
            params: v.get("params").and_then(Json::as_str).map(str::to_owned),
            script_id: v.get("script_id").and_then(Json::as_str).map(str::to_owned),
            script_error: v.get("script_error").and_then(Json::as_str).map(str::to_owned),
            fuel_used: v.get("fuel_used").and_then(Json::as_u64),
            violations: strings("violations"),
        }))
    }
}

/// The usable content of a checkpoint file after a lenient replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Last valid record per point index.
    pub records: BTreeMap<usize, CheckpointRecord>,
    /// Lines that were torn, corrupt, or failed their hash check.
    pub skipped_lines: usize,
    /// The typed reason the file could not be read at all, if loading
    /// degraded to a fresh start on a fatal storage fault.
    pub load_fault: Option<StorageFault>,
}

/// Reads `path` through `backend`, retrying transient faults with bounded
/// backoff. `Ok(None)` is a missing file; a fatal fault is returned typed.
pub(crate) fn read_with_retry(
    path: &Path,
    backend: &dyn StorageBackend,
) -> Result<Option<String>, StorageFault> {
    let policy = IoRetryPolicy::default();
    let mut attempt = 0u32;
    loop {
        match backend.read_to_string(path) {
            Ok(text) => return Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) if classify(e.kind()) == FaultClass::Transient && policy.should_retry(attempt) => {
                telemetry::ckpt_io_retry();
                std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(attempt)));
                attempt += 1;
            }
            Err(e) => {
                return Err(StorageFault {
                    op: StorageOp::Read,
                    kind: e.kind(),
                    detail: e.to_string(),
                    retries: attempt,
                })
            }
        }
    }
}

impl Manifest {
    /// Replays `path`. A missing file is an empty manifest (fresh start);
    /// damaged lines are skipped and counted; a record from a different
    /// `(experiment, base_seed)` is a hard [`CheckpointError::WrongSweep`].
    pub fn load(path: &Path, experiment: &str, base_seed: u64) -> Result<Manifest, CheckpointError> {
        Manifest::load_with(path, &REAL_FS, experiment, base_seed)
    }

    /// Like [`Manifest::load`], through an explicit [`StorageBackend`].
    ///
    /// Transient read faults are retried with bounded backoff; a fatal one
    /// does **not** fail the resume — it degrades to an empty manifest with
    /// the typed reason in [`Manifest::load_fault`], so every point simply
    /// re-runs and the report still reproduces.
    pub fn load_with(
        path: &Path,
        backend: &dyn StorageBackend,
        experiment: &str,
        base_seed: u64,
    ) -> Result<Manifest, CheckpointError> {
        let text = match read_with_retry(path, backend) {
            Ok(Some(text)) => text,
            Ok(None) => return Ok(Manifest::default()),
            Err(fault) => {
                telemetry::ckpt_journal_quarantined();
                return Ok(Manifest { load_fault: Some(fault), ..Manifest::default() });
            }
        };
        let mut manifest = Manifest::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match CheckpointRecord::from_line(line, path, experiment, base_seed)? {
                Some(rec) => {
                    manifest.records.insert(rec.point, rec);
                }
                None => manifest.skipped_lines += 1,
            }
        }
        telemetry::ckpt_damaged_lines(manifest.skipped_lines as u64);
        Ok(manifest)
    }
}

/// Append-only checkpoint writer, safe to share across sweep workers.
///
/// The file lock is held only while serialising one already-computed record
/// — never across user code — so a panicking point cannot poison it.
///
/// The writer absorbs storage faults instead of failing the sweep: transient
/// errors are retried with bounded backoff, and a fatal one (a failed fsync
/// above all) **quarantines** the journal — the file handle is dropped,
/// every later append is a silent no-op, and the typed reason is available
/// from [`CheckpointWriter::quarantine`]. Losing persistence degrades a
/// future resume, never the run in progress.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    policy: IoRetryPolicy,
    inner: Mutex<WriterState>,
}

#[derive(Debug)]
struct WriterState {
    /// `None` once quarantined.
    file: Option<Box<dyn StorageFile>>,
    /// The fault that quarantined this writer, if any.
    quarantined: Option<StorageFault>,
    /// A failed append attempt may have left torn bytes at the end of the
    /// file; the next attempt starts with a newline to terminate them so
    /// the fresh line parses (the loader skips and counts the junk).
    dirty_tail: bool,
}

/// Appends the whole buffer, looping over legal short writes.
fn append_fully(file: &mut dyn StorageFile, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match file.append(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "append accepted zero bytes"))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One durable line: append + flush with transient retry, then fsync.
/// A failed fsync is **always** fatal whatever its kind — after it the
/// kernel page-cache state is unknowable, so a retried fsync that "works"
/// could still silently drop the line (the fsyncgate lesson).
fn write_durable_line(st: &mut WriterState, policy: &IoRetryPolicy, line: &[u8]) -> Result<(), StorageFault> {
    let mut attempt = 0u32;
    loop {
        let file = st.file.as_mut().expect("caller checks quarantine before writing");
        let mut buf = Vec::with_capacity(line.len() + 2);
        if st.dirty_tail {
            buf.push(b'\n');
        }
        buf.extend_from_slice(line);
        buf.push(b'\n');
        match append_fully(file.as_mut(), &buf).and_then(|()| file.flush()) {
            Ok(()) => {}
            Err(e) => {
                // Bytes may have landed before the error; mark the tail
                // dirty so a retry self-heals the line framing.
                st.dirty_tail = true;
                if classify(e.kind()) == FaultClass::Transient && policy.should_retry(attempt) {
                    telemetry::ckpt_io_retry();
                    std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(attempt)));
                    attempt += 1;
                    continue;
                }
                return Err(StorageFault {
                    op: StorageOp::Append,
                    kind: e.kind(),
                    detail: e.to_string(),
                    retries: attempt,
                });
            }
        }
        // Time only the durability syscall, and only when telemetry is armed
        // (`Instant::now` is not free on the unarmed path).
        let started = telemetry::armed().then(std::time::Instant::now);
        match file.fsync() {
            Ok(()) => {
                if let Some(t) = started {
                    telemetry::ckpt_fsync_micros(t.elapsed().as_micros() as u64);
                }
                st.dirty_tail = false;
                return Ok(());
            }
            Err(e) => {
                return Err(StorageFault {
                    op: StorageOp::Fsync,
                    kind: e.kind(),
                    detail: e.to_string(),
                    retries: attempt,
                })
            }
        }
    }
}

impl CheckpointWriter {
    /// Creates (or truncates) the checkpoint file for a fresh sweep.
    pub fn create(path: &Path) -> Result<CheckpointWriter, CheckpointError> {
        Ok(CheckpointWriter::create_with(path, &REAL_FS))
    }

    /// Opens the checkpoint file for appending (creating it if missing), for
    /// a resumed sweep.
    pub fn append(path: &Path) -> Result<CheckpointWriter, CheckpointError> {
        Ok(CheckpointWriter::append_with(path, &REAL_FS))
    }

    /// Like [`CheckpointWriter::create`], through an explicit backend.
    /// Infallible: a fatal open fault yields an already-quarantined writer
    /// (the sweep runs without persistence) rather than an error.
    pub fn create_with(path: &Path, backend: &dyn StorageBackend) -> CheckpointWriter {
        CheckpointWriter::open_with(path, backend, false)
    }

    /// Like [`CheckpointWriter::append`], through an explicit backend, with
    /// the same degrade-instead-of-fail contract as
    /// [`CheckpointWriter::create_with`].
    pub fn append_with(path: &Path, backend: &dyn StorageBackend) -> CheckpointWriter {
        CheckpointWriter::open_with(path, backend, true)
    }

    fn open_with(path: &Path, backend: &dyn StorageBackend, append: bool) -> CheckpointWriter {
        let policy = IoRetryPolicy::default();
        let mut attempt = 0u32;
        let state = loop {
            let opened = if append { backend.open_append(path) } else { backend.create(path) };
            match opened {
                Ok(file) => break WriterState { file: Some(file), quarantined: None, dirty_tail: false },
                Err(e) if classify(e.kind()) == FaultClass::Transient && policy.should_retry(attempt) => {
                    telemetry::ckpt_io_retry();
                    std::thread::sleep(std::time::Duration::from_millis(policy.backoff_ms(attempt)));
                    attempt += 1;
                }
                Err(e) => {
                    telemetry::ckpt_journal_quarantined();
                    break WriterState {
                        file: None,
                        quarantined: Some(StorageFault {
                            op: if append { StorageOp::Open } else { StorageOp::Create },
                            kind: e.kind(),
                            detail: e.to_string(),
                            retries: attempt,
                        }),
                        dirty_tail: false,
                    };
                }
            }
        };
        CheckpointWriter { path: path.to_owned(), policy, inner: Mutex::new(state) }
    }

    /// The fault that quarantined this writer, if storage failed fatally.
    pub fn quarantine(&self) -> Option<StorageFault> {
        self.inner.lock().expect("checkpoint lock never held across user code").quarantined.clone()
    }

    /// The journal path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single compact-JSON line, flushed **and
    /// fsynced**: once this returns, the record survives a `SIGKILL` — or a
    /// power cut — landing immediately after. A kill mid-call can tear at
    /// most the line in flight, which the lenient loader skips and counts.
    pub fn record(
        &self,
        experiment: &str,
        base_seed: u64,
        rec: &CheckpointRecord,
    ) -> Result<(), CheckpointError> {
        self.append_json(&rec.to_json(experiment, base_seed))
    }

    /// Appends one arbitrary record as a single compact-JSON line with the
    /// same flush+fsync durability contract as [`CheckpointWriter::record`].
    /// The job journal writes its state transitions through this.
    ///
    /// Storage faults never surface as `Err`: transients are retried per the
    /// writer's [`IoRetryPolicy`], and a fatal fault quarantines the writer
    /// (this and every later append return `Ok` without persisting — see
    /// [`CheckpointWriter::quarantine`]).
    pub fn append_json(&self, record: &Json) -> Result<(), CheckpointError> {
        let line = record.to_compact_string();
        let mut st = self.inner.lock().expect("checkpoint lock never held across user code");
        if st.quarantined.is_some() {
            return Ok(());
        }
        match write_durable_line(&mut st, &self.policy, line.as_bytes()) {
            Ok(()) => {
                telemetry::ckpt_line_written(line.len() as u64 + 1);
                Ok(())
            }
            Err(fault) => {
                st.file = None;
                st.quarantined = Some(fault);
                telemetry::ckpt_journal_quarantined();
                Ok(())
            }
        }
    }
}

/// Validates a self-hashed journal object: its `hash` field must equal the
/// FNV-1a hash of the object with that field blanked. Job-state transitions
/// are hashed this way, mirroring the row hash on point records.
pub(crate) fn self_hash_valid(v: &Json) -> bool {
    let (Json::Obj(pairs), Some(hash)) = (v, v.get("hash").and_then(Json::as_str)) else {
        return false;
    };
    let blanked = Json::Obj(
        pairs
            .iter()
            .map(|(k, val)| {
                let val = if k == "hash" { Json::Str(String::new()) } else { val.clone() };
                (k.clone(), val)
            })
            .collect(),
    );
    hash == format!("{:016x}", fnv1a64(blanked.to_compact_string().as_bytes()))
}

/// Classifies one journal/checkpoint line: `Some(key)` if the line is
/// self-consistent (its hash validates), where equal keys mean "the same
/// logical slot" — the last valid line per key is the journal's truth.
/// `None` means the line is damaged (torn, tampered, unparseable) and
/// contributes nothing.
///
/// Keys: point records map to `point/<scope>/<seed>/<index>`; a job's
/// admission transition to `transition/<job>/admitted`; its terminal
/// transition to `transition/<job>/terminal`. The durability attestation in
/// `examples/chaos_soak.rs` uses the same keys to prove no fsynced record
/// was lost across a crash.
pub fn journal_line_key(line: &str) -> Option<String> {
    let v = report::parse(line).ok()?;
    if v.get("kind").and_then(Json::as_str) == Some("transition") {
        if !self_hash_valid(&v) {
            return None;
        }
        let job_id = v.get("job_id").and_then(Json::as_str)?;
        let status = v.get("status").and_then(Json::as_str)?;
        let slot = if status == "admitted" { "admitted" } else { "terminal" };
        return Some(format!("transition/{job_id}/{slot}"));
    }
    let (scope, seed) =
        (v.get("experiment").and_then(Json::as_str)?, v.get("base_seed").and_then(Json::as_u64)?);
    // Parse under the line's own identity: the key namespaces the scope, so
    // records from different sweeps/jobs can share a file (the job journal).
    let rec = CheckpointRecord::from_line(line, Path::new(""), scope, seed).ok()??;
    Some(format!("point/{scope}/{seed}/{}", rec.point))
}

/// What [`repair_journal`] did to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairSummary {
    /// Non-empty lines examined.
    pub lines_seen: usize,
    /// Lines kept (one per logical slot, the last valid line winning).
    pub kept: usize,
    /// Lines dropped: damaged, or superseded by a later line for the slot.
    pub dropped: usize,
    /// File size before the repair, in bytes.
    pub bytes_before: u64,
    /// File size after the repair, in bytes.
    pub bytes_after: u64,
}

/// Repairs and compacts a journal in place: keeps only self-hash-valid
/// lines, collapses each logical slot (see [`journal_line_key`]) to its
/// last valid line, and atomically renames the rewritten file over the
/// original. Slot order follows first appearance, so admissions still
/// precede their records.
///
/// Unlike the lenient loaders this returns real errors: a repair that
/// cannot read, durably write, or rename has repaired nothing.
pub fn repair_journal(path: &Path) -> Result<RepairSummary, CheckpointError> {
    repair_journal_with(path, &REAL_FS)
}

/// Like [`repair_journal`], through an explicit [`StorageBackend`].
pub fn repair_journal_with(
    path: &Path,
    backend: &dyn StorageBackend,
) -> Result<RepairSummary, CheckpointError> {
    let text = match read_with_retry(path, backend) {
        Ok(Some(text)) => text,
        Ok(None) => {
            let e = std::io::Error::new(std::io::ErrorKind::NotFound, "no journal to repair");
            return Err(io_error(path, &e));
        }
        Err(fault) => {
            let e = std::io::Error::new(fault.kind, fault.detail);
            return Err(io_error(path, &e));
        }
    };
    let mut order: Vec<String> = Vec::new();
    let mut slots: BTreeMap<String, &str> = BTreeMap::new();
    let mut lines_seen = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        lines_seen += 1;
        let Some(key) = journal_line_key(line) else { continue };
        if !slots.contains_key(&key) {
            order.push(key.clone());
        }
        slots.insert(key, line);
    }
    let mut compacted = String::with_capacity(text.len());
    for key in &order {
        compacted.push_str(slots[key]);
        compacted.push('\n');
    }
    // Write the compacted journal beside the original, fsync it, then
    // atomically rename it into place — a crash mid-repair leaves either
    // the old file or the new one, never a mix.
    let staging = path.with_extension("repair");
    let fault_err = |fault: StorageFault| {
        let e = std::io::Error::new(fault.kind, fault.detail);
        io_error(&staging, &e)
    };
    let policy = IoRetryPolicy::default();
    let mut st = match backend.create(&staging) {
        Ok(file) => WriterState { file: Some(file), quarantined: None, dirty_tail: false },
        Err(e) => return Err(io_error(&staging, &e)),
    };
    for key in &order {
        write_durable_line(&mut st, &policy, slots[key].as_bytes()).map_err(fault_err)?;
    }
    drop(st);
    backend.rename(&staging, path).map_err(|e| io_error(path, &e))?;
    Ok(RepairSummary {
        lines_seen,
        kept: order.len(),
        dropped: lines_seen - order.len(),
        bytes_before: text.len() as u64,
        bytes_after: compacted.len() as u64,
    })
}

/// One point's slot in the final sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The durable fields (shared with the checkpoint record).
    pub record: CheckpointRecord,
    /// Whether this slot was restored from the checkpoint rather than run
    /// in this invocation. Not part of the report payload.
    pub resumed: bool,
}

/// Everything a checkpointed sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcomes {
    /// Stable experiment label.
    pub experiment: &'static str,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// Per-point results in point order.
    pub points: Vec<PointReport>,
    /// How many points were restored from the checkpoint.
    pub resumed_points: usize,
    /// Damaged checkpoint lines that were skipped during load.
    pub skipped_lines: usize,
    /// The typed reason checkpoint persistence degraded during this run (a
    /// fatal load fault or a writer quarantine), if it did. Deliberately
    /// **not** part of [`SweepOutcomes::report`]: the report carries only
    /// deterministic, run-history-free data, and this is run history.
    pub storage_fault: Option<StorageFault>,
}

impl SweepOutcomes {
    fn count(&self, status: PointStatus) -> usize {
        self.points.iter().filter(|p| p.record.status == status).count()
    }

    /// The sweep report. Contains only deterministic, run-history-free data
    /// (no attempt counts, no resumed-from markers), so an interrupted-and-
    /// resumed sweep renders byte-identically to an uninterrupted one.
    pub fn report(&self) -> Json {
        let rows = self
            .points
            .iter()
            .map(|p| {
                let r = &p.record;
                Json::obj([
                    ("point", Json::U64(r.point as u64)),
                    ("status", r.status.label().into()),
                    ("truncation", r.truncation.clone().into()),
                    ("row", r.row.clone().unwrap_or(Json::Null)),
                    ("panic_msg", r.panic_msg.clone().into()),
                    ("params", r.params.clone().into()),
                    ("script_id", r.script_id.clone().into()),
                    ("script_error", r.script_error.clone().into()),
                    ("fuel_used", r.fuel_used.map_or(Json::Null, Json::U64)),
                    ("violations", Json::Arr(r.violations.iter().map(|v| v.as_str().into()).collect())),
                ])
            })
            .collect();
        Json::obj([
            ("experiment", self.experiment.into()),
            ("base_seed", Json::U64(self.base_seed)),
            ("points", Json::U64(self.points.len() as u64)),
            ("completed", Json::U64(self.count(PointStatus::Completed) as u64)),
            ("truncated", Json::U64(self.count(PointStatus::Truncated) as u64)),
            ("poisoned", Json::U64(self.count(PointStatus::Poisoned) as u64)),
            ("script_faults", Json::U64(self.count(PointStatus::ScriptFault) as u64)),
            ("rows", Json::Arr(rows)),
        ])
    }
}

/// Configuration for [`run_checkpointed`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig<'a> {
    /// Stable experiment label; part of every record's identity.
    pub experiment: &'static str,
    /// The sweep's base seed; part of every record's identity.
    pub base_seed: u64,
    /// Worker-pool sizing (see [`PoolConfig`]).
    pub pool: PoolConfig,
    /// Per-point supervision policy.
    pub supervisor: SweepSupervisor,
    /// The checkpoint file.
    pub path: &'a Path,
    /// Resume from `path` instead of truncating it.
    pub resume: bool,
    /// Storage backend for the checkpoint file; `None` is the real
    /// filesystem. Chaos soaks pass a seeded
    /// [`ChaosFs`](crate::chaosfs::ChaosFs) here.
    pub backend: Option<&'a dyn StorageBackend>,
}

pub(crate) fn outcome_record(point: usize, outcome: PointOutcome<Json>) -> CheckpointRecord {
    match outcome {
        PointOutcome::Completed { run, .. } => {
            let PointRun { result, truncation, violations } = run;
            CheckpointRecord {
                point,
                status: if truncation.is_some() { PointStatus::Truncated } else { PointStatus::Completed },
                truncation: truncation.map(|t| t.label().to_owned()),
                row: Some(result),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: violations.iter().map(|v| v.to_string()).collect(),
            }
        }
        PointOutcome::Poisoned { panic_msg, params, .. } => CheckpointRecord {
            point,
            status: PointStatus::Poisoned,
            truncation: None,
            row: None,
            panic_msg: Some(panic_msg),
            params: Some(params),
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: Vec::new(),
        },
        PointOutcome::ScriptFault { script_id, error, fuel_used, .. } => CheckpointRecord {
            point,
            status: PointStatus::ScriptFault,
            truncation: None,
            row: None,
            panic_msg: None,
            params: None,
            script_id: Some(script_id),
            script_error: Some(error),
            fuel_used: Some(fuel_used),
            violations: Vec::new(),
        },
    }
}

/// Runs a supervised sweep with per-point checkpointing (and, with
/// `cfg.resume`, exact resume — see the module docs for the contract).
///
/// `run_point` receives the **original** grid index in its [`SweepCtx`] even
/// on a resumed run that only re-runs a subset, so per-point seeds never
/// shift. It returns the point's report row as [`Json`] inside a
/// [`PointRun`]; panics are quarantined per the supervisor's retry budget.
pub fn run_checkpointed<P, F>(
    cfg: &CheckpointConfig<'_>,
    points: &[P],
    run_point: F,
) -> Result<SweepOutcomes, CheckpointError>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> PointRun<Json> + Sync,
{
    run_checkpointed_fallible(cfg, points, |ctx, p| Ok(run_point(ctx, p)))
}

/// Like [`run_checkpointed`], for point functions that can fail with a typed
/// script fault instead of a row.
///
/// A faulting point is recorded as [`PointStatus::ScriptFault`] after a
/// single attempt — script faults are deterministic, so retrying would burn
/// the panic budget for nothing — and, unlike poisoned points, the record is
/// **kept** on resume: re-running it would only reproduce the same fault.
pub fn run_checkpointed_fallible<P, F>(
    cfg: &CheckpointConfig<'_>,
    points: &[P],
    run_point: F,
) -> Result<SweepOutcomes, CheckpointError>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&SweepCtx, &P) -> Result<PointRun<Json>, sweep::ScriptFaultInfo> + Sync,
{
    let backend: &dyn StorageBackend = cfg.backend.unwrap_or(&REAL_FS);
    let manifest = if cfg.resume {
        Manifest::load_with(cfg.path, backend, cfg.experiment, cfg.base_seed)?
    } else {
        Manifest::default()
    };
    let mut slots: BTreeMap<usize, PointReport> = BTreeMap::new();
    for (&idx, rec) in &manifest.records {
        // Poisoned points re-run; script-faulted points are deterministic and
        // stay; records beyond the grid (a shrunk sweep) are ignored.
        if idx < points.len() && rec.status != PointStatus::Poisoned {
            slots.insert(idx, PointReport { record: rec.clone(), resumed: true });
        }
    }
    let resumed_points = slots.len();
    telemetry::points_resumed(resumed_points as u64);

    let todo: Vec<(usize, &P)> = points.iter().enumerate().filter(|(i, _)| !slots.contains_key(i)).collect();
    let writer = if cfg.resume {
        CheckpointWriter::append_with(cfg.path, backend)
    } else {
        CheckpointWriter::create_with(cfg.path, backend)
    };
    let supervisor = cfg.supervisor;
    let fresh = sweep::run(cfg.experiment, cfg.base_seed, &todo, cfg.pool.resolve(), |_, &(orig, p)| {
        let ctx = SweepCtx { experiment: cfg.experiment, point: orig, base_seed: cfg.base_seed };
        let record = outcome_record(orig, sweep::supervised_point_fallible(&ctx, &supervisor, p, &run_point));
        let written = writer.record(cfg.experiment, cfg.base_seed, &record);
        telemetry::sample_boundary();
        (record, written)
    });
    for (record, written) in fresh {
        written?;
        slots.insert(record.point, PointReport { record, resumed: false });
    }

    Ok(SweepOutcomes {
        experiment: cfg.experiment,
        base_seed: cfg.base_seed,
        points: slots.into_values().collect(),
        resumed_points,
        skipped_lines: manifest.skipped_lines,
        storage_fault: manifest.load_fault.or_else(|| writer.quarantine()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malsim-ckpt-{tag}-{}.ckpt", std::process::id()))
    }

    fn row(point: usize) -> Json {
        Json::obj([("point", Json::U64(point as u64)), ("value", Json::U64(point as u64 * 10))])
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_path("roundtrip");
        let writer = CheckpointWriter::create(&path).unwrap();
        let recs = [
            CheckpointRecord {
                point: 0,
                status: PointStatus::Completed,
                truncation: None,
                row: Some(row(0)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            },
            CheckpointRecord {
                point: 1,
                status: PointStatus::Truncated,
                truncation: Some("event_budget".into()),
                row: Some(row(1)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec!["invariant 'x' violated".into()],
            },
            CheckpointRecord {
                point: 2,
                status: PointStatus::Poisoned,
                truncation: None,
                row: None,
                panic_msg: Some("boom".into()),
                params: Some("2".into()),
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            },
            CheckpointRecord {
                point: 3,
                status: PointStatus::ScriptFault,
                truncation: None,
                row: None,
                panic_msg: None,
                params: None,
                script_id: Some("bomb.flua".into()),
                script_error: Some("script exceeded its memory budget (70000 > 65536 bytes)".into()),
                fuel_used: Some(4242),
                violations: vec![],
            },
        ];
        for rec in &recs {
            writer.record("test", 7, rec).unwrap();
        }
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 0);
        assert_eq!(manifest.records.len(), 4);
        for rec in &recs {
            assert_eq!(manifest.records[&rec.point], *rec);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_lines_are_skipped_and_last_record_wins() {
        let path = temp_path("damaged");
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut rec = CheckpointRecord {
            point: 0,
            status: PointStatus::Completed,
            truncation: None,
            row: Some(row(0)),
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: vec![],
        };
        writer.record("test", 7, &rec).unwrap();
        rec.row = Some(row(5));
        writer.record("test", 7, &rec).unwrap();
        // A torn final line and a hash-tampered record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"value\":50", "\"value\":51");
        assert_ne!(tampered, text, "tamper target must exist");
        text.push_str("{\"experiment\":\"test\",\"base_se");
        std::fs::write(&path, &text).unwrap();

        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "the torn line");
        assert_eq!(manifest.records[&0].row, Some(row(5)), "last valid record wins");

        std::fs::write(&path, &tampered).unwrap();
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "hash mismatch drops the record");
        assert_eq!(manifest.records[&0].row, Some(row(0)), "first record survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_mid_line_is_counted_and_prior_records_survive() {
        let path = temp_path("set-len");
        let writer = CheckpointWriter::create(&path).unwrap();
        for point in 0..3 {
            let rec = CheckpointRecord {
                point,
                status: PointStatus::Completed,
                truncation: None,
                row: Some(row(point)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            };
            writer.record("test", 7, &rec).unwrap();
        }
        drop(writer);
        // Chop the file mid-way through the final line, as a SIGKILL (or a
        // power cut) landing inside the last append would.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::File::options().write(true).open(&path).unwrap();
        file.set_len(len - 20).unwrap();
        drop(file);

        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 1, "the torn tail line is counted");
        assert_eq!(manifest.records.len(), 2, "fsynced predecessors survive intact");
        assert_eq!(manifest.records[&0].row, Some(row(0)));
        assert_eq!(manifest.records[&1].row, Some(row(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_sweep_is_a_hard_error() {
        let path = temp_path("wrong");
        let writer = CheckpointWriter::create(&path).unwrap();
        let rec = CheckpointRecord {
            point: 0,
            status: PointStatus::Completed,
            truncation: None,
            row: Some(row(0)),
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: vec![],
        };
        writer.record("test", 7, &rec).unwrap();
        let err = Manifest::load(&path, "test", 8).unwrap_err();
        assert!(matches!(err, CheckpointError::WrongSweep { .. }), "{err}");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let err = Manifest::load(&path, "other", 7).unwrap_err();
        assert!(matches!(err, CheckpointError::WrongSweep { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_manifest() {
        let manifest = Manifest::load(Path::new("/nonexistent/never/sweep.ckpt"), "test", 7).unwrap();
        assert_eq!(manifest, Manifest::default());
    }

    #[test]
    fn checkpointed_sweep_resumes_exactly() {
        let points: Vec<u64> = (0..6).collect();
        let eval = |ctx: &SweepCtx, &p: &u64| {
            PointRun::complete(Json::obj([("param", Json::U64(p)), ("seed", Json::U64(ctx.derived_seed()))]))
        };
        let full_path = temp_path("resume-full");
        let cfg = CheckpointConfig {
            experiment: "resume",
            base_seed: 11,
            pool: PoolConfig::explicit(2),
            supervisor: SweepSupervisor::default(),
            path: &full_path,
            resume: false,
            backend: None,
        };
        let full = run_checkpointed(&cfg, &points, eval).unwrap();
        let full_report = full.report().to_canonical_string();

        // Keep only the first 3 checkpoint lines, as if killed mid-grid.
        let partial_path = temp_path("resume-partial");
        let full_text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = full_text.lines().take(3).collect();
        std::fs::write(&partial_path, format!("{}\n", lines.join("\n"))).unwrap();

        for threads in [1, 2, 8] {
            let seed_path = temp_path(&format!("resume-t{threads}"));
            std::fs::copy(&partial_path, &seed_path).unwrap();
            let resumed = run_checkpointed(
                &CheckpointConfig {
                    path: &seed_path,
                    resume: true,
                    pool: PoolConfig::explicit(threads),
                    ..cfg
                },
                &points,
                eval,
            )
            .unwrap();
            assert_eq!(resumed.resumed_points, 3);
            assert_eq!(
                resumed.report().to_canonical_string(),
                full_report,
                "resume must be byte-identical at threads={threads}"
            );
            std::fs::remove_file(&seed_path).unwrap();
        }
        std::fs::remove_file(&full_path).unwrap();
        std::fs::remove_file(&partial_path).unwrap();
    }

    #[test]
    fn poisoned_points_rerun_on_resume() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let points: Vec<u64> = (0..3).collect();
        let path = temp_path("poison-rerun");
        let fail = AtomicBool::new(true);
        let eval = |_: &SweepCtx, &p: &u64| {
            if p == 1 && fail.load(Ordering::SeqCst) {
                panic!("transient environment failure");
            }
            PointRun::complete(Json::U64(p))
        };
        let cfg = CheckpointConfig {
            experiment: "poison",
            base_seed: 3,
            pool: PoolConfig::explicit(1),
            supervisor: SweepSupervisor::default(),
            path: &path,
            resume: false,
            backend: None,
        };
        let first = run_checkpointed(&cfg, &points, eval).unwrap();
        assert_eq!(first.points[1].record.status, PointStatus::Poisoned);
        assert_eq!(first.points[1].record.panic_msg.as_deref(), Some("transient environment failure"));
        assert_eq!(first.points[1].record.params.as_deref(), Some("1"));

        fail.store(false, Ordering::SeqCst);
        let second = run_checkpointed(&CheckpointConfig { resume: true, ..cfg }, &points, eval).unwrap();
        assert_eq!(second.resumed_points, 2, "completed points are kept");
        assert_eq!(second.points[1].record.status, PointStatus::Completed, "poisoned point re-ran");
        assert!(!second.points[1].resumed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn script_faults_are_kept_on_resume_and_reports_stay_byte_identical() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let points: Vec<u64> = (0..6).collect();
        let fault_runs = AtomicU32::new(0);
        let eval = |ctx: &SweepCtx, &p: &u64| {
            if p == 2 {
                fault_runs.fetch_add(1, Ordering::SeqCst);
                return Err(sweep::ScriptFaultInfo {
                    script_id: "bomb.flua".into(),
                    error: "script ran out of fuel".into(),
                    fuel_used: 20_000,
                });
            }
            Ok(PointRun::complete(Json::obj([
                ("param", Json::U64(p)),
                ("seed", Json::U64(ctx.derived_seed())),
            ])))
        };
        let full_path = temp_path("fault-full");
        let cfg = CheckpointConfig {
            experiment: "fault",
            base_seed: 23,
            pool: PoolConfig::explicit(2),
            supervisor: SweepSupervisor { retries: 5, ..SweepSupervisor::default() },
            path: &full_path,
            resume: false,
            backend: None,
        };
        let full = run_checkpointed_fallible(&cfg, &points, eval).unwrap();
        let full_report = full.report().to_canonical_string();
        assert_eq!(full.points[2].record.status, PointStatus::ScriptFault);
        assert_eq!(full.points[2].record.script_id.as_deref(), Some("bomb.flua"));
        assert_eq!(full.points[2].record.fuel_used, Some(20_000));
        assert_eq!(fault_runs.load(Ordering::SeqCst), 1, "deterministic fault: no retry burn");
        assert_eq!(full.report().get("script_faults").and_then(Json::as_u64), Some(1));

        // Truncate to the first 4 lines (which include the faulted point in
        // some interleaving or not — either way resume must reconverge).
        let partial_path = temp_path("fault-partial");
        let full_text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = full_text.lines().take(4).collect();
        std::fs::write(&partial_path, format!("{}\n", lines.join("\n"))).unwrap();
        let resumed = run_checkpointed_fallible(
            &CheckpointConfig { path: &partial_path, resume: true, ..cfg },
            &points,
            eval,
        )
        .unwrap();
        assert_eq!(
            resumed.report().to_canonical_string(),
            full_report,
            "resume with a ScriptFault record must be byte-identical"
        );
        // If the fault record survived truncation it was kept, not re-run.
        let kept_fault = lines.iter().any(|l| l.contains("script_fault"));
        let expected_runs = if kept_fault { 1 } else { 2 };
        assert_eq!(fault_runs.load(Ordering::SeqCst), expected_runs);
        std::fs::remove_file(&full_path).unwrap();
        std::fs::remove_file(&partial_path).unwrap();
    }

    #[test]
    fn fatal_read_degrades_to_an_empty_manifest_with_a_typed_fault() {
        // Reading a directory as a file is a fatal (non-NotFound) error.
        let dir = std::env::temp_dir();
        let manifest = Manifest::load(&dir, "test", 7).unwrap();
        assert!(manifest.records.is_empty());
        let fault = manifest.load_fault.expect("fatal read must surface a typed fault");
        assert_eq!(fault.op, StorageOp::Read);
        assert_ne!(fault.kind, std::io::ErrorKind::NotFound);
    }

    #[test]
    fn repairing_a_missing_journal_is_a_typed_io_error() {
        let err = repair_journal(Path::new("/nonexistent/never/sweep.ckpt")).unwrap_err();
        let CheckpointError::Io { kind, .. } = err else { panic!("expected Io, got {err}") };
        assert_eq!(kind, std::io::ErrorKind::NotFound);
    }

    #[test]
    fn fsync_failure_quarantines_the_writer_and_the_run_continues() {
        use crate::chaosfs::{ChaosFs, FaultSchedule};
        let schedule = FaultSchedule { fsync_fail_permille: 1000, ..FaultSchedule::quiet(17) };
        let chaos = ChaosFs::new(schedule);
        let path = temp_path("fsync-quarantine");
        let writer = CheckpointWriter::create_with(&path, &chaos);
        assert!(writer.quarantine().is_none(), "opening alone does not fsync");
        let rec = CheckpointRecord::cancelled(0);
        writer.record("test", 7, &rec).unwrap();
        let fault = writer.quarantine().expect("the first fsync fails and quarantines");
        assert_eq!(fault.op, StorageOp::Fsync);
        // Later appends are silent no-ops: the run continues unpersisted.
        writer.record("test", 7, &CheckpointRecord::cancelled(1)).unwrap();
        assert_eq!(chaos.stats().injected.get("fsync_fail"), Some(&1), "no retried fsync");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_full_quarantines_but_the_sweep_completes() {
        use crate::chaosfs::{ChaosFs, FaultSchedule};
        let points: Vec<u64> = (0..5).collect();
        let eval = |ctx: &SweepCtx, &p: &u64| {
            PointRun::complete(Json::obj([("param", Json::U64(p)), ("seed", Json::U64(ctx.derived_seed()))]))
        };
        let clean_path = temp_path("enospc-clean");
        let cfg = CheckpointConfig {
            experiment: "enospc",
            base_seed: 29,
            pool: PoolConfig::explicit(2),
            supervisor: SweepSupervisor::default(),
            path: &clean_path,
            resume: false,
            backend: None,
        };
        let clean = run_checkpointed(&cfg, &points, eval).unwrap();
        assert!(clean.storage_fault.is_none());

        // Now the same sweep against a disk with room for ~2 records.
        let chaos = ChaosFs::new(FaultSchedule { disk_capacity: Some(300), ..FaultSchedule::quiet(5) });
        let chaos_path = temp_path("enospc-chaos");
        let full = run_checkpointed(
            &CheckpointConfig { path: &chaos_path, backend: Some(&chaos), ..cfg },
            &points,
            eval,
        )
        .unwrap();
        let fault = full.storage_fault.clone().expect("ENOSPC must quarantine");
        assert_eq!(fault.kind, std::io::ErrorKind::StorageFull);
        assert_eq!(full.points.len(), 5, "the grid still completes");
        assert_eq!(
            full.report().to_canonical_string(),
            clean.report().to_canonical_string(),
            "storage faults never perturb report bytes"
        );
        std::fs::remove_file(&clean_path).unwrap();
        std::fs::remove_file(&chaos_path).unwrap();
    }

    #[test]
    fn transient_faults_are_absorbed_and_every_record_lands() {
        use crate::chaosfs::{ChaosFs, FaultSchedule};
        let schedule = FaultSchedule {
            eintr_permille: 100,
            short_write_permille: 100,
            torn_write_permille: 100,
            ..FaultSchedule::quiet(23)
        };
        let chaos = ChaosFs::new(schedule);
        let path = temp_path("transient");
        let writer = CheckpointWriter::create_with(&path, &chaos);
        for point in 0..40 {
            let rec = CheckpointRecord {
                point,
                status: PointStatus::Completed,
                truncation: None,
                row: Some(row(point)),
                panic_msg: None,
                params: None,
                script_id: None,
                script_error: None,
                fuel_used: None,
                violations: vec![],
            };
            writer.record("test", 7, &rec).unwrap();
        }
        assert!(writer.quarantine().is_none(), "transients alone never quarantine");
        assert!(!chaos.stats().injected.is_empty(), "this schedule injects within 40 records");
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.records.len(), 40, "every record survives the chaos");
        for point in 0..40 {
            assert_eq!(manifest.records[&point].row, Some(row(point)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repair_keeps_the_last_valid_line_per_slot_and_drops_damage() {
        let path = temp_path("repair");
        let writer = CheckpointWriter::create(&path).unwrap();
        let mut rec = CheckpointRecord {
            point: 0,
            status: PointStatus::Completed,
            truncation: None,
            row: Some(row(0)),
            panic_msg: None,
            params: None,
            script_id: None,
            script_error: None,
            fuel_used: None,
            violations: vec![],
        };
        writer.record("test", 7, &rec).unwrap();
        rec.row = Some(row(5));
        writer.record("test", 7, &rec).unwrap();
        rec.point = 1;
        rec.row = Some(row(1));
        writer.record("test", 7, &rec).unwrap();
        // Damage: a tampered duplicate of point 1 and a torn tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.lines().last().unwrap().replace("\"value\":10", "\"value\":11");
        text.push_str(&tampered);
        text.push('\n');
        text.push_str("{\"experiment\":\"test\",\"base_se");
        std::fs::write(&path, &text).unwrap();

        let summary = repair_journal(&path).unwrap();
        assert_eq!(summary.lines_seen, 5);
        assert_eq!(summary.kept, 2, "one line per point slot");
        assert_eq!(summary.dropped, 3, "superseded + tampered + torn");
        assert!(summary.bytes_after < summary.bytes_before);

        let repaired = std::fs::read_to_string(&path).unwrap();
        assert_eq!(repaired.lines().count(), 2);
        let manifest = Manifest::load(&path, "test", 7).unwrap();
        assert_eq!(manifest.skipped_lines, 0, "a repaired journal is fully valid");
        assert_eq!(manifest.records[&0].row, Some(row(5)), "last valid line won");
        assert_eq!(manifest.records[&1].row, Some(row(1)), "tampered duplicate lost");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_line_keys_classify_records_and_transitions() {
        let rec = CheckpointRecord::cancelled(3).to_json("job-a", 9).to_compact_string();
        assert_eq!(journal_line_key(&rec).as_deref(), Some("point/job-a/9/3"));
        assert_eq!(journal_line_key("not json"), None);
        assert_eq!(journal_line_key(&rec[..rec.len() - 4]), None, "torn lines have no key");
    }
}
