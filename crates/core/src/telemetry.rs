//! Unified telemetry plane: a process-wide metrics registry with Prometheus
//! and JSONL exposition.
//!
//! The registry is a fixed catalogue of counters, gauges, and fixed-bucket
//! histograms held in static atomic cells — metric handles are `static`s, so
//! recording never allocates and never takes a lock on the hot path (the two
//! label-keyed maps, WFQ lag and the profile rollup, are written only at run
//! boundaries). Like the profiler and the invariant checker, the whole plane
//! is opt-in: until [`arm`] is called every record function returns after a
//! single branch, and the kernel-side dispatch hook is never installed, so
//! un-instrumented processes pay one `Option` check per dispatched event and
//! nothing else.
//!
//! ## What is instrumented
//!
//! - **`kernel::sched` / `kernel::calq`** — dispatches by trace-category
//!   attribution and pre-dispatch queue depth (via the
//!   [`TelemetryHook`] installed by [`arm`]), plus the calendar queue's
//!   structural counters (ring resizes, tombstone reaps, cursor pull-backs)
//!   flushed at the end of every `run*` call.
//! - **`core::jobs`** — admissions, rejections by reason, queue high-water,
//!   per-tenant WFQ lag, point cancellations, and the result cache's
//!   hit/park/promotion traffic.
//! - **`core::sweep` / `core::checkpoint`** — point terminal states
//!   (completed, truncated by kind, quarantined, script-faulted), retries
//!   burned, points resumed from checkpoints, journal lines and bytes
//!   written, fsync latency, and damaged lines skipped on resume.
//! - **`core::chaosfs`** — storage faults injected by kind, transient I/O
//!   retries burned by the checkpoint layer, journal quarantines, and jobs
//!   whose persistence degraded under a fatal storage fault. Deterministic
//!   for a fixed fault schedule at one worker thread; multi-threaded chaos
//!   runs interleave the schedule nondeterministically, so armed chaos
//!   workloads only byte-compare snapshots at `MALSIM_THREADS=1`.
//!
//! ## Determinism contract
//!
//! The snapshot is split into two sections. `"deterministic"` holds every
//! count and gauge: for a fixed workload these are byte-identical across
//! runs and across `MALSIM_THREADS`, because each is a pure function of the
//! deterministic simulation/scheduling structure, not of interleaving.
//! (Caveats inherited from the rest of the workspace: host-deadline
//! truncations and wall-clock-timed cancellation sweeps are themselves
//! nondeterministic — workloads that byte-compare snapshots must avoid
//! them, exactly as they must for reports.) `"wall"` holds host-clock
//! measurements — the fsync latency histogram and the profiler rollup —
//! which differ on every run and must never be byte-compared.
//!
//! The JSONL stream ([`set_jsonl_sink`]) appends one compact line per point
//! boundary containing the *deterministic* section only; the final line of
//! a single-threaded run is byte-identical across runs, while line order in
//! multi-threaded runs reflects completion order and is observational.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use malsim_kernel::calq::QueueStats;
use malsim_kernel::sched::ProfileSummary;
use malsim_kernel::telemetry::TelemetryHook;
use malsim_kernel::trace::TraceCategory;

use crate::chaosfs::IoFaultKind;
use crate::jobs::RejectReason;
use crate::report::Json;
use crate::sweep::Truncation;

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// One metric cell: a relaxed atomic counter/gauge. All call sites gate on
/// [`armed`] first, so an unarmed process never touches the atomics.
#[derive(Debug)]
struct Cell(AtomicU64);

impl Cell {
    const fn new() -> Cell {
        Cell(AtomicU64::new(0))
    }

    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn high_water(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bucket latency histogram (bounds in microseconds, inclusive upper
/// edges, plus an overflow bucket). Linear scan — the bound list is tiny.
#[derive(Debug)]
struct Hist<const N: usize> {
    bounds: [u64; N],
    cells: [Cell; N],
    overflow: Cell,
    sum: Cell,
    count: Cell,
}

impl<const N: usize> Hist<N> {
    const fn new(bounds: [u64; N]) -> Hist<N> {
        Hist {
            bounds,
            cells: [const { Cell::new() }; N],
            overflow: Cell::new(),
            sum: Cell::new(),
            count: Cell::new(),
        }
    }

    fn observe(&self, v: u64) {
        match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => self.cells[i].add(1),
            None => self.overflow.add(1),
        }
        self.sum.add(v);
        self.count.add(1);
    }

    fn counts(&self) -> Vec<u64> {
        self.cells.iter().map(Cell::get).chain([self.overflow.get()]).collect()
    }

    fn clear(&self) {
        for c in &self.cells {
            c.clear();
        }
        self.overflow.clear();
        self.sum.clear();
        self.count.clear();
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

static ARMED: AtomicBool = AtomicBool::new(false);

/// Index of the "untraced" slot in [`SCHED_DISPATCHES`].
const UNTRACED: usize = TraceCategory::ALL.len();

/// Fsync latency bucket bounds, in microseconds.
const FSYNC_BOUNDS_US: [u64; 10] = [50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000];

/// Rejection-reason labels, in admission-check order (must stay in sync with
/// [`reject_index`]).
const REJECT_REASONS: [&str; 5] =
    ["empty_grid", "grid_too_large", "duplicate_job_id", "queue_full", "journal_mismatch"];

/// Truncation-kind labels (must stay in sync with [`truncation_index`]).
const TRUNCATION_KINDS: [&str; 2] = ["event_budget", "host_deadline"];

/// Injected-storage-fault labels (must stay in sync with
/// [`IoFaultKind::ALL`]; the unit tests assert the correspondence).
const CHAOS_KINDS: [&str; 7] =
    ["fsync_fail", "short_write", "torn_write", "disk_full", "eintr", "open_fail", "read_fail"];

static SCHED_DISPATCHES: [Cell; TraceCategory::ALL.len() + 1] =
    [const { Cell::new() }; TraceCategory::ALL.len() + 1];
static SCHED_QUEUE_DEPTH_MAX: Cell = Cell::new();
static CALQ_RESIZES: Cell = Cell::new();
static CALQ_TOMBSTONE_REAPS: Cell = Cell::new();
static CALQ_CURSOR_PULLBACKS: Cell = Cell::new();
static JOBS_ADMITTED: Cell = Cell::new();
static JOBS_REJECTED: [Cell; REJECT_REASONS.len()] = [const { Cell::new() }; REJECT_REASONS.len()];
static JOBS_QUEUE_DEPTH_MAX: Cell = Cell::new();
static JOBS_CANCELLED_POINTS: Cell = Cell::new();
static POINTS_COMPLETED: Cell = Cell::new();
static POINTS_TRUNCATED: [Cell; TRUNCATION_KINDS.len()] = [const { Cell::new() }; TRUNCATION_KINDS.len()];
static POINTS_RETRIED: Cell = Cell::new();
static POINTS_QUARANTINED: Cell = Cell::new();
static POINTS_SCRIPT_FAULTS: Cell = Cell::new();
static POINTS_RESUMED: Cell = Cell::new();
static CACHE_HITS: Cell = Cell::new();
static CACHE_PARKS: Cell = Cell::new();
static CACHE_PROMOTIONS: Cell = Cell::new();
static CKPT_LINES: Cell = Cell::new();
static CKPT_BYTES: Cell = Cell::new();
static CKPT_DAMAGED_LINES: Cell = Cell::new();
static CHAOS_FAULTS: [Cell; CHAOS_KINDS.len()] = [const { Cell::new() }; CHAOS_KINDS.len()];
static CKPT_IO_RETRIES: Cell = Cell::new();
static CKPT_JOURNAL_QUARANTINED: Cell = Cell::new();
static JOBS_DEGRADED_STORAGE: Cell = Cell::new();
static FSYNC_HIST: Hist<{ FSYNC_BOUNDS_US.len() }> = Hist::new(FSYNC_BOUNDS_US);

/// Per-tenant WFQ lag behind the fleet's minimum virtual time; written once
/// at the end of each queue run, never on the dispatch path.
static WFQ_LAG: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Folded profiler rollup: per-category `(events, host_ms)` across every
/// summary recorded via [`record_profile`].
static PROFILE: Mutex<ProfileAgg> = Mutex::new(ProfileAgg::new());

#[derive(Debug)]
struct ProfileAgg {
    per_cat: BTreeMap<String, (u64, f64)>,
    points: u64,
}

impl ProfileAgg {
    const fn new() -> ProfileAgg {
        ProfileAgg { per_cat: BTreeMap::new(), points: 0 }
    }
}

/// The JSONL point-boundary stream, if one was opened.
static JSONL: Mutex<Option<JsonlSink>> = Mutex::new(None);

#[derive(Debug)]
struct JsonlSink {
    file: std::fs::File,
    samples: u64,
}

// ---------------------------------------------------------------------------
// Arming
// ---------------------------------------------------------------------------

/// The kernel-facing half of the registry: fed one callback per dispatched
/// event plus the queue's structural counter deltas at the end of each run.
struct KernelHook;

impl TelemetryHook for KernelHook {
    fn dispatch(&self, category: Option<TraceCategory>, queue_depth: usize) {
        if !armed() {
            return;
        }
        SCHED_DISPATCHES[category.map_or(UNTRACED, |c| c as usize)].add(1);
        SCHED_QUEUE_DEPTH_MAX.high_water(queue_depth as u64);
    }

    fn queue_stats(&self, delta: QueueStats) {
        if !armed() {
            return;
        }
        CALQ_RESIZES.add(delta.resizes);
        CALQ_TOMBSTONE_REAPS.add(delta.tombstone_reaps);
        CALQ_CURSOR_PULLBACKS.add(delta.cursor_pullbacks);
    }
}

static HOOK: KernelHook = KernelHook;

/// Arms the registry and installs the kernel dispatch hook.
///
/// Call once at process start, **before any simulation is created**: a `Sim`
/// captures the hook at construction, so sims built earlier never report
/// dispatches. Kernel installation is one-way; [`disarm`] stops recording
/// but armed-then-disarmed processes keep paying the (tiny) hook dispatch
/// cost, so arming is meant for whole-process observation, not toggling.
pub fn arm() {
    malsim_kernel::telemetry::install(&HOOK);
    ARMED.store(true, Ordering::SeqCst);
}

/// Arms the registry iff the `MALSIM_METRICS` environment variable is `1`.
/// Returns whether the registry is now armed.
pub fn arm_if_env() -> bool {
    if std::env::var("MALSIM_METRICS").is_ok_and(|v| v.trim() == "1") {
        arm();
    }
    armed()
}

/// Stops recording (cells keep their values until [`reset`]).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether the registry is recording.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Zeroes every cell, clears the labeled maps and the profiler rollup, and
/// closes the JSONL sink. Intended for test isolation — the registry is
/// process-global, so tests that assert exact values must reset first (and
/// must not share a process with unrelated instrumented work).
pub fn reset() {
    for c in &SCHED_DISPATCHES {
        c.clear();
    }
    SCHED_QUEUE_DEPTH_MAX.clear();
    CALQ_RESIZES.clear();
    CALQ_TOMBSTONE_REAPS.clear();
    CALQ_CURSOR_PULLBACKS.clear();
    JOBS_ADMITTED.clear();
    for c in &JOBS_REJECTED {
        c.clear();
    }
    JOBS_QUEUE_DEPTH_MAX.clear();
    JOBS_CANCELLED_POINTS.clear();
    POINTS_COMPLETED.clear();
    for c in &POINTS_TRUNCATED {
        c.clear();
    }
    POINTS_RETRIED.clear();
    POINTS_QUARANTINED.clear();
    POINTS_SCRIPT_FAULTS.clear();
    POINTS_RESUMED.clear();
    CACHE_HITS.clear();
    CACHE_PARKS.clear();
    CACHE_PROMOTIONS.clear();
    CKPT_LINES.clear();
    CKPT_BYTES.clear();
    CKPT_DAMAGED_LINES.clear();
    for c in &CHAOS_FAULTS {
        c.clear();
    }
    CKPT_IO_RETRIES.clear();
    CKPT_JOURNAL_QUARANTINED.clear();
    JOBS_DEGRADED_STORAGE.clear();
    FSYNC_HIST.clear();
    lock(&WFQ_LAG).clear();
    *lock(&PROFILE) = ProfileAgg::new();
    *lock(&JSONL) = None;
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().expect("telemetry lock never held across user code")
}

// ---------------------------------------------------------------------------
// Recorders (crate-internal instrumentation surface)
// ---------------------------------------------------------------------------

fn reject_index(reason: &RejectReason) -> usize {
    match reason {
        RejectReason::EmptyGrid => 0,
        RejectReason::GridTooLarge { .. } => 1,
        RejectReason::DuplicateJobId => 2,
        RejectReason::QueueFull { .. } => 3,
        RejectReason::JournalMismatch { .. } => 4,
    }
}

fn truncation_index(t: Truncation) -> usize {
    match t {
        Truncation::EventBudget => 0,
        Truncation::HostDeadline => 1,
    }
}

pub(crate) fn jobs_admitted(queue_depth: usize) {
    if !armed() {
        return;
    }
    JOBS_ADMITTED.add(1);
    JOBS_QUEUE_DEPTH_MAX.high_water(queue_depth as u64);
}

pub(crate) fn jobs_rejected(reason: &RejectReason) {
    if !armed() {
        return;
    }
    JOBS_REJECTED[reject_index(reason)].add(1);
}

pub(crate) fn jobs_cancelled_points(n: u64) {
    if !armed() {
        return;
    }
    JOBS_CANCELLED_POINTS.add(n);
}

pub(crate) fn wfq_lag_set(tenant: &str, lag: u64) {
    if !armed() {
        return;
    }
    lock(&WFQ_LAG).insert(tenant.to_owned(), lag);
}

pub(crate) fn point_completed(truncation: Option<Truncation>) {
    if !armed() {
        return;
    }
    match truncation {
        None => POINTS_COMPLETED.add(1),
        Some(t) => POINTS_TRUNCATED[truncation_index(t)].add(1),
    }
}

pub(crate) fn points_retried(n: u64) {
    if !armed() || n == 0 {
        return;
    }
    POINTS_RETRIED.add(n);
}

pub(crate) fn point_quarantined() {
    if !armed() {
        return;
    }
    POINTS_QUARANTINED.add(1);
}

pub(crate) fn point_script_fault() {
    if !armed() {
        return;
    }
    POINTS_SCRIPT_FAULTS.add(1);
}

pub(crate) fn points_resumed(n: u64) {
    if !armed() {
        return;
    }
    POINTS_RESUMED.add(n);
}

pub(crate) fn cache_hit() {
    if !armed() {
        return;
    }
    CACHE_HITS.add(1);
}

pub(crate) fn cache_park() {
    if !armed() {
        return;
    }
    CACHE_PARKS.add(1);
}

pub(crate) fn cache_promotion() {
    if !armed() {
        return;
    }
    CACHE_PROMOTIONS.add(1);
}

pub(crate) fn ckpt_line_written(bytes: u64) {
    if !armed() {
        return;
    }
    CKPT_LINES.add(1);
    CKPT_BYTES.add(bytes);
}

pub(crate) fn ckpt_fsync_micros(us: u64) {
    if !armed() {
        return;
    }
    FSYNC_HIST.observe(us);
}

pub(crate) fn ckpt_damaged_lines(n: u64) {
    if !armed() || n == 0 {
        return;
    }
    CKPT_DAMAGED_LINES.add(n);
}

fn chaos_index(kind: IoFaultKind) -> usize {
    match kind {
        IoFaultKind::FsyncFail => 0,
        IoFaultKind::ShortWrite => 1,
        IoFaultKind::TornWrite => 2,
        IoFaultKind::DiskFull => 3,
        IoFaultKind::Eintr => 4,
        IoFaultKind::OpenFail => 5,
        IoFaultKind::ReadFail => 6,
    }
}

pub(crate) fn chaos_fault_injected(kind: IoFaultKind) {
    if !armed() {
        return;
    }
    CHAOS_FAULTS[chaos_index(kind)].add(1);
}

pub(crate) fn ckpt_io_retry() {
    if !armed() {
        return;
    }
    CKPT_IO_RETRIES.add(1);
}

pub(crate) fn ckpt_journal_quarantined() {
    if !armed() {
        return;
    }
    CKPT_JOURNAL_QUARANTINED.add(1);
}

pub(crate) fn jobs_degraded_storage(n: u64) {
    if !armed() || n == 0 {
        return;
    }
    JOBS_DEGRADED_STORAGE.add(n);
}

// ---------------------------------------------------------------------------
// Profiler bridge (satellite: one export path for profiler and metrics)
// ---------------------------------------------------------------------------

/// Canonical-JSON rendering of one [`ProfileSummary`] — the machine-readable
/// twin of [`ProfileSummary::render`]'s aligned text table.
pub fn profile_json(summary: &ProfileSummary) -> Json {
    let rows = summary
        .rows
        .iter()
        .map(|r| {
            Json::obj([
                ("category", r.category.as_str().into()),
                ("events", Json::U64(r.events)),
                ("host_ms", Json::F64(r.host_ms)),
            ])
        })
        .collect();
    Json::obj([
        ("total_events", Json::U64(summary.total_events)),
        ("total_host_ms", Json::F64(summary.total_host_ms)),
        ("queue_p50", Json::F64(summary.queue_p50)),
        ("queue_p95", Json::F64(summary.queue_p95)),
        ("queue_p99", Json::F64(summary.queue_p99)),
        ("queue_max", Json::F64(summary.queue_max)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Folds one profiling summary's per-category rollup into the registry's
/// wall-clock section, so a profiled sweep's dispatch costs surface in the
/// same snapshot as the counters. No-op when unarmed.
pub fn record_profile(summary: &ProfileSummary) {
    if !armed() {
        return;
    }
    let mut agg = lock(&PROFILE);
    agg.points += 1;
    for row in &summary.rows {
        let slot = agg.per_cat.entry(row.category.clone()).or_insert((0, 0.0));
        slot.0 += row.events;
        slot.1 += row.host_ms;
    }
}

// ---------------------------------------------------------------------------
// Catalogue and exporters
// ---------------------------------------------------------------------------

/// One metric's value in the export catalogue.
enum Value {
    Int(u64),
    Labeled { key: &'static str, items: Vec<(String, u64)> },
    LabeledF64 { key: &'static str, items: Vec<(String, f64)> },
    Hist { bounds: &'static [u64], counts: Vec<u64>, sum: u64, count: u64 },
}

/// One metric in the export catalogue; both exporters render from this, so
/// the JSON snapshot and the Prometheus exposition can never disagree about
/// names, label sets, or determinism classification.
struct Metric {
    name: &'static str,
    help: &'static str,
    kind: &'static str,
    deterministic: bool,
    value: Value,
}

fn dispatch_items() -> Vec<(String, u64)> {
    let mut items: Vec<(String, u64)> = TraceCategory::ALL
        .iter()
        .map(|c| (c.name().to_owned(), SCHED_DISPATCHES[*c as usize].get()))
        .collect();
    items.push(("untraced".to_owned(), SCHED_DISPATCHES[UNTRACED].get()));
    items
}

fn labeled_from<const N: usize>(labels: [&str; N], cells: &[Cell; N]) -> Vec<(String, u64)> {
    labels.iter().zip(cells).map(|(l, c)| ((*l).to_owned(), c.get())).collect()
}

/// Reads every cell into the fixed metric catalogue.
fn collect() -> Vec<Metric> {
    let counter = |name, help, cell: &Cell| Metric {
        name,
        help,
        kind: "counter",
        deterministic: true,
        value: Value::Int(cell.get()),
    };
    let profile = lock(&PROFILE);
    let profile_events: Vec<(String, u64)> = profile.per_cat.iter().map(|(k, v)| (k.clone(), v.0)).collect();
    let profile_host_ms: Vec<(String, f64)> = profile.per_cat.iter().map(|(k, v)| (k.clone(), v.1)).collect();
    let profile_points = profile.points;
    drop(profile);
    vec![
        Metric {
            name: "malsim_sched_dispatches_total",
            help: "Events dispatched by the kernel scheduler, by trace-category attribution.",
            kind: "counter",
            deterministic: true,
            value: Value::Labeled { key: "category", items: dispatch_items() },
        },
        Metric {
            name: "malsim_sched_queue_depth_max",
            help: "Largest pre-dispatch pending-event queue depth observed in any simulation.",
            kind: "gauge",
            deterministic: true,
            value: Value::Int(SCHED_QUEUE_DEPTH_MAX.get()),
        },
        counter(
            "malsim_calq_resizes_total",
            "Calendar-queue bucket ring resizes (grow or shrink rebuilds).",
            &CALQ_RESIZES,
        ),
        counter(
            "malsim_calq_tombstone_reaps_total",
            "Cancelled events physically reclaimed from the calendar queue.",
            &CALQ_TOMBSTONE_REAPS,
        ),
        counter(
            "malsim_calq_cursor_pullbacks_total",
            "Inserts that landed behind the calendar queue's scan cursor.",
            &CALQ_CURSOR_PULLBACKS,
        ),
        counter("malsim_jobs_admitted_total", "Jobs accepted by queue admission control.", &JOBS_ADMITTED),
        Metric {
            name: "malsim_jobs_rejected_total",
            help: "Jobs turned away at admission, by reason.",
            kind: "counter",
            deterministic: true,
            value: Value::Labeled { key: "reason", items: labeled_from(REJECT_REASONS, &JOBS_REJECTED) },
        },
        Metric {
            name: "malsim_jobs_queue_depth_max",
            help: "High-water mark of jobs admitted to one queue.",
            kind: "gauge",
            deterministic: true,
            value: Value::Int(JOBS_QUEUE_DEPTH_MAX.get()),
        },
        Metric {
            name: "malsim_jobs_wfq_lag",
            help: "Per-tenant virtual-time lag behind the fleet minimum at the end of a queue run.",
            kind: "gauge",
            deterministic: true,
            value: Value::Labeled {
                key: "tenant",
                items: lock(&WFQ_LAG).iter().map(|(k, v)| (k.clone(), *v)).collect(),
            },
        },
        counter(
            "malsim_jobs_cancelled_points_total",
            "Grid points marked cancelled before they ran.",
            &JOBS_CANCELLED_POINTS,
        ),
        counter(
            "malsim_points_completed_total",
            "Supervised points that completed untruncated.",
            &POINTS_COMPLETED,
        ),
        Metric {
            name: "malsim_points_truncated_total",
            help: "Supervised points cut short by the watchdog, by limit kind.",
            kind: "counter",
            deterministic: true,
            value: Value::Labeled { key: "kind", items: labeled_from(TRUNCATION_KINDS, &POINTS_TRUNCATED) },
        },
        counter(
            "malsim_points_retried_total",
            "Extra attempts burned re-running panicking points.",
            &POINTS_RETRIED,
        ),
        counter(
            "malsim_points_quarantined_total",
            "Points quarantined as poisoned after exhausting their retry budget.",
            &POINTS_QUARANTINED,
        ),
        counter(
            "malsim_points_script_faults_total",
            "Points that failed with a typed scenario-script fault.",
            &POINTS_SCRIPT_FAULTS,
        ),
        counter(
            "malsim_points_resumed_total",
            "Points restored from a checkpoint or journal instead of re-running.",
            &POINTS_RESUMED,
        ),
        counter(
            "malsim_cache_hits_total",
            "Points served a copy of another point's record from the result cache.",
            &CACHE_HITS,
        ),
        counter(
            "malsim_cache_parks_total",
            "Duplicate points parked on another job's in-flight evaluation.",
            &CACHE_PARKS,
        ),
        counter(
            "malsim_cache_promotions_total",
            "Parked duplicates promoted to evaluator after their owner's claim was orphaned.",
            &CACHE_PROMOTIONS,
        ),
        counter(
            "malsim_ckpt_lines_total",
            "Checkpoint/journal lines written (each flushed and fsynced).",
            &CKPT_LINES,
        ),
        counter(
            "malsim_ckpt_bytes_total",
            "Checkpoint/journal bytes written, including newlines.",
            &CKPT_BYTES,
        ),
        counter(
            "malsim_ckpt_damaged_lines_total",
            "Damaged (torn or hash-failed) lines skipped while replaying checkpoints and journals.",
            &CKPT_DAMAGED_LINES,
        ),
        Metric {
            name: "malsim_chaos_faults_injected_total",
            help: "Storage faults injected by the chaos backend, by kind.",
            kind: "counter",
            deterministic: true,
            value: Value::Labeled { key: "kind", items: labeled_from(CHAOS_KINDS, &CHAOS_FAULTS) },
        },
        counter(
            "malsim_ckpt_io_retries_total",
            "Transient storage faults retried with backoff by the checkpoint layer.",
            &CKPT_IO_RETRIES,
        ),
        counter(
            "malsim_ckpt_journal_quarantined_total",
            "Checkpoint/journal files quarantined after a fatal storage fault.",
            &CKPT_JOURNAL_QUARANTINED,
        ),
        counter(
            "malsim_jobs_degraded_storage_total",
            "Jobs whose journal persistence degraded under a fatal storage fault.",
            &JOBS_DEGRADED_STORAGE,
        ),
        Metric {
            name: "malsim_ckpt_fsync_micros",
            help: "Latency of the per-line flush+fsync, in microseconds.",
            kind: "histogram",
            deterministic: false,
            value: Value::Hist {
                bounds: &FSYNC_HIST.bounds,
                counts: FSYNC_HIST.counts(),
                sum: FSYNC_HIST.sum.get(),
                count: FSYNC_HIST.count.get(),
            },
        },
        Metric {
            name: "malsim_profile_points",
            help: "Profiling summaries folded into the rollup below.",
            kind: "gauge",
            deterministic: false,
            value: Value::Int(profile_points),
        },
        Metric {
            name: "malsim_profile_events_total",
            help: "Profiler rollup: dispatches per trace category across recorded summaries.",
            kind: "counter",
            deterministic: false,
            value: Value::Labeled { key: "category", items: profile_events },
        },
        Metric {
            name: "malsim_profile_host_ms_total",
            help: "Profiler rollup: host milliseconds per trace category across recorded summaries.",
            kind: "counter",
            deterministic: false,
            value: Value::LabeledF64 { key: "category", items: profile_host_ms },
        },
    ]
}

fn metric_json(value: &Value) -> Json {
    match value {
        Value::Int(n) => Json::U64(*n),
        Value::Labeled { items, .. } => {
            Json::Obj(items.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect())
        }
        Value::LabeledF64 { items, .. } => {
            Json::Obj(items.iter().map(|(k, v)| (k.clone(), Json::F64(*v))).collect())
        }
        Value::Hist { bounds, counts, sum, count } => {
            let mut cum = 0u64;
            let mut buckets: Vec<(String, Json)> = Vec::with_capacity(bounds.len() + 1);
            for (i, b) in bounds.iter().enumerate() {
                cum += counts[i];
                buckets.push((b.to_string(), Json::U64(cum)));
            }
            cum += counts[bounds.len()];
            buckets.push(("+Inf".to_owned(), Json::U64(cum)));
            Json::obj([
                ("buckets", Json::Obj(buckets)),
                ("sum", Json::U64(*sum)),
                ("count", Json::U64(*count)),
            ])
        }
    }
}

/// The deterministic section alone, as canonical JSON. This is the
/// byte-comparable export: for a fixed workload it is identical across runs
/// and `MALSIM_THREADS` (see the module docs for the contract's caveats).
pub fn deterministic_json() -> Json {
    Json::Obj(
        collect()
            .iter()
            .filter(|m| m.deterministic)
            .map(|m| (m.name.to_owned(), metric_json(&m.value)))
            .collect(),
    )
}

/// The full snapshot: `{"deterministic": {...}, "wall": {...}}`.
pub fn snapshot() -> Json {
    let (mut det, mut wall) = (Vec::new(), Vec::new());
    for m in collect() {
        let section = if m.deterministic { &mut det } else { &mut wall };
        section.push((m.name.to_owned(), metric_json(&m.value)));
    }
    Json::obj([("deterministic", Json::Obj(det)), ("wall", Json::Obj(wall))])
}

/// [`deterministic_json`] rendered canonically — the golden-friendly form.
pub fn render_deterministic() -> String {
    deterministic_json().to_canonical_string()
}

/// [`snapshot`] rendered canonically.
pub fn render_snapshot() -> String {
    snapshot().to_canonical_string()
}

/// Prometheus text exposition (version 0.0.4) of the whole registry: one
/// `# HELP`/`# TYPE` pair per family, fixed label sets emitted even at zero
/// so scrapes are structurally stable, histogram buckets cumulative with a
/// closing `+Inf`.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for m in collect() {
        let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
        let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind);
        match &m.value {
            Value::Int(n) => {
                let _ = writeln!(out, "{} {}", m.name, n);
            }
            Value::Labeled { key, items } => {
                for (label, v) in items {
                    let _ = writeln!(out, "{}{{{}=\"{}\"}} {}", m.name, key, label, v);
                }
            }
            Value::LabeledF64 { key, items } => {
                for (label, v) in items {
                    let _ = writeln!(out, "{}{{{}=\"{}\"}} {}", m.name, key, label, v);
                }
            }
            Value::Hist { bounds, counts, sum, count } => {
                let mut cum = 0u64;
                for (i, b) in bounds.iter().enumerate() {
                    cum += counts[i];
                    let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, b, cum);
                }
                cum += counts[bounds.len()];
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, cum);
                let _ = writeln!(out, "{}_sum {}", m.name, sum);
                let _ = writeln!(out, "{}_count {}", m.name, count);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL stream
// ---------------------------------------------------------------------------

/// Opens (truncating) the JSONL snapshot stream at `path`. Each subsequent
/// point boundary appends one compact line:
/// `{"sample":N,"deterministic":{...}}`.
pub fn set_jsonl_sink(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    *lock(&JSONL) = Some(JsonlSink { file, samples: 0 });
    Ok(())
}

/// Closes the JSONL stream, if one is open.
pub fn clear_jsonl_sink() {
    *lock(&JSONL) = None;
}

/// Samples the deterministic section into the JSONL stream. Called by the
/// instrumented runners at every point boundary; a no-op when unarmed or
/// when no sink is open. Public so custom runners can add their own
/// boundaries.
pub fn sample_boundary() {
    if !armed() {
        return;
    }
    let mut guard = lock(&JSONL);
    let Some(sink) = guard.as_mut() else { return };
    sink.samples += 1;
    // Holding the sink lock across the read keeps each line's sample number
    // and payload consistent; the catalogue locks are disjoint from this one.
    let line = Json::obj([("sample", Json::U64(sink.samples)), ("deterministic", deterministic_json())])
        .to_compact_string();
    let _ = writeln!(sink.file, "{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and the core test binary runs many
    // instrumented tests in parallel, so exact end-to-end counts are
    // asserted in the dedicated `telemetry` integration binary (its own
    // process). Here we only exercise the pure pieces.

    #[test]
    fn histogram_buckets_select_inclusive_upper_edges() {
        let h: Hist<3> = Hist::new([10, 100, 1000]);
        for v in [5, 10, 11, 1000, 1001] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 1, 1, 1], "le=10 ×2, le=100 ×1, le=1000 ×1, +Inf ×1");
        assert_eq!(h.sum.get(), 5 + 10 + 11 + 1000 + 1001);
        assert_eq!(h.count.get(), 5);
    }

    #[test]
    fn reject_and_truncation_indices_match_their_label_tables() {
        assert_eq!(REJECT_REASONS[reject_index(&RejectReason::EmptyGrid)], "empty_grid");
        assert_eq!(
            REJECT_REASONS[reject_index(&RejectReason::GridTooLarge { points: 9, max_points: 1 })],
            "grid_too_large"
        );
        assert_eq!(REJECT_REASONS[reject_index(&RejectReason::DuplicateJobId)], "duplicate_job_id");
        assert_eq!(REJECT_REASONS[reject_index(&RejectReason::QueueFull { capacity: 1 })], "queue_full");
        assert_eq!(
            REJECT_REASONS[reject_index(&RejectReason::JournalMismatch {
                expected: String::new(),
                found: String::new()
            })],
            "journal_mismatch"
        );
        assert_eq!(TRUNCATION_KINDS[truncation_index(Truncation::EventBudget)], "event_budget");
        assert_eq!(TRUNCATION_KINDS[truncation_index(Truncation::HostDeadline)], "host_deadline");
    }

    #[test]
    fn profile_json_mirrors_the_summary() {
        use malsim_kernel::sched::ProfileRow;
        let summary = ProfileSummary {
            rows: vec![ProfileRow { category: "net".to_owned(), events: 3, host_ms: 1.5 }],
            total_events: 3,
            total_host_ms: 1.5,
            queue_p50: 1.0,
            queue_p95: 2.0,
            queue_p99: 2.0,
            queue_max: 2.0,
        };
        let json = profile_json(&summary);
        assert_eq!(json.get("total_events"), Some(&Json::U64(3)));
        let rows = json.get("rows").expect("rows present");
        let Json::Arr(rows) = rows else { panic!("rows is an array") };
        assert_eq!(rows[0].get("category"), Some(&Json::Str("net".to_owned())));
        assert_eq!(rows[0].get("host_ms"), Some(&Json::F64(1.5)));
    }

    #[test]
    fn catalogue_families_are_unique_and_prefixed() {
        let metrics = collect();
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "no duplicate families");
        for m in &metrics {
            assert!(m.name.starts_with("malsim_"), "{} carries the workspace prefix", m.name);
            assert!(matches!(m.kind, "counter" | "gauge" | "histogram"), "{}", m.name);
        }
    }
}
