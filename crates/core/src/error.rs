//! The workspace-level error type.
//!
//! Each layer keeps its own small, typed error (`TimeError`,
//! `FaultConfigError`, `DnsError`, `HttpError`, `RetryExhausted`,
//! `InvariantViolation`, `CheckpointError`, `CompileScriptError`,
//! `RunScriptError`) — all implementing [`std::error::Error`] and
//! `Display` — and [`Error`] folds them into one enum so harnesses and
//! examples can bubble any of them through a single
//! `Result<_, malsim::Error>` with `?`.

use malsim_kernel::fault::FaultConfigError;
use malsim_kernel::invariant::InvariantViolation;
use malsim_kernel::time::TimeError;
use malsim_net::dns::DnsError;
use malsim_net::http::HttpError;
use malsim_net::retry::RetryExhausted;
use malsim_script::error::{CompileScriptError, RunScriptError};

use crate::checkpoint::CheckpointError;
use crate::jobs::{JobError, Rejected};

/// Any error the malsim workspace can surface, by originating layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A calendar/clock conversion failed ([`TimeError`]).
    Time(TimeError),
    /// A fault-injection window is malformed ([`FaultConfigError`]).
    Fault(FaultConfigError),
    /// A DNS operation failed ([`DnsError`]).
    Dns(DnsError),
    /// An HTTP transport operation failed ([`HttpError`]).
    Http(HttpError),
    /// A retry policy's budget was exhausted ([`RetryExhausted`]).
    Retry(RetryExhausted),
    /// A runtime invariant was violated ([`InvariantViolation`]).
    Invariant(InvariantViolation),
    /// Checkpoint persistence or resume failed ([`CheckpointError`]).
    Checkpoint(CheckpointError),
    /// A job-queue submission or journal operation failed ([`JobError`]).
    Job(JobError),
    /// A Flua scenario/module script failed to compile
    /// ([`CompileScriptError`]).
    Compile(CompileScriptError),
    /// A Flua scenario/module script faulted at runtime
    /// ([`RunScriptError`]).
    Script(RunScriptError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Time(e) => write!(f, "time: {e}"),
            Error::Fault(e) => write!(f, "fault plane: {e}"),
            Error::Dns(e) => write!(f, "dns: {e}"),
            Error::Http(e) => write!(f, "http: {e}"),
            Error::Retry(e) => write!(f, "retry: {e}"),
            Error::Invariant(e) => write!(f, "invariant: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Error::Job(e) => write!(f, "jobs: {e}"),
            Error::Compile(e) => write!(f, "script: {e}"),
            Error::Script(e) => write!(f, "script: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Time(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Dns(e) => Some(e),
            Error::Http(e) => Some(e),
            Error::Retry(e) => Some(e),
            Error::Invariant(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Job(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Script(e) => Some(e),
        }
    }
}

impl From<TimeError> for Error {
    fn from(e: TimeError) -> Error {
        Error::Time(e)
    }
}

impl From<FaultConfigError> for Error {
    fn from(e: FaultConfigError) -> Error {
        Error::Fault(e)
    }
}

impl From<DnsError> for Error {
    fn from(e: DnsError) -> Error {
        Error::Dns(e)
    }
}

impl From<HttpError> for Error {
    fn from(e: HttpError) -> Error {
        Error::Http(e)
    }
}

impl From<RetryExhausted> for Error {
    fn from(e: RetryExhausted) -> Error {
        Error::Retry(e)
    }
}

impl From<InvariantViolation> for Error {
    fn from(e: InvariantViolation) -> Error {
        Error::Invariant(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Error {
        Error::Checkpoint(e)
    }
}

impl From<JobError> for Error {
    fn from(e: JobError) -> Error {
        Error::Job(e)
    }
}

impl From<Rejected> for Error {
    fn from(e: Rejected) -> Error {
        Error::Job(JobError::Rejected(e))
    }
}

impl From<CompileScriptError> for Error {
    fn from(e: CompileScriptError) -> Error {
        Error::Compile(e)
    }
}

impl From<RunScriptError> for Error {
    fn from(e: RunScriptError) -> Error {
        Error::Script(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_preserve_the_source() {
        let retry = RetryExhausted { attempts: 3, last_error: "dns: all dead".into() };
        let err: Error = retry.clone().into();
        assert_eq!(err, Error::Retry(retry));
        assert_eq!(err.to_string(), "retry: retries exhausted after 3 attempts: dns: all dead");
        assert!(err.source().is_some(), "source chain is wired");

        let ckpt = CheckpointError::Io {
            path: "/tmp/x".into(),
            kind: std::io::ErrorKind::PermissionDenied,
            detail: "denied".into(),
        };
        let err: Error = ckpt.into();
        assert!(err.to_string().starts_with("checkpoint: "), "{err}");
        assert!(err.source().unwrap().to_string().contains("/tmp/x"));
    }

    #[test]
    fn script_errors_round_trip_display_and_source() {
        use malsim_script::error::SourcePos;

        let run = RunScriptError::OutOfFuel;
        let err: Error = run.clone().into();
        assert_eq!(err, Error::Script(run.clone()));
        assert_eq!(err.to_string(), format!("script: {run}"));
        assert_eq!(err.source().unwrap().to_string(), run.to_string());

        let cap = RunScriptError::CapabilityDenied {
            name: "detonate".into(),
            capability: malsim_script::cap::Capability::Detonate,
        };
        let err: Error = cap.clone().into();
        assert_eq!(err.to_string(), "script: capability denied: 'detonate' requires detonate");
        assert_eq!(err.source().unwrap().to_string(), cap.to_string());

        let compile =
            CompileScriptError { pos: SourcePos { line: 2, col: 5 }, message: "unexpected token".into() };
        let err: Error = compile.clone().into();
        assert_eq!(err, Error::Compile(compile.clone()));
        assert_eq!(err.to_string(), "script: compile error at 2:5: unexpected token");
        assert_eq!(err.source().unwrap().to_string(), compile.to_string());
    }

    #[test]
    fn every_variant_displays_with_a_layer_prefix() {
        use malsim_kernel::time::SimTime;
        let cases: Vec<Error> = vec![
            InvariantViolation {
                law: "monotonic-time",
                at: SimTime::EPOCH,
                detail: "clock went backwards".into(),
            }
            .into(),
            RetryExhausted { attempts: 1, last_error: "x".into() }.into(),
            CheckpointError::Io {
                path: "/tmp/x".into(),
                kind: std::io::ErrorKind::Other,
                detail: "y".into(),
            }
            .into(),
            Rejected { job_id: "j".into(), reason: crate::jobs::RejectReason::EmptyGrid }.into(),
        ];
        for err in cases {
            let text = err.to_string();
            assert!(text.contains(": "), "layer prefix present: {text}");
        }
    }
}
