//! Golden-snapshot storage: check live experiment output against the
//! checked-in canonical JSON under `tests/golden/`, or re-record it.
//!
//! The regression test calls [`check`] for every experiment. On drift it
//! fails with a per-field report from [`crate::report::diff`]; setting
//! `MALSIM_BLESS=1` rewrites the snapshot instead (review the `git diff`
//! before committing — a bless that moves headline numbers is a finding,
//! not a formality).

use std::fs;
use std::path::PathBuf;

use crate::report::{self, Json};

/// The snapshot directory, `tests/golden/` at the workspace root.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The snapshot file for an experiment name.
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.json"))
}

/// True when `MALSIM_BLESS` is set to anything but `0` — snapshots are
/// re-recorded instead of checked.
pub fn bless_requested() -> bool {
    std::env::var_os("MALSIM_BLESS").is_some_and(|v| v != "0")
}

/// Checks `live` against the checked-in golden for `name`, or (under
/// `MALSIM_BLESS=1`) rewrites it.
///
/// Returns a readable failure report on drift, a missing snapshot, or an
/// unparseable snapshot; `Ok` means canonically identical (or blessed).
pub fn check(name: &str, live: &Json) -> Result<(), String> {
    let path = golden_path(name);
    let live_text = live.to_canonical_string();
    if bless_requested() {
        fs::create_dir_all(golden_dir()).map_err(|e| format!("{name}: creating golden dir: {e}"))?;
        fs::write(&path, &live_text).map_err(|e| format!("{name}: writing {}: {e}", path.display()))?;
        return Ok(());
    }
    let golden_text = fs::read_to_string(&path).map_err(|_| {
        format!(
            "{name}: no golden snapshot at {} — record one with `MALSIM_BLESS=1 cargo test --test golden_regression`",
            path.display()
        )
    })?;
    if golden_text == live_text {
        return Ok(());
    }
    // Texts differ; parse the golden for a field-level account. A snapshot
    // that no longer parses is itself a failure.
    let golden = report::parse(&golden_text)
        .map_err(|e| format!("{name}: golden snapshot {} is not valid JSON: {e}", path.display()))?;
    let drift = report::diff(&golden, live);
    if drift.is_empty() {
        // Same value, different bytes: the snapshot predates the canonical
        // form (or was hand-edited). Still a failure — goldens are byte-canonical.
        return Err(format!(
            "{name}: snapshot {} is semantically equal but not in canonical form; re-record with MALSIM_BLESS=1",
            path.display()
        ));
    }
    let mut msg = format!("{name}: {} headline field(s) drifted from {}:\n", drift.len(), path.display());
    for line in &drift {
        msg.push_str("  ");
        msg.push_str(line);
        msg.push('\n');
    }
    msg.push_str(
        "  (if the change is intended, re-record with `MALSIM_BLESS=1 cargo test --test golden_regression`)",
    );
    Err(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_dir_is_inside_the_workspace_tests_tree() {
        let p = golden_path("e1");
        assert!(p.ends_with("tests/golden/e1.json"), "{}", p.display());
    }

    #[test]
    fn bless_flag_parses() {
        // Env-var driven; pin the `"0"` opt-out comparison used above.
        let one: &std::ffi::OsStr = "1".as_ref();
        let zero: &std::ffi::OsStr = "0".as_ref();
        assert!(one != "0");
        assert!(zero == "0");
    }
}
