//! The experiment harness: one function per experiment in DESIGN.md's index
//! (E1–E13). Examples and benches call these and print the returned rows.
//!
//! Every grid-shaped experiment runs its points through the deterministic
//! parallel [`crate::sweep`] runner: the plain entry points size the worker
//! pool from the environment ([`crate::sweep::threads_from_env`]), and the
//! `_t`-suffixed variants take an explicit thread count. Output is
//! byte-identical at every thread count (asserted by
//! `tests/sweep_parallel.rs`).
//!
//! [`golden_specs`] is the regression registry: each experiment at its
//! documented EXPERIMENTS.md scale, serialized to canonical JSON and checked
//! against `tests/golden/` by `tests/golden_regression.rs`.

use malsim_kernel::invariant::InvariantViolation;
use malsim_kernel::sched::{ProfileSummary, Watchdog};
use malsim_kernel::time::{SimDuration, SimTime};
use malsim_malware::flame;
use malsim_malware::flame::candc::StolenData;
use malsim_malware::shamoon;
use malsim_malware::stuxnet;
use malsim_malware::world::{PlantId, World, WorldSim};
use malsim_os::host::HostId;
use malsim_os::patches::Bulletin;

use crate::activity;
use crate::armory::Pki;
use crate::checkpoint;
use crate::report::Json;
use crate::scenario::ScenarioBuilder;
use crate::sweep;
use crate::sweep::Truncation;

/// The default parameter grids, shared by the golden registry, the benches,
/// and the example binaries so they all regenerate the same tables.
pub mod grids {
    /// E2: fraction of the fleet patched against MS10-046/061.
    pub const E2_PATCH_RATES: &[f64] = &[0.0, 0.25, 0.5, 0.75, 1.0];
    /// E4: LAN sizes for the WPAD MITM spread.
    pub const E4_LAN_SIZES: &[usize] = &[8, 16, 32];
    /// E6: fraction of the 80 C&C domains taken down.
    pub const E6_TAKEDOWNS: &[f64] = &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
    /// E11: noisy actions per 2-hour spread round.
    pub const E11_ACTION_RATES: &[f64] = &[1.0, 4.0, 12.0];
    /// E13: fraction of the 22 C&C servers sinkholed.
    pub const E13_SINKHOLE_FRACTIONS: &[f64] = &[0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
}

/// E1 (Fig. 1): the Stuxnet end-to-end chain.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Result {
    /// Hosts infected (office + station).
    pub infected_hosts: usize,
    /// Whether the PLC was implanted.
    pub plc_implanted: bool,
    /// Centrifuges destroyed.
    pub destroyed: usize,
    /// Total centrifuges.
    pub total_centrifuges: usize,
    /// Whether the digital safety system ever tripped.
    pub safety_tripped: bool,
    /// Abnormal frames the operator saw.
    pub operator_anomalies: u64,
    /// Days from seeding to first physical destruction, if any.
    pub days_to_first_destruction: Option<f64>,
}

/// E1 with the post-run world and scheduler retained, so callers can export
/// the trace/span logs, reconstruct causal chains, or read the profiling
/// summary. [`e1_stuxnet_end_to_end`] is the headline-only view of this.
#[derive(Debug)]
pub struct E1Run {
    /// The headline result row.
    pub result: E1Result,
    /// The simulated world at the end of the run.
    pub world: World,
    /// The scheduler, carrying `trace`, `spans`, `metrics`, and (when
    /// requested) the still-open profiler — call
    /// [`finish_profile`](malsim_kernel::sched::Sim::finish_profile) to
    /// collect it.
    pub sim: WorldSim,
}

/// Runs E1. `seed` controls all randomness; `days` bounds the run.
pub fn e1_stuxnet_end_to_end(seed: u64, days: u64) -> E1Result {
    e1_stuxnet_end_to_end_run(seed, days, false).result
}

/// Runs E1 and keeps the world and scheduler. `profile` turns on the
/// scheduler's dispatch profiler (host-clock timings never affect sim
/// behavior, so the headline row is identical either way).
pub fn e1_stuxnet_end_to_end_run(seed: u64, days: u64, profile: bool) -> E1Run {
    e1_stuxnet_end_to_end_checked(seed, days, profile, false).0
}

/// [`e1_stuxnet_end_to_end_run`] with an optional non-strict runtime
/// invariant sweep (see [`crate::invariants::install`]): the returned vector
/// holds every violation observed during the run — empty on a healthy model.
/// Checking never perturbs the simulation, so the headline row is identical
/// either way.
pub fn e1_stuxnet_end_to_end_checked(
    seed: u64,
    days: u64,
    profile: bool,
    check: bool,
) -> (E1Run, Vec<InvariantViolation>) {
    let builder = ScenarioBuilder::new(seed);
    let (mut world, mut sim, plant, office, station) = builder.natanz_site(8, 12);
    if profile {
        sim.enable_profiling();
    }
    if check {
        crate::invariants::install(&mut sim, false);
    }
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);
    // Seed: a contaminated conference USB circulating the office, and an
    // engineer's stick that couriers office → plant.
    let conf = world.usb_drives.push(malsim_os::usb::UsbDrive::new("conference-gift"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, conf);
    activity::schedule_usb_courier(&mut sim, conf, office.clone(), SimDuration::from_hours(6));
    let engineer = world.usb_drives.push(malsim_os::usb::UsbDrive::new("engineer-stick"));
    let mut route = vec![office[0], station];
    route.dedup();
    activity::schedule_usb_courier(&mut sim, engineer, route, SimDuration::from_hours(12));
    activity::schedule_stuxnet_checkins(&mut sim, SimDuration::from_hours(8));

    let start = sim.now();
    sim.run_until(&mut world, start + SimDuration::from_days(days));

    let plant_ref = &world.plants[plant];
    let first_destruction = sim
        .trace
        .first_of(malsim_kernel::trace::TraceCategory::Destruction)
        .map(|e| (e.time - start).as_hours_f64() / 24.0);
    let result = E1Result {
        infected_hosts: world.campaigns.stuxnet.infections.len(),
        plc_implanted: world.campaigns.stuxnet.plant_attacks.contains_key(&plant),
        destroyed: plant_ref.cascade.destroyed_count(),
        total_centrifuges: plant_ref.cascade.len(),
        safety_tripped: plant_ref.safety.is_tripped(),
        operator_anomalies: plant_ref.operator.anomalies_seen(),
        days_to_first_destruction: first_destruction,
    };
    let violations = sim.take_violations();
    (E1Run { result, world, sim }, violations)
}

/// E2 (§II-A): zero-day ablation — infection fraction vs patch rate.
#[derive(Debug, Clone, PartialEq)]
pub struct E2Row {
    /// Fraction of the fleet patched against MS10-046/061.
    pub patch_rate: f64,
    /// Fraction of the LAN infected at the end of the run.
    pub infected_fraction: f64,
}

/// Runs E2 across `patch_rates` on a LAN of `n` hosts for `days`.
pub fn e2_zero_day_ablation(seed: u64, n: usize, days: u64, patch_rates: &[f64]) -> Vec<E2Row> {
    e2_zero_day_ablation_t(seed, n, days, patch_rates, sweep::threads_from_env())
}

/// E2 with an explicit worker count. Each patch rate is an independent sweep
/// point seeded from its derived `(e2, point, seed)` stream.
pub fn e2_zero_day_ablation_t(
    seed: u64,
    n: usize,
    days: u64,
    patch_rates: &[f64],
    threads: usize,
) -> Vec<E2Row> {
    sweep::run("e2", seed, patch_rates, threads, |ctx, &rate| {
        let (mut world, mut sim) =
            ScenarioBuilder::new(ctx.derived_seed()).patch_rate(rate).without_trace().office_lan(n);
        let pki = Pki::install(&mut world);
        pki.arm_stuxnet(&mut world);
        // Seed via USB on host 0 regardless of its patch state? The LNK
        // vector needs an unpatched seed; pick the first vulnerable host.
        let seed_host =
            world.hosts.iter().find(|(_, h)| h.is_vulnerable_to(Bulletin::Ms10_046)).map(|(id, _)| id);
        if let Some(h) = seed_host {
            stuxnet::infection::infect_host(&mut world, &mut sim, h, "usb-lnk");
            sim.run_until(&mut world, sim.now() + SimDuration::from_days(days));
        }
        E2Row {
            patch_rate: rate,
            infected_fraction: world.campaigns.stuxnet.infections.len() as f64 / n as f64,
        }
    })
}

/// E3 (§II-C): PLC targeting discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct E3Row {
    /// Scenario label.
    pub configuration: String,
    /// Whether the payload armed.
    pub armed: bool,
    /// Centrifuges destroyed.
    pub destroyed: usize,
}

/// Runs E3: the same infection against targeted and non-targeted plants.
pub fn e3_plc_targeting(seed: u64, days: u64) -> Vec<E3Row> {
    e3_plc_targeting_t(seed, days, sweep::threads_from_env())
}

/// E3 with an explicit worker count. The two arms form a paired ablation —
/// both seed from the base seed so they differ only in the PLC
/// configuration.
pub fn e3_plc_targeting_t(seed: u64, days: u64, threads: usize) -> Vec<E3Row> {
    let arms = [("profibus + targeted vendors", true), ("wrong bus / vendors", false)];
    sweep::run("e3", seed, &arms, threads, |ctx, &(label, targeted)| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.base_seed).office_lan(0);
        let (plant, station) = build_plant(&mut world, &mut sim, targeted);
        let pki = Pki::install(&mut world);
        pki.arm_stuxnet(&mut world);
        stuxnet::infection::infect_host(&mut world, &mut sim, station, "usb-lnk");
        sim.run_until(&mut world, sim.now() + SimDuration::from_days(days));
        E3Row {
            configuration: label.to_owned(),
            armed: world.campaigns.stuxnet.plant_attacks.contains_key(&plant),
            destroyed: world.plants[plant].cascade.destroyed_count(),
        }
    })
}

fn build_plant(world: &mut World, sim: &mut WorldSim, targeted: bool) -> (PlantId, HostId) {
    use malsim_os::host::{Host, HostRole, WindowsVersion};
    use malsim_scada::cascade::Cascade;
    use malsim_scada::drive::{DriveVendor, FrequencyDrive};
    use malsim_scada::hmi::{OperatorView, SafetySystem, TelemetryTap};
    use malsim_scada::plc::{CommProcessor, Plc};
    use malsim_scada::step7::Step7;
    let zone = world.topology.add_zone("plant", false);
    let station = world.hosts.push(Host::new(
        "eng-station",
        WindowsVersion::Xp,
        HostRole::EngineeringStation,
        sim.now(),
    ));
    world.hosts[station].config.internet_access = false;
    world.topology.place(station, zone);
    let mut plc = Plc::new(if targeted { CommProcessor::Profibus } else { CommProcessor::Ethernet });
    for _ in 0..10 {
        let vendor =
            if targeted { DriveVendor::Vacon } else { DriveVendor::Other("Generic Drives GmbH".into()) };
        plc.attach_drive(FrequencyDrive::new(vendor, 1_064.0));
    }
    let cascade = Cascade::for_plc(&plc);
    let mut step7 = Step7::new();
    step7.add_project("line-1");
    let plant = world.plants.push(malsim_malware::world::Plant {
        name: "plant-1".into(),
        plc,
        cascade,
        tap: TelemetryTap::new(),
        safety: SafetySystem::new(),
        operator: OperatorView::new(),
        engineering_station: station,
        step7,
    });
    (plant, station)
}

/// E4 (Fig. 2): the WPAD/fake-update spread.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Row {
    /// LAN size.
    pub lan_size: usize,
    /// Whether SNACK claimed WPAD.
    pub mitm_active: bool,
    /// Infected fraction after the run.
    pub infected_fraction: f64,
}

/// Runs E4 for each LAN size, with and without the MITM.
pub fn e4_wpad_mitm(seed: u64, lan_sizes: &[usize], hours: u64) -> Vec<E4Row> {
    e4_wpad_mitm_t(seed, lan_sizes, hours, sweep::threads_from_env())
}

/// E4 with an explicit worker count; the grid is the cross product of LAN
/// size × MITM arm, each point an independent derived-seed run.
pub fn e4_wpad_mitm_t(seed: u64, lan_sizes: &[usize], hours: u64, threads: usize) -> Vec<E4Row> {
    let points: Vec<(usize, bool)> = lan_sizes.iter().flat_map(|&n| [(n, false), (n, true)]).collect();
    sweep::run("e4", seed, &points, threads, |ctx, &(n, mitm)| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).without_trace().office_lan(n);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 22, 80);
        let seed_host = HostId::new(0);
        flame::client::infect_host(&mut world, &mut sim, seed_host, "seed");
        if mitm {
            flame::mitm::snack_claim_wpad(&mut world, &mut sim, seed_host);
        }
        activity::schedule_update_checks(
            &mut sim,
            (0..n).map(HostId::new).collect(),
            SimDuration::from_hours(24),
        );
        sim.run_until(&mut world, sim.now() + SimDuration::from_hours(hours));
        E4Row {
            lan_size: n,
            mitm_active: mitm,
            infected_fraction: world.campaigns.flame_clients.len() as f64 / n as f64,
        }
    })
}

/// E5 (Fig. 3): certificate forgery acceptance under the four policy states.
#[derive(Debug, Clone, PartialEq)]
pub struct E5Row {
    /// Policy label.
    pub policy: String,
    /// Whether the forged update was accepted.
    pub accepted: bool,
}

/// Runs E5: one forged update, four verifier states.
pub fn e5_cert_forgery(seed: u64) -> Vec<E5Row> {
    use malsim_net::winupdate::{client_accepts_update, UpdatePackage};
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(1);
    let pki = Pki::install(&mut world);
    pki.arm_flame(&mut world, &mut sim, 4, 10);
    let (binary, sig) = world.campaigns.flame_platform.as_ref().unwrap().forged_update.clone().unwrap();
    let pkg = UpdatePackage { name: "WusetupV.exe".into(), binary, signature: Some(sig) };
    let host = HostId::new(0);
    let mut rows = Vec::new();
    // 1. Legacy policy, pre-advisory.
    {
        let h = &world.hosts[host];
        rows.push(E5Row {
            policy: "legacy verifier, pre-advisory".into(),
            accepted: client_accepts_update(&pkg, &h.trust, h.verify_policy, sim.now()).is_ok(),
        });
    }
    // 2. Strict policy, certificates still trusted.
    {
        let h = &world.hosts[host];
        rows.push(E5Row {
            policy: "strict verifier".into(),
            accepted: client_accepts_update(
                &pkg,
                &h.trust,
                malsim_certs::store::VerifyPolicy::strict(),
                sim.now(),
            )
            .is_ok(),
        });
    }
    // 3. Advisory applied (distrust + strict).
    {
        pki.apply_advisory(&mut world, host);
        let h = &world.hosts[host];
        rows.push(E5Row {
            policy: "post-advisory (distrusted)".into(),
            accepted: client_accepts_update(&pkg, &h.trust, h.verify_policy, sim.now()).is_ok(),
        });
    }
    // 4. A genuine strong-hash update still installs post-advisory.
    {
        use malsim_certs::cert::Eku;
        use malsim_certs::hash::HashAlgorithm;
        use malsim_certs::key::KeyPair;
        use malsim_certs::store::CodeSignature;
        let kp = KeyPair::from_seed(8_888);
        let cert = pki.vendor_ca.issue(
            "Vendor Update Publisher",
            kp.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            SimTime::from_utc(2035, 1, 1, 0, 0, 0),
        );
        let body = b"genuine update".to_vec();
        let gsig = CodeSignature::sign(&kp, cert, HashAlgorithm::Strong64, &body);
        let gpkg = UpdatePackage { name: "KB-real".into(), binary: body, signature: Some(gsig) };
        let h = &world.hosts[host];
        rows.push(E5Row {
            policy: "genuine update, post-advisory".into(),
            accepted: client_accepts_update(&gpkg, &h.trust, h.verify_policy, sim.now()).is_ok(),
        });
    }
    rows
}

/// E6 (Fig. 4): C&C resilience to domain takedowns.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Row {
    /// Fraction of the 80 domains taken down.
    pub takedown_fraction: f64,
    /// Fraction of clients that can still reach a server (80-domain
    /// platform).
    pub reachable_many: f64,
    /// Same, for a single-domain strawman.
    pub reachable_single: f64,
}

/// Runs E6: `clients` clients, sweeping takedown fractions.
pub fn e6_candc_resilience(seed: u64, clients: usize, fractions: &[f64]) -> Vec<E6Row> {
    e6_candc_resilience_t(seed, clients, fractions, sweep::threads_from_env())
}

/// E6 with an explicit worker count; each takedown fraction is an
/// independent derived-seed point.
pub fn e6_candc_resilience_t(seed: u64, clients: usize, fractions: &[f64], threads: usize) -> Vec<E6Row> {
    sweep::run("e6", seed, fractions, threads, |ctx, &frac| {
        let (mut world, mut sim) =
            ScenarioBuilder::new(ctx.derived_seed()).without_trace().office_lan(clients);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 22, 80);
        for i in 0..clients {
            flame::client::infect_host(&mut world, &mut sim, HostId::new(i), "seed");
            // Contact once so the client grows to its 10-domain config.
            flame::client::beacon(&mut world, &mut sim, HostId::new(i));
        }
        // Single-domain strawman: register one extra domain.
        let single = malsim_net::addr::Domain::new("single-c2.example");
        let ip = world.campaigns.flame_platform.as_ref().unwrap().servers[0].ip;
        world.dns.register(
            single.clone(),
            ip,
            malsim_net::dns::Registrant { name: "x".into(), country: "DE".into(), registrar: "r".into() },
        );
        // Take down a deterministic sample of the fleet's domains (and the
        // strawman's single domain with probability = fraction).
        let domains = world.campaigns.flame_platform.as_ref().unwrap().domains.clone();
        let k = (domains.len() as f64 * frac).round() as usize;
        let idx = sim.rng.sample_indices(domains.len(), k);
        for i in idx {
            world.dns.take_down(&domains[i]);
        }
        let single_down = sim.rng.chance(frac);
        if single_down {
            world.dns.take_down(&single);
        }
        let platform = world.campaigns.flame_platform.as_ref().unwrap();
        let reachable = world
            .campaigns
            .flame_clients
            .values()
            .filter(|c| platform.reach_server(&world.dns, &c.domains).is_some())
            .count();
        let single_ok = world.dns.resolve(&single).is_some();
        E6Row {
            takedown_fraction: frac,
            reachable_many: reachable as f64 / clients.max(1) as f64,
            reachable_single: if single_ok { 1.0 } else { 0.0 },
        }
    })
}

/// E7 (Fig. 5): C&C data flow over one week.
#[derive(Debug, Clone, PartialEq)]
pub struct E7Result {
    /// Total bytes uploaded by clients over the window.
    pub bytes_uploaded: u64,
    /// Bytes per server per week (the paper's sample server saw ~5.5 GB).
    pub bytes_per_server_week: f64,
    /// Entries retrieved and cleaned by the operator loop.
    pub entries_retrieved: u64,
    /// Entries still sitting on servers at the end (should be ~0 thanks to
    /// the cleanup cron).
    pub entries_residual: usize,
    /// Bytes readable at the attack center.
    pub attack_center_bytes: u64,
}

/// Runs E7: `clients` infected hosts with document corpora beacon for
/// `days` days against a platform with `servers` servers.
pub fn e7_candc_dataflow(seed: u64, clients: usize, servers: usize, days: u64) -> E7Result {
    let (mut world, mut sim) = ScenarioBuilder::new(seed).without_trace().office_lan(clients);
    let pki = Pki::install(&mut world);
    pki.arm_flame(&mut world, &mut sim, servers, servers * 4);
    // Seed each host with a document corpus sized by the rng.
    for i in 0..clients {
        let host = HostId::new(i);
        let n_docs = sim.rng.range(3..10usize);
        for d in 0..n_docs {
            let ext = *sim.rng.pick(&["docx", "pdf", "xls", "dwg", "txt"]).expect("non-empty");
            let size = sim.rng.range(20_000..2_000_000usize);
            let path = malsim_os::path::WinPath::new(format!(r"C:\Users\user\Documents\file-{d}.{ext}"));
            world.hosts[host]
                .fs
                .write(&path, malsim_os::fs::FileData::Bytes(vec![0; size]), sim.now())
                .expect("valid path");
        }
        flame::client::infect_host(&mut world, &mut sim, host, "seed");
    }
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(days));
    let platform = world.campaigns.flame_platform.as_ref().unwrap();
    let bytes = sim.metrics.counter("flame.bytes_uploaded");
    E7Result {
        bytes_uploaded: bytes,
        bytes_per_server_week: bytes as f64 / servers as f64 * (7.0 / days as f64),
        entries_retrieved: sim.metrics.counter("flame.entries_retrieved"),
        entries_residual: platform.servers.iter().map(|s| s.entries.len()).sum(),
        attack_center_bytes: platform.attack_center.total_bytes,
    }
}

/// E8 (§III-A): exfiltration-intelligence ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Row {
    /// Strategy label.
    pub strategy: String,
    /// Bytes uploaded.
    pub bytes_uploaded: u64,
    /// Juicy-document bytes that reached the attack center.
    pub juicy_bytes: u64,
}

/// Runs E8: metadata-first triage vs upload-everything.
pub fn e8_exfil_ablation(seed: u64, clients: usize, days: u64) -> Vec<E8Row> {
    e8_exfil_ablation_t(seed, clients, days, sweep::threads_from_env())
}

/// E8 with an explicit worker count. A paired ablation: both arms seed from
/// the base seed so they share the corpus and differ only in the JIMMY
/// triage logic.
pub fn e8_exfil_ablation_t(seed: u64, clients: usize, days: u64, threads: usize) -> Vec<E8Row> {
    let arms = [("metadata-first triage", false), ("upload everything", true)];
    sweep::run("e8", seed, &arms, threads, |ctx, &(label, upload_everything)| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.base_seed).without_trace().office_lan(clients);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 8, 32);
        for i in 0..clients {
            let host = HostId::new(i);
            for d in 0..6 {
                let (ext, size) = if d % 2 == 0 { ("docx", 500_000) } else { ("txt", 400_000) };
                let path = malsim_os::path::WinPath::new(format!(r"C:\Users\user\Documents\f{d}.{ext}"));
                world.hosts[host]
                    .fs
                    .write(&path, malsim_os::fs::FileData::Bytes(vec![0; size]), sim.now())
                    .expect("valid path");
            }
            flame::client::infect_host(&mut world, &mut sim, host, "seed");
            if upload_everything {
                // Ablation: a JIMMY variant with the triage stripped out —
                // every matching file's content uploads immediately.
                let greedy = flame::modules::JIMMY_V1
                    .replace("is_approved(f) and not uploaded(f)", "not uploaded(f)")
                    .replace(r#"".xls""#, r#"".xls", ".txt""#);
                let c = world.campaigns.flame_clients.get_mut(&host).expect("client");
                assert!(c.install_module("JIMMY", 99, &greedy));
            }
        }
        activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
        sim.run_until(&mut world, sim.now() + SimDuration::from_days(days));
        let platform = world.campaigns.flame_platform.as_ref().unwrap();
        let juicy: u64 = platform
            .attack_center
            .retrieved
            .iter()
            .filter_map(|d| match d {
                StolenData::FileContent { path, size, .. } if path.ends_with(".docx") => Some(*size as u64),
                _ => None,
            })
            .sum();
        E8Row {
            strategy: label.to_owned(),
            bytes_uploaded: sim.metrics.counter("flame.bytes_uploaded"),
            juicy_bytes: juicy,
        }
    })
}

/// E9 (Fig. 6 / §IV): the Shamoon wipe at enterprise scale.
#[derive(Debug, Clone, PartialEq)]
pub struct E9Result {
    /// Fleet size.
    pub fleet: usize,
    /// Hosts infected before the trigger.
    pub infected: usize,
    /// Hosts bricked at the trigger.
    pub bricked: usize,
    /// Wipe reports received by the attacker.
    pub reports: usize,
    /// Hours from seeding to trigger.
    pub hours_to_trigger: f64,
}

/// E9 with the post-run world and scheduler retained (the E9 counterpart
/// of [`E1Run`]), so callers can read event counts, metrics, or traces.
#[derive(Debug)]
pub struct E9Run {
    /// The headline result row.
    pub result: E9Result,
    /// The simulated world at the end of the run.
    pub world: World,
    /// The scheduler, carrying `trace`, `metrics`, and the executed-event
    /// count.
    pub sim: WorldSim,
}

/// Runs E9: `zones` sites of `hosts_per_zone` hosts; seeding `seeds` zones
/// a few days before the hard-coded trigger.
pub fn e9_shamoon_wipe(seed: u64, zones: usize, hosts_per_zone: usize, seeded_zones: usize) -> E9Result {
    e9_shamoon_wipe_run(seed, zones, hosts_per_zone, seeded_zones).result
}

/// Runs E9 and keeps the world and scheduler (see [`E9Run`]).
pub fn e9_shamoon_wipe_run(seed: u64, zones: usize, hosts_per_zone: usize, seeded_zones: usize) -> E9Run {
    let mut builder = ScenarioBuilder::new(seed);
    builder.start(SimTime::from_utc(2012, 8, 13, 6, 0, 0)).without_trace();
    let (mut world, mut sim) = builder.enterprise(zones, hosts_per_zone);
    let pki = Pki::install(&mut world);
    pki.arm_shamoon(&mut world);
    world.campaigns.shamoon.trigger_at = Some(shamoon::aramco_trigger());
    // Seed one host per selected zone (multi-zone seeding models the
    // credential-reuse bridge the real attack used).
    let per_zone = hosts_per_zone + 1;
    for z in 0..seeded_zones.min(zones) {
        let h = HostId::new(z * per_zone + 1);
        shamoon::dropper::infect_host(&mut world, &mut sim, h, "phish");
    }
    let start = sim.now();
    sim.run_until(&mut world, shamoon::aramco_trigger() + SimDuration::from_hours(2));
    let result = E9Result {
        fleet: world.hosts.len(),
        infected: world.campaigns.shamoon.infections.len(),
        bricked: world.bricked_count(),
        reports: world.campaigns.shamoon.reports.len(),
        hours_to_trigger: (shamoon::aramco_trigger() - start).as_hours_f64(),
    };
    E9Run { result, world, sim }
}

/// E10 (§V): the derived trend matrix after running all three campaigns.
pub fn e10_trend_matrix(seed: u64) -> Vec<malsim_analysis::trends::TrendProfile> {
    // One compact world where all three campaigns have acted.
    let e1 = e1_stuxnet_end_to_end(seed, 10);
    let _ = e1;
    // Build a fresh combined run for profile derivation.
    let (mut world, mut sim) = ScenarioBuilder::new(seed).office_lan(12);
    let pki = Pki::install(&mut world);
    pki.arm_stuxnet(&mut world);
    pki.register_stuxnet_c2(&mut world);
    pki.arm_flame(&mut world, &mut sim, 22, 80);
    pki.arm_shamoon(&mut world);
    world.campaigns.shamoon.trigger_at = Some(sim.now() + SimDuration::from_days(6));
    // A wrong-configuration plant whose engineering station also gets
    // infected: the payload inspects the PLC and stays dormant — the
    // targeting-discipline signal the trend matrix derives from.
    let (_plant, station) = build_plant(&mut world, &mut sim, false);
    stuxnet::infection::infect_host(&mut world, &mut sim, station, "usb-lnk");
    // Stuxnet via usb on 0; Flame on 4 with MITM; Shamoon on 8.
    let usb = world.usb_drives.push(malsim_os::usb::UsbDrive::new("seed"));
    stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
    world.hosts[HostId::new(0)].insert_usb(usb);
    stuxnet::infection::open_usb_in_explorer(&mut world, &mut sim, HostId::new(0));
    flame::client::infect_host(&mut world, &mut sim, HostId::new(4), "seed");
    flame::mitm::snack_claim_wpad(&mut world, &mut sim, HostId::new(4));
    shamoon::dropper::infect_host(&mut world, &mut sim, HostId::new(8), "phish");
    activity::schedule_update_checks(
        &mut sim,
        (0..12).map(HostId::new).collect(),
        SimDuration::from_hours(24),
    );
    activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
    activity::schedule_stuxnet_checkins(&mut sim, SimDuration::from_hours(8));
    // Push one module update so modularity registers.
    {
        let p = world.campaigns.flame_platform.as_mut().unwrap();
        p.broadcast(flame::candc::Package::ModuleUpdate {
            name: "JIMMY".into(),
            version: 2,
            source: flame::modules::JIMMY_V1.to_owned(),
        });
    }
    sim.run_until(&mut world, sim.now() + SimDuration::from_days(7));
    malsim_analysis::trends::derive_profiles(&world, &sim.metrics)
}

/// E11 (§V-B): stealth vs spread aggressiveness against behavioural AV.
#[derive(Debug, Clone, PartialEq)]
pub struct E11Row {
    /// Actions per cycle the malware performs.
    pub aggressiveness: f64,
    /// Hosts infected.
    pub infected: usize,
    /// Behavioural alerts raised fleet-wide.
    pub alerts: u32,
}

/// Runs E11: sweeps an abstract aggressiveness parameter; each action spends
/// behaviour-budget points on the host AV.
pub fn e11_stealth_tradeoff(seed: u64, lan: usize, levels: &[f64]) -> Vec<E11Row> {
    e11_stealth_tradeoff_t(seed, lan, levels, sweep::threads_from_env())
}

/// E11 with an explicit worker count; each action rate is an independent
/// derived-seed point.
pub fn e11_stealth_tradeoff_t(seed: u64, lan: usize, levels: &[f64], threads: usize) -> Vec<E11Row> {
    sweep::run("e11", seed, levels, threads, |ctx, &level| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.derived_seed()).without_trace().office_lan(lan);
        // Budget: 20 points per daily scan interval. Twelve 2-hour rounds a
        // day means quiet (1 point/round) stays under; loud blows through.
        for i in 0..lan {
            world.av.insert(HostId::new(i), malsim_defense::av::Antivirus::new(20.0));
        }
        sim.schedule_every(SimDuration::from_hours(24), |w: &mut World, _s| {
            for av in w.av.values_mut() {
                av.reset_interval();
            }
            true
        });
        let pki = Pki::install(&mut world);
        pki.arm_stuxnet(&mut world);
        stuxnet::infection::infect_host(&mut world, &mut sim, HostId::new(0), "seed");
        // Model aggressiveness: every infected host performs `level` points
        // of noisy actions per 2-hour spread round (the spread itself is the
        // scheduled spooler loop).
        sim.schedule_every(SimDuration::from_hours(2), move |w: &mut World, _s| {
            let infected: Vec<HostId> = w.campaigns.stuxnet.infections.keys().copied().collect();
            for h in &infected {
                if let Some(av) = w.av.get_mut(h) {
                    av.observe_behaviour("stuxnet", level);
                }
            }
            !infected.is_empty()
        });
        sim.run_until(&mut world, sim.now() + SimDuration::from_days(3));
        let alerts: u32 = world.av.values().map(|a| a.behavioural_alerts()).sum();
        E11Row { aggressiveness: level, infected: world.campaigns.stuxnet.infections.len(), alerts }
    })
}

/// E12 (§V-F): suicide vs forensic recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct E12Row {
    /// Scenario label.
    pub scenario: String,
    /// Mean forensic recovery score across infected hosts.
    pub recovery_score: f64,
    /// C&C server logs remaining.
    pub server_logs_remaining: usize,
}

/// Runs E12: forensic sweep before vs after the fleet-wide SUICIDE.
pub fn e12_suicide_forensics(seed: u64, lan: usize) -> Vec<E12Row> {
    e12_suicide_forensics_t(seed, lan, sweep::threads_from_env())
}

/// E12 with an explicit worker count. A paired ablation: both arms seed from
/// the base seed and differ only in whether SUICIDE is broadcast.
pub fn e12_suicide_forensics_t(seed: u64, lan: usize, threads: usize) -> Vec<E12Row> {
    use malsim_defense::forensics::{analyze_host, Indicator};
    let arms = [("before suicide", false), ("after suicide", true)];
    sweep::run("e12", seed, &arms, threads, |ctx, &(label, kill)| {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.base_seed).office_lan(lan);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 6, 24);
        for i in 0..lan {
            flame::client::infect_host(&mut world, &mut sim, HostId::new(i), "seed");
        }
        sim.run_until(&mut world, sim.now() + SimDuration::from_hours(6));
        if kill {
            flame::suicide::broadcast_kill(&mut world, &mut sim);
            sim.run_until(&mut world, sim.now() + SimDuration::from_hours(3));
        }
        let indicators = vec![Indicator::File(malsim_os::path::WinPath::expand(r"%system%\mssecmgr.ocx"))];
        let scores: Vec<f64> = (0..lan)
            .map(|i| analyze_host(&world.hosts[HostId::new(i)], &indicators).recovery_score())
            .collect();
        let platform = world.campaigns.flame_platform.as_ref().unwrap();
        E12Row {
            scenario: label.to_owned(),
            recovery_score: scores.iter().sum::<f64>() / scores.len().max(1) as f64,
            server_logs_remaining: platform.servers.iter().map(|s| s.logs.len()).sum(),
        }
    })
}

/// E13 (§III-C / fault plane): takedown resilience of the exfiltration
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct E13Row {
    /// Fraction of the 22 C&C servers sinkholed.
    pub sinkhole_fraction: f64,
    /// Servers seized (nested prefix, so higher fractions strictly contain
    /// lower ones).
    pub servers_seized: usize,
    /// Domains seized along with them.
    pub domains_seized: usize,
    /// Fraction of clients that still have a live direct path at the end.
    pub reachable_clients: f64,
    /// Bytes/week uploaded over direct beacons after the takedown.
    pub direct_bytes_week: f64,
    /// Bytes/week recovered through the USB store-and-forward ferry.
    pub ferried_bytes_week: f64,
    /// Direct + ferried.
    pub total_bytes_week: f64,
    /// Documents stranded in the stick's hidden database at the end (only
    /// non-zero when no live path remained to flush them through).
    pub stick_backlog: usize,
}

/// Runs E13: `clients` infected online hosts with document corpora, a USB
/// courier circulating through all of them, and — per sweep point — a
/// [`SinkholeCampaign`](malsim_defense::sinkhole::SinkholeCampaign) seizing
/// the given fraction of the platform's 22 servers (plus every domain
/// resolving to them) through DNS *and* the kernel fault plane.
///
/// The paper's sample server moved ~5.5 GB/week; the sweep shows that
/// figure degrading monotonically on the direct path as servers fall, while
/// the hidden-database ferry recovers blocked clients' documents for every
/// fraction below 1.0 — at full takedown the documents strand on the stick.
pub fn e13_takedown_resilience(seed: u64, clients: usize, days: u64, fractions: &[f64]) -> Vec<E13Row> {
    e13_takedown_resilience_t(seed, clients, days, fractions, sweep::threads_from_env())
}

/// E13 with an explicit worker count.
///
/// A *paired* sweep: every fraction seeds from the base seed, so all points
/// share identical corpora and domain configs and the seized servers form a
/// nested prefix — which is what makes the direct-bytes column monotone by
/// construction rather than statistically.
pub fn e13_takedown_resilience_t(
    seed: u64,
    clients: usize,
    days: u64,
    fractions: &[f64],
    threads: usize,
) -> Vec<E13Row> {
    sweep::run("e13", seed, fractions, threads, |ctx, &frac| e13_point(ctx, frac, clients, days, false).0)
}

/// E13 with the scheduler profiler enabled on every point. Returns the rows
/// (identical to [`e13_takedown_resilience_t`] — profiling never changes sim
/// behavior) plus one [`ProfileSummary`] per grid point, in point order.
/// Roll them up with [`sweep::profile_rollup`].
pub fn e13_takedown_resilience_profiled_t(
    seed: u64,
    clients: usize,
    days: u64,
    fractions: &[f64],
    threads: usize,
) -> (Vec<E13Row>, Vec<ProfileSummary>) {
    sweep::run("e13", seed, fractions, threads, |ctx, &frac| {
        let (row, profile) = e13_point(ctx, frac, clients, days, true);
        (row, profile.expect("profiling was enabled"))
    })
    .into_iter()
    .unzip()
}

/// E13 under full supervision: panic isolation with bounded retries, the
/// per-point watchdog, per-point checkpointing to `opts.ckpt_path`, and
/// (optionally) the runtime invariant checker — all per
/// `opts.supervisor`. With `opts.resume`, completed points are restored from
/// the checkpoint and only missing or poisoned points re-run; the resulting
/// [`report`](checkpoint::SweepOutcomes::report) is byte-identical to an
/// uninterrupted run at any thread count (deterministic limits only).
pub fn e13_takedown_resilience_supervised(
    seed: u64,
    clients: usize,
    days: u64,
    fractions: &[f64],
    opts: &SupervisedSweepOpts<'_>,
) -> Result<checkpoint::SweepOutcomes, checkpoint::CheckpointError> {
    let cfg = checkpoint::CheckpointConfig {
        experiment: "e13",
        base_seed: seed,
        pool: opts.pool,
        supervisor: opts.supervisor,
        path: opts.ckpt_path,
        resume: opts.resume,
        backend: None,
    };
    checkpoint::run_checkpointed(&cfg, fractions, |ctx, &frac| {
        let point_opts = E13PointOptions {
            profile: false,
            watchdog: opts.supervisor.watchdog(),
            check_invariants: opts.supervisor.check_invariants,
        };
        let (row, _, truncation, violations) = e13_point_opt(ctx, frac, clients, days, point_opts);
        sweep::PointRun { result: row.to_json(), truncation, violations }
    })
}

/// How [`e13_takedown_resilience_supervised`] should run its sweep.
#[derive(Debug, Clone, Copy)]
pub struct SupervisedSweepOpts<'a> {
    /// Worker-pool sizing (see [`sweep::PoolConfig`]).
    pub pool: sweep::PoolConfig,
    /// Per-point supervision policy (retries, watchdog, invariants).
    pub supervisor: sweep::SweepSupervisor,
    /// The checkpoint file appended to after every point.
    pub ckpt_path: &'a std::path::Path,
    /// Resume from `ckpt_path` instead of truncating it.
    pub resume: bool,
}

/// Supervision knobs threaded into one E13 point.
#[derive(Debug, Clone, Copy, Default)]
struct E13PointOptions {
    profile: bool,
    watchdog: Watchdog,
    check_invariants: bool,
}

/// One E13 sweep point. Factored out so the plain, profiled, and supervised
/// sweeps run the exact same simulation.
fn e13_point(
    ctx: &sweep::SweepCtx,
    frac: f64,
    clients: usize,
    days: u64,
    profile: bool,
) -> (E13Row, Option<ProfileSummary>) {
    let (row, summary, _, _) =
        e13_point_opt(ctx, frac, clients, days, E13PointOptions { profile, ..Default::default() });
    (row, summary)
}

fn e13_point_opt(
    ctx: &sweep::SweepCtx,
    frac: f64,
    clients: usize,
    days: u64,
    opts: E13PointOptions,
) -> (E13Row, Option<ProfileSummary>, Option<Truncation>, Vec<InvariantViolation>) {
    use malsim_defense::sinkhole::SinkholeCampaign;
    {
        let (mut world, mut sim) = ScenarioBuilder::new(ctx.base_seed).without_trace().office_lan(clients);
        if opts.profile {
            sim.enable_profiling();
        }
        if opts.check_invariants {
            crate::invariants::install(&mut sim, false);
        }
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 22, 80);
        for i in 0..clients {
            let host = HostId::new(i);
            let n_docs = sim.rng.range(3..10usize);
            for d in 0..n_docs {
                let ext = *sim.rng.pick(&["docx", "pdf", "xls", "dwg"]).expect("non-empty");
                let size = sim.rng.range(20_000..2_000_000usize);
                let path = malsim_os::path::WinPath::new(format!(r"C:\Users\user\Documents\file-{d}.{ext}"));
                world.hosts[host]
                    .fs
                    .write(&path, malsim_os::fs::FileData::Bytes(vec![0; size]), sim.now())
                    .expect("valid path");
            }
            flame::client::infect_host(&mut world, &mut sim, host, "seed");
            // One contact so every client grows to its 10-domain config;
            // identical across sweep points because the seizure comes later.
            flame::client::beacon(&mut world, &mut sim, HostId::new(i));
        }
        // Everything uploaded before the takedown is the same for every
        // fraction; measure the campaign from this baseline.
        let direct_baseline = sim.metrics.counter("flame.bytes_uploaded");
        let entry_baseline: u64 = {
            let p = world.campaigns.flame_platform.as_ref().expect("armed");
            p.servers.iter().map(|s| s.total_entry_bytes).sum()
        };

        // The coordinated takedown: a nested prefix of servers, so the sweep
        // is monotone by construction, seized on the defender side (DNS +
        // fault plane) and marked seized on the platform itself.
        let ips: Vec<malsim_net::addr::Ipv4> =
            world.campaigns.flame_platform.as_ref().expect("armed").servers.iter().map(|s| s.ip).collect();
        let k = ((ips.len() as f64) * frac).round() as usize;
        let mut op = SinkholeCampaign::new(malsim_net::addr::Ipv4::new(198, 51, 100, 1));
        let seized_at = sim.now();
        for &ip in ips.iter().take(k) {
            op.seize_server_and_domains(&mut world.dns, &mut sim.faults, ip, seized_at);
        }
        {
            let p = world.campaigns.flame_platform.as_mut().expect("armed");
            for srv in p.servers.iter_mut().take(k) {
                srv.seized = true;
            }
        }

        let usb = world.usb_drives.push(malsim_os::usb::UsbDrive::new("courier"));
        if clients > 0 {
            let route: Vec<HostId> = (0..clients).map(HostId::new).collect();
            activity::schedule_usb_courier(&mut sim, usb, route, SimDuration::from_hours(6));
        }
        activity::schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
        let watched =
            sim.run_until_watched(&mut world, sim.now() + SimDuration::from_days(days), opts.watchdog);

        let platform = world.campaigns.flame_platform.as_ref().expect("armed");
        let direct = sim.metrics.counter("flame.bytes_uploaded") - direct_baseline;
        let total_entry: u64 =
            platform.servers.iter().map(|s| s.total_entry_bytes).sum::<u64>() - entry_baseline;
        let ferried = total_entry.saturating_sub(direct);
        let reachable = world
            .campaigns
            .flame_clients
            .values()
            .filter(|c| platform.reach_server_faulted(&world.dns, &sim.faults, sim.now(), &c.domains).is_ok())
            .count();
        let per_week = 7.0 / days.max(1) as f64;
        let row = E13Row {
            sinkhole_fraction: frac,
            servers_seized: op.seized_servers.len(),
            domains_seized: op.seized_domains.len(),
            reachable_clients: reachable as f64 / clients.max(1) as f64,
            direct_bytes_week: direct as f64 * per_week,
            ferried_bytes_week: ferried as f64 * per_week,
            total_bytes_week: total_entry as f64 * per_week,
            stick_backlog: world.usb_drives[usb].hidden_records().len(),
        };
        let violations = sim.take_violations();
        let profile = sim.finish_profile();
        if let Some(summary) = &profile {
            crate::telemetry::record_profile(summary);
        }
        (row, profile, Truncation::from_stop(watched.reason), violations)
    }
}

// ---------------------------------------------------------------------------
// Canonical JSON emission + the golden-snapshot registry.

impl E1Result {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("infected_hosts", self.infected_hosts.into()),
            ("plc_implanted", self.plc_implanted.into()),
            ("destroyed", self.destroyed.into()),
            ("total_centrifuges", self.total_centrifuges.into()),
            ("safety_tripped", self.safety_tripped.into()),
            ("operator_anomalies", self.operator_anomalies.into()),
            ("days_to_first_destruction", self.days_to_first_destruction.into()),
        ])
    }
}

impl E2Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("patch_rate", self.patch_rate.into()),
            ("infected_fraction", self.infected_fraction.into()),
        ])
    }
}

impl E3Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("configuration", self.configuration.as_str().into()),
            ("armed", self.armed.into()),
            ("destroyed", self.destroyed.into()),
        ])
    }
}

impl E4Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lan_size", self.lan_size.into()),
            ("mitm_active", self.mitm_active.into()),
            ("infected_fraction", self.infected_fraction.into()),
        ])
    }
}

impl E5Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([("policy", self.policy.as_str().into()), ("accepted", self.accepted.into())])
    }
}

impl E6Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("takedown_fraction", self.takedown_fraction.into()),
            ("reachable_many", self.reachable_many.into()),
            ("reachable_single", self.reachable_single.into()),
        ])
    }
}

impl E7Result {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bytes_uploaded", self.bytes_uploaded.into()),
            ("bytes_per_server_week", self.bytes_per_server_week.into()),
            ("entries_retrieved", self.entries_retrieved.into()),
            ("entries_residual", self.entries_residual.into()),
            ("attack_center_bytes", self.attack_center_bytes.into()),
        ])
    }
}

impl E8Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.as_str().into()),
            ("bytes_uploaded", self.bytes_uploaded.into()),
            ("juicy_bytes", self.juicy_bytes.into()),
        ])
    }
}

impl E9Result {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("fleet", self.fleet.into()),
            ("infected", self.infected.into()),
            ("bricked", self.bricked.into()),
            ("reports", self.reports.into()),
            ("hours_to_trigger", self.hours_to_trigger.into()),
        ])
    }
}

/// Canonical JSON for one derived trend profile (E10).
pub fn trend_profile_to_json(p: &malsim_analysis::trends::TrendProfile) -> Json {
    Json::obj([
        ("family", format!("{:?}", p.family).to_lowercase().into()),
        ("infections", p.infections.into()),
        ("zero_day_vectors", p.zero_day_vectors.into()),
        ("targeted", p.targeted.into()),
        ("certified", p.certified.into()),
        ("modular_updates", p.modular_updates.into()),
        ("usb_vector", p.usb_vector.into()),
        ("suicides", p.suicides.into()),
        ("sophistication", p.sophistication.into()),
    ])
}

impl E11Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("aggressiveness", self.aggressiveness.into()),
            ("infected", self.infected.into()),
            ("alerts", self.alerts.into()),
        ])
    }
}

impl E12Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.as_str().into()),
            ("recovery_score", self.recovery_score.into()),
            ("server_logs_remaining", self.server_logs_remaining.into()),
        ])
    }
}

impl E13Row {
    /// Canonical JSON headline row.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sinkhole_fraction", self.sinkhole_fraction.into()),
            ("servers_seized", self.servers_seized.into()),
            ("domains_seized", self.domains_seized.into()),
            ("reachable_clients", self.reachable_clients.into()),
            ("direct_bytes_week", self.direct_bytes_week.into()),
            ("ferried_bytes_week", self.ferried_bytes_week.into()),
            ("total_bytes_week", self.total_bytes_week.into()),
            ("stick_backlog", self.stick_backlog.into()),
        ])
    }
}

fn rows_json<T>(rows: &[T], to_json: impl Fn(&T) -> Json) -> Json {
    Json::Arr(rows.iter().map(to_json).collect())
}

/// One experiment's golden-snapshot entry: its stable name and a runner that
/// regenerates the headline rows at the documented EXPERIMENTS.md scale.
pub struct GoldenSpec {
    /// Snapshot name; the golden lives at `tests/golden/<name>.json`.
    pub name: &'static str,
    runner: fn(usize) -> Json,
}

impl GoldenSpec {
    /// Regenerates the experiment's canonical JSON on up to `threads`
    /// workers. Output is identical at every thread count.
    pub fn run(&self, threads: usize) -> Json {
        (self.runner)(threads)
    }
}

fn golden_e1(_threads: usize) -> Json {
    e1_stuxnet_end_to_end(42, 30).to_json()
}
fn golden_e2(threads: usize) -> Json {
    rows_json(&e2_zero_day_ablation_t(42, 50, 5, grids::E2_PATCH_RATES, threads), E2Row::to_json)
}
fn golden_e3(threads: usize) -> Json {
    rows_json(&e3_plc_targeting_t(42, 10, threads), E3Row::to_json)
}
fn golden_e4(threads: usize) -> Json {
    rows_json(&e4_wpad_mitm_t(42, grids::E4_LAN_SIZES, 72, threads), E4Row::to_json)
}
fn golden_e5(_threads: usize) -> Json {
    rows_json(&e5_cert_forgery(42), E5Row::to_json)
}
fn golden_e6(threads: usize) -> Json {
    rows_json(&e6_candc_resilience_t(42, 30, grids::E6_TAKEDOWNS, threads), E6Row::to_json)
}
fn golden_e7(_threads: usize) -> Json {
    e7_candc_dataflow(42, 20, 4, 7).to_json()
}
fn golden_e8(threads: usize) -> Json {
    rows_json(&e8_exfil_ablation_t(42, 6, 4, threads), E8Row::to_json)
}
fn golden_e9(_threads: usize) -> Json {
    e9_shamoon_wipe(815, 10, 49, 5).to_json()
}
fn golden_e10(_threads: usize) -> Json {
    rows_json(&e10_trend_matrix(5), trend_profile_to_json)
}
fn golden_e11(threads: usize) -> Json {
    rows_json(&e11_stealth_tradeoff_t(5, 20, grids::E11_ACTION_RATES, threads), E11Row::to_json)
}
fn golden_e12(threads: usize) -> Json {
    rows_json(&e12_suicide_forensics_t(5, 8, threads), E12Row::to_json)
}
fn golden_e13(threads: usize) -> Json {
    rows_json(&e13_takedown_resilience_t(11, 10, 7, grids::E13_SINKHOLE_FRACTIONS, threads), E13Row::to_json)
}
fn golden_perfetto(_threads: usize) -> Json {
    // A small E1 run exported as a Chrome trace: pins the export schema and
    // the span plane's byte-determinism (worker count can't matter — each
    // sim is single-threaded — but CI checks this at two counts anyway).
    let run = e1_stuxnet_end_to_end_run(7, 4, false);
    crate::export::chrome_trace(&run.sim.trace, &run.sim.spans)
}

/// The full regression registry: every experiment E1–E13 at the scale its
/// EXPERIMENTS.md section documents, in index order, plus the Perfetto
/// export-schema snapshot.
pub fn golden_specs() -> Vec<GoldenSpec> {
    vec![
        GoldenSpec { name: "e1_stuxnet_end_to_end", runner: golden_e1 },
        GoldenSpec { name: "e2_zero_day_ablation", runner: golden_e2 },
        GoldenSpec { name: "e3_plc_targeting", runner: golden_e3 },
        GoldenSpec { name: "e4_wpad_mitm", runner: golden_e4 },
        GoldenSpec { name: "e5_cert_forgery", runner: golden_e5 },
        GoldenSpec { name: "e6_candc_resilience", runner: golden_e6 },
        GoldenSpec { name: "e7_candc_dataflow", runner: golden_e7 },
        GoldenSpec { name: "e8_exfil_ablation", runner: golden_e8 },
        GoldenSpec { name: "e9_shamoon_wipe", runner: golden_e9 },
        GoldenSpec { name: "e10_trend_matrix", runner: golden_e10 },
        GoldenSpec { name: "e11_stealth_tradeoff", runner: golden_e11 },
        GoldenSpec { name: "e12_suicide_forensics", runner: golden_e12 },
        GoldenSpec { name: "e13_takedown_resilience", runner: golden_e13 },
        GoldenSpec { name: "perfetto_e1_seed7", runner: golden_perfetto },
    ]
}
