//! Canonical JSON for experiment headline rows.
//!
//! Golden snapshots need a serialization that is byte-stable across runs,
//! platforms, and thread counts. The workspace's vendored `serde` is a
//! no-op marker stub (the container builds offline), so this module carries
//! its own tiny JSON value, a canonical pretty-printer, a strict parser for
//! the checked-in goldens, and a per-field differ that renders a readable
//! drift report.
//!
//! Canonical form: two-space indent, object keys in insertion order (struct
//! field order — deterministic), floats in Rust's shortest round-trip form
//! with a forced `.0` on integral values so floats never collapse into
//! integers, and a trailing newline. NaN and infinities are rejected:
//! headline numbers are always finite.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for canonical
    /// output (it follows struct field order, which is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the canonical form (see module docs).
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders a single-line compact form (no whitespace between tokens)
    /// with the same number and escape rules as the canonical writer. Used
    /// for JSONL streams where each record must occupy exactly one line.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::U64(_) | Json::I64(_) | Json::F64(_) | Json::Str(_) => {
                self.write(out, 0);
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => out.push_str(&canonical_f64(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    fn render_leaf(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    /// Looks up `key` in an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Canonical float text: Rust's shortest round-trip `Display`, with `.0`
/// appended to integral values so the token stays float-typed.
///
/// # Panics
///
/// Panics on NaN or infinity — headline numbers must be finite.
fn canonical_f64(x: f64) -> String {
    assert!(x.is_finite(), "golden reports must contain only finite numbers, got {x}");
    let s = format!("{x}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset the canonical writer emits, plus
/// arbitrary whitespace). Returns a readable error on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>().map(Json::F64).map_err(|e| format!("bad number '{text}': {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Json::I64).map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<u64>().map(Json::U64).map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

/// Structural diff: one line per drifted field, as
/// `at <path>: expected <golden>, got <live>`.
///
/// Arrays report length changes and recurse element-wise; objects report
/// missing and unexpected keys by name. An empty result means the values are
/// canonically identical.
pub fn diff(expected: &Json, actual: &Json) -> Vec<String> {
    let mut out = Vec::new();
    diff_at(expected, actual, "$", &mut out);
    out
}

fn diff_at(expected: &Json, actual: &Json, path: &str, out: &mut Vec<String>) {
    match (expected, actual) {
        (Json::Obj(e), Json::Obj(a)) => {
            for (k, ev) in e {
                match a.iter().find(|(ak, _)| ak == k) {
                    Some((_, av)) => diff_at(ev, av, &format!("{path}.{k}"), out),
                    None => out.push(format!("at {path}.{k}: expected {}, got <missing>", ev.render_leaf())),
                }
            }
            for (k, av) in a {
                if !e.iter().any(|(ek, _)| ek == k) {
                    out.push(format!("at {path}.{k}: expected <absent>, got {}", av.render_leaf()));
                }
            }
        }
        (Json::Arr(e), Json::Arr(a)) => {
            if e.len() != a.len() {
                out.push(format!("at {path}: expected {} rows, got {}", e.len(), a.len()));
            }
            for (i, (ev, av)) in e.iter().zip(a.iter()).enumerate() {
                diff_at(ev, av, &format!("{path}[{i}]"), out);
            }
        }
        (e, a) => {
            if e != a {
                out.push(format!("at {path}: expected {}, got {}", e.render_leaf(), a.render_leaf()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj([
            ("name", "e2".into()),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("patch_rate", 0.25.into()), ("infected", Json::U64(39))]),
                    Json::obj([("patch_rate", 1.0.into()), ("infected", Json::U64(0))]),
                ]),
            ),
            ("ok", true.into()),
            ("note", Json::Null),
        ])
    }

    #[test]
    fn canonical_text_round_trips_through_the_parser() {
        let v = sample();
        let text = v.to_canonical_string();
        let back = parse(&text).expect("canonical text parses");
        assert_eq!(back, v);
        assert_eq!(back.to_canonical_string(), text, "serialize∘parse is the identity");
    }

    #[test]
    fn floats_stay_floats_and_ints_stay_ints() {
        assert_eq!(Json::F64(1.0).to_canonical_string(), "1.0\n");
        assert_eq!(Json::F64(267.6).to_canonical_string(), "267.6\n");
        assert_eq!(Json::U64(1).to_canonical_string(), "1\n");
        assert_eq!(Json::I64(-3).to_canonical_string(), "-3\n");
        assert_eq!(parse("1.0").unwrap(), Json::F64(1.0));
        assert_eq!(parse("1").unwrap(), Json::U64(1));
        assert_eq!(parse("-3").unwrap(), Json::I64(-3));
    }

    #[test]
    fn compact_form_is_one_line_and_parses_back() {
        let v = sample();
        let text = v.to_compact_string();
        assert!(!text.contains('\n'), "compact form must be a single line: {text:?}");
        assert!(!text.contains(": "), "no space after colons: {text:?}");
        assert_eq!(parse(&text).unwrap(), v, "compact∘parse is the identity");
        assert_eq!(Json::Arr(vec![]).to_compact_string(), "[]");
        assert_eq!(Json::obj([]).to_compact_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_floats_are_rejected() {
        let _ = Json::F64(f64::NAN).to_canonical_string();
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f — ünïcode".into());
        assert_eq!(parse(&v.to_canonical_string()).unwrap(), v);
    }

    #[test]
    fn diff_reports_each_drifted_field_with_its_path() {
        let golden = sample();
        let mut live = sample();
        // Perturb one leaf deep in the rows and drop a key.
        if let Json::Obj(pairs) = &mut live {
            if let Json::Arr(rows) = &mut pairs[1].1 {
                if let Json::Obj(row) = &mut rows[1] {
                    row[1].1 = Json::U64(7);
                }
            }
            pairs.retain(|(k, _)| k != "ok");
        }
        let report = diff(&golden, &live);
        assert_eq!(report.len(), 2, "{report:?}");
        assert!(report.iter().any(|l| l == "at $.rows[1].infected: expected 0, got 7"), "{report:?}");
        assert!(report.iter().any(|l| l.contains("$.ok") && l.contains("<missing>")), "{report:?}");
        assert!(diff(&golden, &golden).is_empty());
    }

    #[test]
    fn diff_reports_row_count_changes() {
        let a = Json::Arr(vec![Json::U64(1), Json::U64(2)]);
        let b = Json::Arr(vec![Json::U64(1)]);
        let report = diff(&a, &b);
        assert_eq!(report, vec!["at $: expected 2 rows, got 1".to_owned()]);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinities_are_rejected_like_nan() {
        let _ = Json::F64(f64::INFINITY).to_compact_string();
    }

    #[test]
    fn negative_zero_round_trips_canonically() {
        let v = Json::F64(-0.0);
        let text = v.to_canonical_string();
        assert_eq!(text, "-0.0\n", "sign of zero is preserved");
        let back = parse(&text).unwrap();
        assert_eq!(back.to_canonical_string(), text, "serialize∘parse keeps the sign");
        match back {
            Json::F64(x) => assert!(x == 0.0 && x.is_sign_negative()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn extreme_integers_round_trip_exactly() {
        for v in [Json::U64(u64::MAX), Json::U64(u64::MAX - 1), Json::I64(i64::MIN), Json::I64(-1)] {
            let text = v.to_canonical_string();
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
        // u64::MAX is not representable as f64; it must stay an integer
        // token, never degrade through a float path.
        assert_eq!(Json::U64(u64::MAX).to_canonical_string(), format!("{}\n", u64::MAX));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = sample();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("e2"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::U64(7).get("name"), None, "non-objects have no keys");
        let rows = v.get("rows").unwrap();
        match rows {
            Json::Arr(items) => {
                assert_eq!(items[0].get("infected").and_then(Json::as_u64), Some(39));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(Json::Str("7".into()).as_u64(), None);
        assert_eq!(Json::U64(7).as_str(), None);
    }

    #[test]
    fn checkpoint_style_records_round_trip_compactly() {
        // The shape the checkpoint writer emits: one compact object per line.
        let rec = Json::obj([
            ("experiment", "e13".into()),
            ("base_seed", Json::U64(42)),
            ("point", Json::U64(3)),
            ("status", "completed".into()),
            ("hash", "deadbeefdeadbeef".into()),
            ("row", Json::obj([("takedown_fraction", 0.5.into()), ("exfil_mb", 12.25.into())])),
            ("panic_msg", Json::Null),
            ("violations", Json::Arr(vec![])),
        ]);
        let line = rec.to_compact_string();
        assert!(!line.contains('\n'));
        assert_eq!(parse(&line).unwrap(), rec);
        assert_eq!(parse(&line).unwrap().to_compact_string(), line);
    }
}
