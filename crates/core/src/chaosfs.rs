//! Deterministic storage chaos plane: injectable I/O faults behind a
//! [`StorageBackend`] seam, plus the transient/fatal classification and
//! bounded-backoff retry policy the durability layers use to survive them.
//!
//! The paper's campaigns are stories of hostile storage — wiped disks, torn
//! MBRs, half-written payloads — yet a simulator's own durability substrate
//! (checkpoints, job journals) is usually tested only against the happy path
//! plus `SIGKILL`. This module closes that gap the same way
//! [`kernel::fault::FaultPlane`](malsim_kernel::fault) does for the network:
//! a typed, seeded, reproducible fault schedule that is **zero-cost when
//! empty** — production code talks to [`RealFs`], a passthrough whose methods
//! compile down to the `std::fs` calls they replace.
//!
//! ## The backend seam
//!
//! [`StorageBackend`] covers exactly the five operations the checkpoint
//! writer and journal loader perform: `create`, `open_append`,
//! `read_to_string`, `rename`, and (on the returned [`StorageFile`])
//! `append`/`flush`/`fsync`. [`ChaosFs`] wraps the real filesystem and
//! injects typed [`IoFaultKind`]s from a seeded per-operation schedule:
//! fsync failures, short and torn writes, `ENOSPC` once a byte budget is
//! exhausted, `EINTR`, and transient open/read errors.
//!
//! ## Power-cut semantics
//!
//! `ChaosFs` additionally keeps a *shadow durability model* per file: bytes
//! become durable only when an `fsync` is acknowledged; everything newer is
//! volatile. [`ChaosFs::crash_image`] reconstructs the byte image a file
//! would hold had the process died at a given operation index — durable
//! prefix plus a deterministic torn fragment of the then-volatile tail.
//! This is *stricter* than a real `SIGKILL` drill (which leaves the page
//! cache intact): it simulates a power cut, so a writer that claims
//! durability without a completed fsync is caught, not forgiven.
//!
//! ## Classification and retry
//!
//! [`classify`] splits [`std::io::ErrorKind`] into [`FaultClass::Transient`]
//! (`EINTR`, `EWOULDBLOCK`, timeouts — worth retrying) and
//! [`FaultClass::Fatal`] (`ENOSPC`, permission errors, everything else).
//! [`IoRetryPolicy`] is the host-clock twin of
//! `net::retry::RetryPolicy`: bounded exponential backoff with a cap.
//! Fatal faults never retry; the durability layers degrade instead —
//! quarantining the journal with a typed [`StorageFault`] while the grid
//! completes (see [`checkpoint`](crate::checkpoint) and
//! [`jobs`](crate::jobs)).

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::telemetry;

// ---------------------------------------------------------------------------
// The backend seam
// ---------------------------------------------------------------------------

/// The storage operations the durability layers perform, behind one seam so
/// a chaos plane can sit between them and the real filesystem.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Creates (or truncates) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Opens `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Reads the whole of `path` as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Renames `from` over `to` (atomic on POSIX filesystems).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// An open file handle from a [`StorageBackend`].
pub trait StorageFile: fmt::Debug + Send {
    /// Appends bytes; like [`std::io::Write::write`] it may write fewer than
    /// `buf.len()` bytes and report the count.
    fn append(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flushes userspace buffers.
    fn flush(&mut self) -> io::Result<()>;
    /// Forces written data to stable storage (`fdatasync`).
    fn fsync(&mut self) -> io::Result<()>;
}

/// The passthrough backend: every method is the `std::fs` call it replaces.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

/// A `'static` instance of the passthrough backend, so call sites can take
/// `&REAL_FS` as the default `&dyn StorageBackend` without allocating.
pub static REAL_FS: RealFs = RealFs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl StorageFile for RealFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.0, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(&mut self.0)
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl StorageBackend for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(RealFile(std::fs::File::options().create(true).append(true).open(path)?)))
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
}

// ---------------------------------------------------------------------------
// Fault taxonomy, classification, retry policy
// ---------------------------------------------------------------------------

/// The typed faults [`ChaosFs`] can inject, mirroring
/// [`kernel::fault::FaultKind`](malsim_kernel::fault::FaultKind)'s idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// `fdatasync` fails; the volatile bytes stay volatile.
    FsyncFail,
    /// A write accepts only a prefix and reports the short count (legal
    /// under the `write(2)` contract; callers must loop).
    ShortWrite,
    /// A write lands a prefix *and* errors, leaving torn bytes behind.
    TornWrite,
    /// The byte budget is exhausted: `ENOSPC` on every further write.
    DiskFull,
    /// `EINTR`: the call wrote nothing and should simply be retried.
    Eintr,
    /// A transient open failure (anti-virus scan, NFS hiccup).
    OpenFail,
    /// A transient read failure.
    ReadFail,
}

impl IoFaultKind {
    /// Every kind, in label-table order (see
    /// [`telemetry`](crate::telemetry)'s `chaos_faults_injected{kind}`).
    pub const ALL: [IoFaultKind; 7] = [
        IoFaultKind::FsyncFail,
        IoFaultKind::ShortWrite,
        IoFaultKind::TornWrite,
        IoFaultKind::DiskFull,
        IoFaultKind::Eintr,
        IoFaultKind::OpenFail,
        IoFaultKind::ReadFail,
    ];

    /// Stable lower-case label used in telemetry and attestation reports.
    pub fn label(&self) -> &'static str {
        match self {
            IoFaultKind::FsyncFail => "fsync_fail",
            IoFaultKind::ShortWrite => "short_write",
            IoFaultKind::TornWrite => "torn_write",
            IoFaultKind::DiskFull => "disk_full",
            IoFaultKind::Eintr => "eintr",
            IoFaultKind::OpenFail => "open_fail",
            IoFaultKind::ReadFail => "read_fail",
        }
    }
}

/// Whether an I/O error is worth retrying or the layer should degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retry with bounded backoff; the fault is expected to clear.
    Transient,
    /// Do not retry; degrade gracefully with a typed [`StorageFault`].
    Fatal,
}

/// Classifies a [`std::io::ErrorKind`] for the storage retry loop.
///
/// `EINTR`, `EWOULDBLOCK`, and timeouts are transient; everything else —
/// `ENOSPC`, permission errors, unexpected EOF, unknown kinds — is fatal.
/// Fsync failures are *always* treated as fatal by the writer regardless of
/// kind: after a failed fsync the kernel page cache state is unknowable, so
/// retrying would claim durability the disk never promised.
pub fn classify(kind: io::ErrorKind) -> FaultClass {
    match kind {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            FaultClass::Transient
        }
        _ => FaultClass::Fatal,
    }
}

/// Bounded exponential backoff for transient storage faults — the host-clock
/// twin of `net::retry::RetryPolicy` (same shape: base, cap, attempt bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRetryPolicy {
    /// First backoff, in host milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in host milliseconds.
    pub cap_ms: u64,
    /// Retries after the initial attempt.
    pub max_retries: u32,
}

impl Default for IoRetryPolicy {
    fn default() -> IoRetryPolicy {
        IoRetryPolicy { base_ms: 1, cap_ms: 16, max_retries: 4 }
    }
}

impl IoRetryPolicy {
    /// The backoff before retry `attempt` (0-based): `base · 2^attempt`,
    /// saturating, capped at `cap_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// Whether retry `attempt` (0-based) is within budget.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }
}

/// The operation a [`StorageFault`] occurred on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    /// Creating or truncating the file.
    Create,
    /// Opening for append.
    Open,
    /// Appending bytes.
    Append,
    /// Flushing userspace buffers.
    Flush,
    /// Forcing data to stable storage.
    Fsync,
    /// Reading the file back.
    Read,
    /// Renaming over the original.
    Rename,
}

impl StorageOp {
    /// Stable lower-case label used in reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            StorageOp::Create => "create",
            StorageOp::Open => "open",
            StorageOp::Append => "append",
            StorageOp::Flush => "flush",
            StorageOp::Fsync => "fsync",
            StorageOp::Read => "read",
            StorageOp::Rename => "rename",
        }
    }
}

/// A typed fatal storage fault: the reason a journal was quarantined or a
/// resume degraded. Carried on outcomes instead of flowing into reports, so
/// storage chaos never perturbs report bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFault {
    /// The operation that failed.
    pub op: StorageOp,
    /// The typed error kind (no string parsing required downstream).
    pub kind: io::ErrorKind,
    /// The rendered error, for humans.
    pub detail: String,
    /// Transient retries burned before giving up.
    pub retries: u32,
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage fault on {}: {} ({:?}, {} retr{} burned)",
            self.op.label(),
            self.detail,
            self.kind,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" }
        )
    }
}

// ---------------------------------------------------------------------------
// The seeded fault schedule
// ---------------------------------------------------------------------------

/// A reproducible fault schedule: per-operation injection rates in permille,
/// decided by a splitmix64 draw keyed on `(seed, operation index)` — the
/// same schedule replays identically for the same seed and op sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The schedule's seed; every injection decision derives from it.
    pub seed: u64,
    /// Fsync failures per 1000 fsync calls.
    pub fsync_fail_permille: u16,
    /// Short writes per 1000 append calls.
    pub short_write_permille: u16,
    /// Torn writes per 1000 append calls.
    pub torn_write_permille: u16,
    /// `EINTR` per 1000 append calls.
    pub eintr_permille: u16,
    /// Transient open failures per 1000 open/create calls.
    pub open_fail_permille: u16,
    /// Transient read failures per 1000 read calls.
    pub read_fail_permille: u16,
    /// Total bytes the store accepts before every further write fails with
    /// `ENOSPC`; `None` is unbounded.
    pub disk_capacity: Option<u64>,
}

impl FaultSchedule {
    /// A schedule that injects nothing (the plane armed but quiet).
    pub fn quiet(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            fsync_fail_permille: 0,
            short_write_permille: 0,
            torn_write_permille: 0,
            eintr_permille: 0,
            open_fail_permille: 0,
            read_fail_permille: 0,
            disk_capacity: None,
        }
    }

    /// The soak mix: a moderate dose of every transient kind plus occasional
    /// fsync failures. Disk capacity stays unbounded; soaks that want
    /// `ENOSPC` set [`FaultSchedule::disk_capacity`] explicitly.
    pub fn mixed(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            fsync_fail_permille: 6,
            short_write_permille: 60,
            torn_write_permille: 40,
            eintr_permille: 60,
            open_fail_permille: 30,
            read_fail_permille: 30,
            disk_capacity: None,
        }
    }
}

/// splitmix64: the statelessly-keyed draw behind every injection decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultSchedule {
    /// The raw draw for operation `op` (also used to size short/torn
    /// prefixes, so one op's whole fault is a function of `(seed, op)`).
    fn draw(&self, op: u64) -> u64 {
        splitmix64(self.seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Walks the cumulative permille thresholds for a write op.
    fn write_fault(&self, op: u64) -> Option<IoFaultKind> {
        let roll = (self.draw(op) >> 16) % 1000;
        let mut edge = u64::from(self.eintr_permille);
        if roll < edge {
            return Some(IoFaultKind::Eintr);
        }
        edge += u64::from(self.short_write_permille);
        if roll < edge {
            return Some(IoFaultKind::ShortWrite);
        }
        edge += u64::from(self.torn_write_permille);
        if roll < edge {
            return Some(IoFaultKind::TornWrite);
        }
        None
    }

    fn fsync_fault(&self, op: u64) -> bool {
        (self.draw(op) >> 16) % 1000 < u64::from(self.fsync_fail_permille)
    }

    fn open_fault(&self, op: u64) -> bool {
        (self.draw(op) >> 16) % 1000 < u64::from(self.open_fail_permille)
    }

    fn read_fault(&self, op: u64) -> bool {
        (self.draw(op) >> 16) % 1000 < u64::from(self.read_fail_permille)
    }
}

// ---------------------------------------------------------------------------
// ChaosFs
// ---------------------------------------------------------------------------

/// Shadow durability state for one path: how many of its bytes a power cut
/// would preserve, tracked against the append-only real file.
#[derive(Debug, Default)]
struct Shadow {
    /// Bytes in the real file (durable + volatile). Append-only.
    total_len: u64,
    /// Bytes guaranteed to survive a crash (acknowledged fsyncs).
    durable_len: u64,
    /// `(op, durable_len)` at each acknowledged fsync.
    sync_marks: Vec<(u64, u64)>,
    /// `(op, total_len)` after each append.
    write_marks: Vec<(u64, u64)>,
}

impl Shadow {
    fn len_at(marks: &[(u64, u64)], at_op: u64) -> u64 {
        marks.iter().take_while(|&&(op, _)| op <= at_op).last().map_or(0, |&(_, len)| len)
    }
}

#[derive(Debug)]
struct ChaosState {
    schedule: FaultSchedule,
    /// Global operation counter; every backend/file call takes one tick.
    op: u64,
    /// Bytes accepted so far, against [`FaultSchedule::disk_capacity`].
    bytes_accepted: u64,
    injected: BTreeMap<&'static str, u64>,
    files: BTreeMap<PathBuf, Shadow>,
}

impl ChaosState {
    fn inject(&mut self, kind: IoFaultKind) {
        *self.injected.entry(kind.label()).or_insert(0) += 1;
        telemetry::chaos_fault_injected(kind);
    }
}

/// Aggregate chaos statistics for attestation reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosStats {
    /// Total storage operations observed.
    pub ops: u64,
    /// Faults injected, by [`IoFaultKind::label`].
    pub injected: BTreeMap<&'static str, u64>,
}

/// The seeded chaos backend: wraps the real filesystem, injects typed
/// faults from a [`FaultSchedule`], and maintains the shadow durability
/// model behind [`ChaosFs::crash_image`]. Cheap to clone (shared state), so
/// the harness can keep a handle while the writer owns another.
#[derive(Debug, Clone)]
pub struct ChaosFs {
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosFs {
    /// A chaos backend with the given schedule.
    pub fn new(schedule: FaultSchedule) -> ChaosFs {
        ChaosFs {
            state: Arc::new(Mutex::new(ChaosState {
                schedule,
                op: 0,
                bytes_accepted: 0,
                injected: BTreeMap::new(),
                files: BTreeMap::new(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().expect("chaos state lock never held across user code")
    }

    /// Operations observed so far (the crash-op domain for
    /// [`ChaosFs::crash_image`]).
    pub fn ops(&self) -> u64 {
        self.lock().op
    }

    /// A snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        let st = self.lock();
        ChaosStats { ops: st.op, injected: st.injected.clone() }
    }

    /// Bytes of `path` guaranteed durable had the process died right after
    /// global operation `at_op` (power-cut semantics: volatile bytes lost).
    pub fn durable_len_at(&self, path: &Path, at_op: u64) -> u64 {
        self.lock().files.get(path).map_or(0, |s| Shadow::len_at(&s.sync_marks, at_op))
    }

    /// Reconstructs the byte image `path` would hold after a power cut at
    /// global operation `at_op`: the durable prefix plus, with `torn_tail`,
    /// a deterministic fragment of the bytes that were written but not yet
    /// synced — the half-flushed page a real cut can leave behind.
    pub fn crash_image(&self, path: &Path, at_op: u64, torn_tail: bool) -> io::Result<Vec<u8>> {
        let (durable, written, seed) = {
            let st = self.lock();
            let shadow = st.files.get(path).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no shadow for {}", path.display()))
            })?;
            (
                Shadow::len_at(&shadow.sync_marks, at_op),
                Shadow::len_at(&shadow.write_marks, at_op),
                st.schedule.seed,
            )
        };
        let bytes = std::fs::read(path)?;
        let durable = (durable as usize).min(bytes.len());
        let written = (written as usize).min(bytes.len()).max(durable);
        let mut image = bytes[..durable].to_vec();
        if torn_tail && written > durable {
            let torn = (splitmix64(seed ^ at_op.rotate_left(32)) as usize) % (written - durable + 1);
            image.extend_from_slice(&bytes[durable..durable + torn]);
        }
        Ok(image)
    }
}

#[derive(Debug)]
struct ChaosFile {
    fs: ChaosFs,
    path: PathBuf,
    file: std::fs::File,
}

impl StorageFile for ChaosFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.fs.lock();
        st.op += 1;
        let op = st.op;
        if let Some(cap) = st.schedule.disk_capacity {
            if st.bytes_accepted.saturating_add(buf.len() as u64) > cap {
                st.inject(IoFaultKind::DiskFull);
                return Err(io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC: disk full"));
            }
        }
        let fault = st.schedule.write_fault(op);
        let accepted = match fault {
            Some(IoFaultKind::Eintr) => {
                st.inject(IoFaultKind::Eintr);
                return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
            }
            // Short and torn writes land a deterministic strict prefix.
            Some(kind @ (IoFaultKind::ShortWrite | IoFaultKind::TornWrite)) if buf.len() > 1 => {
                st.inject(kind);
                1 + (st.schedule.draw(op) as usize) % (buf.len() - 1)
            }
            _ => buf.len(),
        };
        io::Write::write_all(&mut self.file, &buf[..accepted])?;
        st.bytes_accepted += accepted as u64;
        let shadow = st.files.entry(self.path.clone()).or_default();
        shadow.total_len += accepted as u64;
        let total = shadow.total_len;
        shadow.write_marks.push((op, total));
        if matches!(fault, Some(IoFaultKind::TornWrite)) && buf.len() > 1 {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "injected torn write (transient)"));
        }
        Ok(accepted)
    }

    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(&mut self.file)
    }

    fn fsync(&mut self) -> io::Result<()> {
        let mut st = self.fs.lock();
        st.op += 1;
        let op = st.op;
        if st.schedule.fsync_fault(op) {
            st.inject(IoFaultKind::FsyncFail);
            // The volatile bytes stay volatile: a later crash drops them.
            return Err(io::Error::other("injected fsync failure (EIO)"));
        }
        self.file.sync_data()?;
        let shadow = st.files.entry(self.path.clone()).or_default();
        shadow.durable_len = shadow.total_len;
        let durable = shadow.durable_len;
        shadow.sync_marks.push((op, durable));
        Ok(())
    }
}

impl StorageBackend for ChaosFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        {
            let mut st = self.lock();
            st.op += 1;
            let op = st.op;
            if st.schedule.open_fault(op) {
                st.inject(IoFaultKind::OpenFail);
                return Err(io::Error::new(io::ErrorKind::TimedOut, "injected transient create failure"));
            }
            // Truncation resets the shadow: nothing is durable any more.
            st.files.insert(path.to_owned(), Shadow::default());
        }
        let file = std::fs::File::create(path)?;
        Ok(Box::new(ChaosFile { fs: self.clone(), path: path.to_owned(), file }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        {
            let mut st = self.lock();
            st.op += 1;
            let op = st.op;
            if st.schedule.open_fault(op) {
                st.inject(IoFaultKind::OpenFail);
                return Err(io::Error::new(io::ErrorKind::TimedOut, "injected transient open failure"));
            }
            // Pre-existing bytes (a resumed journal) are durable by fiat:
            // they survived whatever ended the previous process.
            let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let shadow = st.files.entry(path.to_owned()).or_default();
            if shadow.total_len < len {
                shadow.total_len = len;
                shadow.durable_len = len;
            }
        }
        let file = std::fs::File::options().create(true).append(true).open(path)?;
        Ok(Box::new(ChaosFile { fs: self.clone(), path: path.to_owned(), file }))
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let mut st = self.lock();
        st.op += 1;
        let op = st.op;
        if st.schedule.read_fault(op) {
            st.inject(IoFaultKind::ReadFail);
            return Err(io::Error::new(io::ErrorKind::TimedOut, "injected transient read failure"));
        }
        drop(st);
        std::fs::read_to_string(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        st.op += 1;
        std::fs::rename(from, to)?;
        if let Some(shadow) = st.files.remove(from) {
            st.files.insert(to.to_owned(), shadow);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("malsim-chaosfs-{tag}-{}.dat", std::process::id()))
    }

    #[test]
    fn classification_splits_transient_from_fatal() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            assert_eq!(classify(kind), FaultClass::Transient, "{kind:?}");
        }
        for kind in [
            io::ErrorKind::StorageFull,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::NotFound,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::Other,
        ] {
            assert_eq!(classify(kind), FaultClass::Fatal, "{kind:?}");
        }
    }

    #[test]
    fn retry_policy_backs_off_exponentially_to_the_cap() {
        let p = IoRetryPolicy { base_ms: 2, cap_ms: 10, max_retries: 3 };
        assert_eq!(p.backoff_ms(0), 2);
        assert_eq!(p.backoff_ms(1), 4);
        assert_eq!(p.backoff_ms(2), 8);
        assert_eq!(p.backoff_ms(3), 10, "capped");
        assert_eq!(p.backoff_ms(63), 10, "saturating shift stays capped");
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
    }

    #[test]
    fn schedules_replay_identically_for_the_same_seed() {
        let s = FaultSchedule::mixed(42);
        let a: Vec<Option<IoFaultKind>> = (1..200).map(|op| s.write_fault(op)).collect();
        let b: Vec<Option<IoFaultKind>> = (1..200).map(|op| s.write_fault(op)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let other = FaultSchedule::mixed(43);
        let c: Vec<Option<IoFaultKind>> = (1..200).map(|op| other.write_fault(op)).collect();
        assert_ne!(a, c, "different seeds diverge");
        assert!(a.iter().any(Option::is_some), "the mixed schedule injects something in 200 ops");
    }

    #[test]
    fn quiet_schedule_injects_nothing() {
        let fs = ChaosFs::new(FaultSchedule::quiet(7));
        let path = temp("quiet");
        let mut f = fs.create(&path).unwrap();
        for _ in 0..50 {
            assert_eq!(f.append(b"hello world\n").unwrap(), 12);
            f.fsync().unwrap();
        }
        assert!(fs.stats().injected.is_empty());
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 50);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_image_drops_unsynced_bytes() {
        let fs = ChaosFs::new(FaultSchedule::quiet(11));
        let path = temp("crash");
        let mut f = fs.create(&path).unwrap();
        f.append(b"durable-line\n").unwrap();
        f.fsync().unwrap();
        let synced_at = fs.ops();
        f.append(b"volatile-line\n").unwrap();
        // No fsync: a power cut now loses the second line.
        let image = fs.crash_image(&path, fs.ops(), false).unwrap();
        assert_eq!(image, b"durable-line\n");
        // A cut even earlier preserves nothing past the first sync.
        assert_eq!(fs.durable_len_at(&path, synced_at), 13);
        assert_eq!(fs.durable_len_at(&path, synced_at - 2), 0, "before the fsync nothing is durable");
        // The real file still holds everything (the process did not die).
        assert_eq!(std::fs::read(&path).unwrap().len(), 27);
        // A torn tail never exceeds the written-but-unsynced range.
        let torn = fs.crash_image(&path, fs.ops(), true).unwrap();
        assert!(torn.len() >= 13 && torn.len() <= 27, "torn image length {}", torn.len());
        assert!(torn.starts_with(b"durable-line\n"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn disk_capacity_turns_into_enospc() {
        let schedule = FaultSchedule { disk_capacity: Some(20), ..FaultSchedule::quiet(3) };
        let fs = ChaosFs::new(schedule);
        let path = temp("enospc");
        let mut f = fs.create(&path).unwrap();
        assert_eq!(f.append(b"0123456789").unwrap(), 10);
        assert_eq!(f.append(b"0123456789").unwrap(), 10);
        let err = f.append(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(fs.stats().injected.get("disk_full"), Some(&1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_and_torn_writes_land_strict_prefixes() {
        let schedule = FaultSchedule { short_write_permille: 1000, ..FaultSchedule::quiet(5) };
        let fs = ChaosFs::new(schedule);
        let path = temp("short");
        let mut f = fs.create(&path).unwrap();
        let n = f.append(b"a-reasonably-long-line\n").unwrap();
        assert!((1..23).contains(&n), "short write accepted {n} of 23");
        let torn_schedule = FaultSchedule { torn_write_permille: 1000, ..FaultSchedule::quiet(5) };
        let fs2 = ChaosFs::new(torn_schedule);
        let path2 = temp("torn");
        let mut f2 = fs2.create(&path2).unwrap();
        let err = f2.append(b"a-reasonably-long-line\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "torn writes are retryable");
        let left = std::fs::read(&path2).unwrap();
        assert!(!left.is_empty() && left.len() < 23, "torn bytes left behind: {}", left.len());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn storage_fault_renders_its_fields() {
        let fault = StorageFault {
            op: StorageOp::Fsync,
            kind: io::ErrorKind::Other,
            detail: "injected fsync failure (EIO)".into(),
            retries: 1,
        };
        let msg = fault.to_string();
        assert!(msg.contains("fsync"), "{msg}");
        assert!(msg.contains("1 retry burned"), "{msg}");
    }
}
