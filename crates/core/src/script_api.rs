//! Capability-gated Flua access to the simulated world.
//!
//! A *scenario script* is a Flua program that drives campaign steps the way
//! Flame's modules drive a client — except it runs against the **world**
//! (hosts, DNS, USB, exfil, detonation) instead of one victim. Because such
//! a script wields far more power than a per-host module, every
//! world-touching host function is gated behind a [`Capability`] that the
//! script must declare up front in its manifest header:
//!
//! ```text
//! #! name: courier-sweep
//! #! grant: fs_scan exfil
//! #! fuel: 50000
//! #! memory: 65536
//! let docs = scan_files(".docx")
//! for d in docs do exfil(d) end
//! ```
//!
//! Calling a gated function without its grant is a typed
//! [`RunScriptError::CapabilityDenied`] — never a panic, never a silent
//! no-op. Every fault (compile error, out-of-fuel, out-of-memory, capability
//! denial, host error) surfaces as a [`ScriptFaultInfo`] carrying the
//! script's manifest name and the fuel it had burned, which plugs straight
//! into [`sweep::supervised_point_fallible`] and
//! [`checkpoint::run_checkpointed_fallible`](crate::checkpoint::run_checkpointed_fallible):
//! a hostile script degrades its grid point to `ScriptFault` and the rest of
//! the sweep completes.
//!
//! Scripts observe a **snapshot** of the world and request changes through
//! an effect queue, applied only after the VM returns successfully — a
//! faulting script therefore leaves the world byte-identical to not having
//! run at all.

use std::cell::RefCell;
use std::rc::Rc;

use malsim_kernel::trace::TraceCategory;
use malsim_malware::world::{World, WorldSim};
use malsim_script::cap::{Capability, CapabilitySet, GatedHost};
use malsim_script::compiler::{compile, Chunk};
use malsim_script::error::{CompileScriptError, RunScriptError, SourcePos};
use malsim_script::value::Value;
use malsim_script::vm::{FnHost, Vm, VmLimits};

use crate::error::Error;
use crate::report::Json;
use crate::sweep::ScriptFaultInfo;

/// Declared identity and resource envelope of a scenario script, parsed from
/// the `#!` directive lines at the top of its source.
///
/// Recognised directives (each on its own line, before any code):
///
/// | directive | meaning | default |
/// |---|---|---|
/// | `#! name: <id>` | stable script id in faults/records | `"unnamed.flua"` |
/// | `#! grant: <caps>` | space-separated capability labels | none |
/// | `#! fuel: <n>` | VM fuel budget | [`VmLimits`] default |
/// | `#! memory: <bytes>` | VM heap budget | [`VmLimits`] default |
///
/// `grant:` lines accumulate. An unknown directive or capability label is a
/// [`CompileScriptError`] at the offending line — manifest damage is a
/// compile fault like any other.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptManifest {
    /// Stable script identity carried into faults and checkpoint records.
    pub name: String,
    /// Capabilities the script is allowed to exercise.
    pub granted: CapabilitySet,
    /// VM limits (fuel/memory overridden by directives).
    pub limits: VmLimits,
}

impl Default for ScriptManifest {
    fn default() -> Self {
        ScriptManifest {
            name: "unnamed.flua".to_owned(),
            granted: CapabilitySet::none(),
            limits: VmLimits::default(),
        }
    }
}

impl ScriptManifest {
    /// Parses the `#!` header of `source`. Directive lines may be preceded
    /// by blank lines or plain `#` comments; the first code line ends the
    /// header.
    pub fn parse(source: &str) -> Result<ScriptManifest, CompileScriptError> {
        let mut manifest = ScriptManifest::default();
        for (idx, line) in source.lines().enumerate() {
            let at = |message: String| CompileScriptError {
                pos: SourcePos { line: (idx + 1) as u32, col: 1 },
                message,
            };
            let trimmed = line.trim();
            let Some(directive) = trimmed.strip_prefix("#!") else {
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue; // blank lines and ordinary comments don't end the header
                }
                break; // first code line: header over
            };
            let Some((key, value)) = directive.split_once(':') else {
                return Err(at(format!("manifest directive needs 'key: value', got '{directive}'")));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => {
                    if value.is_empty() {
                        return Err(at("manifest name must not be empty".to_owned()));
                    }
                    manifest.name = value.to_owned();
                }
                "grant" => {
                    let caps = CapabilitySet::parse(value)
                        .map_err(|word| at(format!("unknown capability '{word}' in grant directive")))?;
                    for cap in caps.iter() {
                        manifest.granted = manifest.granted.grant(cap);
                    }
                }
                "fuel" => {
                    manifest.limits.fuel =
                        value.parse().map_err(|_| at(format!("fuel must be an integer, got '{value}'")))?;
                }
                "memory" => {
                    manifest.limits.max_memory =
                        value.parse().map_err(|_| at(format!("memory must be an integer, got '{value}'")))?;
                }
                other => return Err(at(format!("unknown manifest directive '{other}'"))),
            }
        }
        Ok(manifest)
    }
}

/// A change a scenario script asked for. Queued during the run and applied
/// to the world only if the VM returns cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptEffect {
    /// Stage a payload file onto the courier USB plane.
    UsbWrite {
        /// Payload path staged.
        path: String,
    },
    /// Queue data for exfiltration.
    Exfil {
        /// The exfiltrated path (`host:path`).
        path: String,
    },
    /// Destroy a host (the Shamoon-style wiper step).
    Detonate {
        /// Victim host name.
        host: String,
    },
    /// A free-form log line into the scenario trace.
    Log {
        /// Message text.
        message: String,
    },
}

/// What a successful scenario-script run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptRunReport {
    /// The script's manifest name.
    pub script_id: String,
    /// The script's return value.
    pub value: Value,
    /// Fuel consumed.
    pub fuel_used: u64,
    /// Heap bytes charged against the memory budget.
    pub mem_allocated: usize,
    /// Effects applied to the world, in request order.
    pub effects: Vec<ScriptEffect>,
}

impl ScriptRunReport {
    /// A compact report row for sweeps (deterministic field order).
    pub fn row(&self) -> Json {
        let detonated = self.effects.iter().filter(|e| matches!(e, ScriptEffect::Detonate { .. })).count();
        let exfiltrated = self.effects.iter().filter(|e| matches!(e, ScriptEffect::Exfil { .. })).count();
        Json::obj([
            ("script_id", self.script_id.as_str().into()),
            ("fuel_used", Json::U64(self.fuel_used)),
            ("mem_allocated", Json::U64(self.mem_allocated as u64)),
            ("effects", Json::U64(self.effects.len() as u64)),
            ("detonated", Json::U64(detonated as u64)),
            ("exfiltrated", Json::U64(exfiltrated as u64)),
        ])
    }
}

/// A compiled scenario script: manifest + bytecode, ready to run against a
/// world any number of times.
#[derive(Debug, Clone)]
pub struct ScriptScenario {
    /// The parsed manifest header.
    pub manifest: ScriptManifest,
    chunk: Chunk,
}

impl ScriptScenario {
    /// Parses the manifest and compiles the body. Both failure modes are
    /// [`Error::Compile`].
    pub fn compile(source: &str) -> Result<ScriptScenario, Error> {
        let manifest = ScriptManifest::parse(source)?;
        let chunk = compile(source)?;
        Ok(ScriptScenario { manifest, chunk })
    }

    /// Runs the script against a snapshot of `world`. On success the queued
    /// effects are applied to `world`/`sim` and reported; on any fault the
    /// world is untouched and the typed fault is returned, ready for
    /// [`sweep::supervised_point_fallible`].
    pub fn run(&self, world: &mut World, sim: &mut WorldSim) -> Result<ScriptRunReport, ScriptFaultInfo> {
        let (mut host, effects) = world_host(world, &self.manifest.granted);
        let mut vm = Vm::new();
        let outcome = vm.run(&self.chunk, &mut host, self.manifest.limits);
        drop(host); // releases the closures' clones of the effect sink
        match outcome {
            Ok(out) => {
                let effects = Rc::try_unwrap(effects).expect("host dropped").into_inner();
                apply_effects(&self.manifest.name, &effects, world, sim);
                Ok(ScriptRunReport {
                    script_id: self.manifest.name.clone(),
                    value: out.value,
                    fuel_used: out.fuel_used,
                    mem_allocated: out.mem_allocated,
                    effects,
                })
            }
            Err(e) => Err(ScriptFaultInfo {
                script_id: self.manifest.name.clone(),
                error: Error::from(e).to_string(),
                fuel_used: vm.last_fuel_used(),
            }),
        }
    }
}

/// Compile-and-run in one call, folding compile errors into the same
/// [`ScriptFaultInfo`] channel (with `fuel_used: 0`) — the natural point
/// function for hostile-script sweeps.
pub fn run_source(
    source: &str,
    world: &mut World,
    sim: &mut WorldSim,
) -> Result<ScriptRunReport, ScriptFaultInfo> {
    let script_id = ScriptManifest::parse(source).map(|m| m.name).unwrap_or_else(|_| "unnamed.flua".into());
    let scenario = ScriptScenario::compile(source).map_err(|e| ScriptFaultInfo {
        script_id: script_id.clone(),
        error: e.to_string(),
        fuel_used: 0,
    })?;
    scenario.run(world, sim)
}

/// Builds the gated world host: read-only snapshot closures plus the effect
/// queue, wrapped so that every world-touching function demands its
/// capability.
///
/// | function | capability | behaviour |
/// |---|---|---|
/// | `hosts()` | — | list of running host names |
/// | `host_count()` | — | total host count |
/// | `log(msg)` | — | queue a scenario-trace line |
/// | `scan_files(ext)` | `fs_scan` | `host:path` list matching the extension |
/// | `net_dial(domain)` | `net_dial` | whether the domain currently resolves |
/// | `usb_write(path)` | `usb_write` | queue a payload staging effect |
/// | `exfil(path)` | `exfil` | queue an exfiltration effect |
/// | `detonate(host)` | `detonate` | queue a host-destruction effect |
fn world_host(
    world: &World,
    granted: &CapabilitySet,
) -> (GatedHost<FnHost<'static>>, Rc<RefCell<Vec<ScriptEffect>>>) {
    let effects: Rc<RefCell<Vec<ScriptEffect>>> = Rc::new(RefCell::new(Vec::new()));
    let mut host = FnHost::new();

    // Snapshot the world up front: scripts never hold borrows into it.
    let host_names: Rc<Vec<String>> = Rc::new(world.hosts.iter().map(|(_, h)| h.name().to_owned()).collect());
    let running: Rc<Vec<String>> = Rc::new(
        world.hosts.iter().filter(|(_, h)| h.is_running()).map(|(_, h)| h.name().to_owned()).collect(),
    );
    let files: Rc<Vec<String>> = Rc::new(
        world
            .hosts
            .iter()
            .flat_map(|(_, h)| {
                let name = h.name().to_owned();
                h.fs.iter().map(move |(p, _)| format!("{name}:{}", p.as_str())).collect::<Vec<_>>()
            })
            .collect(),
    );
    let live_domains: Rc<Vec<String>> = Rc::new(
        world.dns.domains().filter(|d| world.dns.resolve(d).is_some()).map(|d| d.to_string()).collect(),
    );

    {
        let running = Rc::clone(&running);
        host.register("hosts", move |_args| Ok(Value::list(running.iter().map(Value::str).collect())));
    }
    {
        let host_names = Rc::clone(&host_names);
        host.register("host_count", move |_args| Ok(Value::Int(host_names.len() as i64)));
    }
    {
        let effects = Rc::clone(&effects);
        host.register("log", move |args| {
            let message = expect_str(args, "log")?;
            effects.borrow_mut().push(ScriptEffect::Log { message });
            Ok(Value::Nil)
        });
    }
    {
        let files = Rc::clone(&files);
        host.register("scan_files", move |args| {
            let ext = expect_str(args, "scan_files")?;
            Ok(Value::list(files.iter().filter(|p| p.ends_with(&ext)).map(Value::str).collect()))
        });
    }
    {
        let live_domains = Rc::clone(&live_domains);
        host.register("net_dial", move |args| {
            let domain = expect_str(args, "net_dial")?;
            Ok(Value::Bool(live_domains.iter().any(|d| d == &domain)))
        });
    }
    {
        let effects = Rc::clone(&effects);
        host.register("usb_write", move |args| {
            let path = expect_str(args, "usb_write")?;
            effects.borrow_mut().push(ScriptEffect::UsbWrite { path });
            Ok(Value::Nil)
        });
    }
    {
        let effects = Rc::clone(&effects);
        host.register("exfil", move |args| {
            let path = expect_str(args, "exfil")?;
            effects.borrow_mut().push(ScriptEffect::Exfil { path });
            Ok(Value::Nil)
        });
    }
    {
        let effects = Rc::clone(&effects);
        host.register("detonate", move |args| {
            let target = expect_str(args, "detonate")?;
            effects.borrow_mut().push(ScriptEffect::Detonate { host: target });
            Ok(Value::Nil)
        });
    }

    let gated = GatedHost::new(host, *granted)
        .require("scan_files", Capability::FsScan)
        .require("net_dial", Capability::NetDial)
        .require("usb_write", Capability::UsbWrite)
        .require("exfil", Capability::Exfil)
        .require("detonate", Capability::Detonate);
    (gated, effects)
}

fn apply_effects(script_id: &str, effects: &[ScriptEffect], world: &mut World, sim: &mut WorldSim) {
    let actor = format!("script:{script_id}");
    for effect in effects {
        match effect {
            ScriptEffect::UsbWrite { path } => {
                sim.record(TraceCategory::Os, actor.clone(), format!("usb payload staged: {path}"));
            }
            ScriptEffect::Exfil { path } => {
                sim.record(TraceCategory::Exfiltration, actor.clone(), format!("exfiltrated {path}"));
            }
            ScriptEffect::Detonate { host } => {
                let victim = world.hosts.iter().find(|(_, h)| h.name() == host).map(|(id, _)| id);
                match victim {
                    Some(id) => {
                        world.hosts[id].brick();
                        sim.record(TraceCategory::Destruction, actor.clone(), format!("detonated {host}"));
                    }
                    None => {
                        sim.record(
                            TraceCategory::Scenario,
                            actor.clone(),
                            format!("detonate target '{host}' not found"),
                        );
                    }
                }
            }
            ScriptEffect::Log { message } => {
                sim.record(TraceCategory::Scenario, actor.clone(), message.clone());
            }
        }
    }
}

fn expect_str(args: &[Value], fname: &str) -> Result<String, RunScriptError> {
    args.first()
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| RunScriptError::Host(format!("{fname}(string)")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    fn small_world() -> (World, WorldSim) {
        ScenarioBuilder::new(7).office_lan(4)
    }

    #[test]
    fn manifest_parses_directives_and_defaults() {
        let m = ScriptManifest::parse("#! name: probe\n#! grant: fs_scan exfil\n#! fuel: 1234\nreturn 1")
            .unwrap();
        assert_eq!(m.name, "probe");
        assert!(m.granted.allows(Capability::FsScan));
        assert!(m.granted.allows(Capability::Exfil));
        assert!(!m.granted.allows(Capability::Detonate));
        assert_eq!(m.limits.fuel, 1234);
        assert_eq!(m.limits.max_memory, VmLimits::default().max_memory);

        let m = ScriptManifest::parse("return 1").unwrap();
        assert_eq!(m, ScriptManifest::default());
    }

    #[test]
    fn manifest_header_ends_at_first_code_line() {
        // A `#!` after code is an ordinary comment, not a directive.
        let m = ScriptManifest::parse("# prose\n\nlet x = 1\n#! grant: detonate\nreturn x").unwrap();
        assert!(m.granted.is_empty());
    }

    #[test]
    fn manifest_errors_are_typed_and_positioned() {
        let err = ScriptManifest::parse("#! grant: teleport\nreturn 1").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("teleport"), "{err}");

        let err = ScriptManifest::parse("#! name: a\n#! budget: 9\nreturn 1").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(err.message.contains("unknown manifest directive"), "{err}");

        let err = ScriptManifest::parse("#! fuel: lots\nreturn 1").unwrap_err();
        assert!(err.message.contains("integer"), "{err}");
    }

    #[test]
    fn granted_scan_and_exfil_produce_effects_and_traces() {
        let (mut world, mut sim) = small_world();
        let script = "#! name: leak\n#! grant: fs_scan exfil\n\
                      let hits = scan_files(\".ini\")\nfor h in hits do exfil(h) end\nreturn len(hits)";
        let report = run_source(script, &mut world, &mut sim).unwrap();
        assert_eq!(report.script_id, "leak");
        assert!(!report.effects.is_empty(), "fresh profiles carry desktop.ini files");
        assert!(report.effects.iter().all(|e| matches!(e, ScriptEffect::Exfil { .. })));
        assert_eq!(report.value, Value::Int(report.effects.len() as i64));
        assert!(report.fuel_used > 0);
        let row = report.row();
        assert_eq!(row.get("exfiltrated").and_then(Json::as_u64), Some(report.effects.len() as u64));
    }

    #[test]
    fn ungated_calls_fail_typed_and_leave_the_world_untouched() {
        let (mut world, mut sim) = small_world();
        let script = "#! name: rogue\nlog(\"recon\")\ndetonate(hosts()[0])";
        let before: Vec<bool> = world.hosts.iter().map(|(_, h)| h.is_running()).collect();
        let fault = run_source(script, &mut world, &mut sim).unwrap_err();
        assert_eq!(fault.script_id, "rogue");
        assert!(fault.error.contains("capability denied"), "{}", fault.error);
        assert!(fault.error.contains("detonate"), "{}", fault.error);
        assert!(fault.fuel_used > 0, "the script ran until the denial");
        let after: Vec<bool> = world.hosts.iter().map(|(_, h)| h.is_running()).collect();
        assert_eq!(before, after, "faulting scripts leave no effects");
    }

    #[test]
    fn granted_detonate_bricks_the_host() {
        let (mut world, mut sim) = small_world();
        let script = "#! name: wiper\n#! grant: detonate\ndetonate(hosts()[0])\nreturn host_count()";
        let report = run_source(script, &mut world, &mut sim).unwrap();
        assert_eq!(report.value, Value::Int(4));
        assert_eq!(world.bricked_count(), 1);
    }

    #[test]
    fn compile_faults_fold_into_the_fault_channel() {
        let (mut world, mut sim) = small_world();
        let fault = run_source("#! name: broken\nlet = = =", &mut world, &mut sim).unwrap_err();
        assert_eq!(fault.script_id, "broken");
        assert_eq!(fault.fuel_used, 0);
        assert!(fault.error.starts_with("script: compile error"), "{}", fault.error);
    }

    #[test]
    fn fuel_and_memory_budgets_fault_with_the_manifest_name() {
        let (mut world, mut sim) = small_world();
        let fault =
            run_source("#! name: spin\n#! fuel: 500\nwhile true do end", &mut world, &mut sim).unwrap_err();
        assert_eq!(fault.script_id, "spin");
        assert!(fault.error.contains("fuel"), "{}", fault.error);
        assert!(fault.fuel_used >= 500, "budget was fully burned");

        let bomb = "#! name: bomb\n#! memory: 4096\nlet s = \"x\"\nwhile true do s = s .. s end";
        let fault = run_source(bomb, &mut world, &mut sim).unwrap_err();
        assert_eq!(fault.script_id, "bomb");
        assert!(fault.error.contains("memory budget"), "{}", fault.error);
    }

    #[test]
    fn reruns_of_one_compiled_scenario_are_deterministic() {
        let script = "#! name: census\n#! grant: fs_scan\nreturn len(scan_files(\".dll\"))";
        let scenario = ScriptScenario::compile(script).unwrap();
        let (mut w1, mut s1) = small_world();
        let (mut w2, mut s2) = small_world();
        let a = scenario.run(&mut w1, &mut s1).unwrap();
        let b = scenario.run(&mut w2, &mut s2).unwrap();
        assert_eq!(a, b);
    }
}
