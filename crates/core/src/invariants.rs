//! World-level invariant laws for the malware simulation.
//!
//! The kernel's [`InvariantChecker`](malsim_kernel::invariant::InvariantChecker)
//! knows the kernel laws (time monotonicity, span causality, fault-window
//! well-formedness) but nothing about hosts or campaigns. This module
//! registers the domain laws on top:
//!
//! - **infected-hosts-exist** — every host id appearing in any campaign's
//!   infection map refers to a host that actually exists in the world's
//!   arena;
//! - **plant-engineering-station-exists** — every plant's engineering
//!   station is a real host.
//!
//! Arm checking per-scenario with
//! [`ScenarioBuilder::check_invariants`](crate::scenario::ScenarioBuilder::check_invariants),
//! per-sim with [`install`], or process-wide by setting the
//! `MALSIM_CHECK_INVARIANTS` environment variable (any value except `0`),
//! which the scenario builder honours for every simulation it constructs —
//! including the golden-regression suite.

use malsim_kernel::invariant::LawCx;
use malsim_malware::world::{World, WorldSim};

/// Whether `MALSIM_CHECK_INVARIANTS` asks for process-wide invariant
/// checking (set and not `"0"`).
pub fn check_from_env() -> bool {
    std::env::var("MALSIM_CHECK_INVARIANTS").map(|v| v.trim() != "0").unwrap_or(false)
}

/// Arms the invariant checker on `sim` and registers the malware world laws.
///
/// `strict` panics on the first violation (right for regression gates);
/// non-strict accumulates violations for the caller to drain with
/// [`Sim::take_violations`](malsim_kernel::sched::Sim::take_violations) and
/// surface in reports.
pub fn install(sim: &mut WorldSim, strict: bool) {
    sim.enable_invariants(strict);
    sim.add_invariant("infected-hosts-exist", |world: &World, _cx: &LawCx<'_>| {
        let campaigns = &world.campaigns;
        let all_infected = campaigns
            .stuxnet
            .infections
            .keys()
            .chain(campaigns.flame_clients.keys())
            .chain(campaigns.shamoon.infections.keys())
            .chain(campaigns.duqu.implants.keys())
            .chain(campaigns.gauss.infections.keys());
        for &host in all_infected {
            if world.hosts.get(host).is_none() {
                return Err(format!("campaign state references non-existent host {host:?}"));
            }
        }
        Ok(())
    });
    sim.add_invariant("plant-engineering-station-exists", |world: &World, _cx: &LawCx<'_>| {
        for (id, plant) in world.plants.iter() {
            if world.hosts.get(plant.engineering_station).is_none() {
                return Err(format!(
                    "plant {id:?} ({}) names non-existent engineering station {:?}",
                    plant.name, plant.engineering_station
                ));
            }
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use malsim_kernel::time::SimDuration;
    use malsim_malware::common::InfectionRecord;
    use malsim_os::host::HostId;

    #[test]
    fn clean_scenario_has_no_violations() {
        let (mut world, mut sim) = ScenarioBuilder::new(5).office_lan(4);
        install(&mut sim, false);
        sim.schedule_in(SimDuration::from_hours(1), |_w: &mut World, _| {});
        sim.run(&mut world);
        assert!(sim.take_violations().is_empty());
    }

    #[test]
    fn dangling_infection_record_is_flagged() {
        let (mut world, mut sim) = ScenarioBuilder::new(5).office_lan(2);
        install(&mut sim, false);
        sim.schedule_in(SimDuration::from_hours(1), |w: &mut World, sim| {
            // Corrupt the campaign state: an infection on a host that was
            // never spawned.
            w.campaigns.stuxnet.infections.insert(
                HostId::new(99),
                InfectionRecord { infected_at: sim.now(), vector: "usb-lnk".into() },
            );
        });
        sim.run(&mut world);
        let violations = sim.take_violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].law, "infected-hosts-exist");
        assert!(violations[0].detail.contains("99"), "{}", violations[0].detail);
    }

    #[test]
    fn env_flag_parses() {
        // Pure parse-logic check; the env var itself is only set by CI runs,
        // never by tests (process-global state).
        assert!(!check_from_env() || std::env::var("MALSIM_CHECK_INVARIANTS").is_ok());
    }
}
