//! Scenario construction: topologies, fleets, and patch policies.

use malsim_kernel::span::SpanLog;
use malsim_kernel::time::SimTime;
use malsim_kernel::trace::TraceLog;
use malsim_malware::world::{World, WorldSim};
use malsim_net::topology::ZoneId;
use malsim_os::host::{Host, HostId, HostRole, WindowsVersion};
use malsim_os::patches::Bulletin;

/// Options shared by the scenario presets (C-BUILDER).
///
/// # Examples
///
/// ```
/// use malsim::scenario::ScenarioBuilder;
///
/// let (world, sim) = ScenarioBuilder::new(7).office_lan(10);
/// assert_eq!(world.hosts.len(), 10);
/// assert!(sim.trace.is_enabled());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    start: SimTime,
    trace: bool,
    patch_rate: f64,
    advisory_applied: bool,
    check_invariants: bool,
}

impl ScenarioBuilder {
    /// Creates a builder with the given rng seed. Defaults: start mid-2010,
    /// tracing on, fully unpatched fleet.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            start: SimTime::from_utc(2010, 6, 1, 0, 0, 0),
            trace: true,
            patch_rate: 0.0,
            advisory_applied: false,
            check_invariants: false,
        }
    }

    /// Sets the simulation start time.
    pub fn start(&mut self, start: SimTime) -> &mut Self {
        self.start = start;
        self
    }

    /// Disables trace retention (for large benchmark sweeps).
    pub fn without_trace(&mut self) -> &mut Self {
        self.trace = false;
        self
    }

    /// Fraction of hosts that have the MS10-xxx bulletins applied.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1]`.
    pub fn patch_rate(&mut self, rate: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&rate), "patch rate must be in [0,1]");
        self.patch_rate = rate;
        self
    }

    /// Applies advisory 2718704 fleet-wide (kills the Flame update forgery).
    pub fn with_advisory(&mut self) -> &mut Self {
        self.advisory_applied = true;
        self
    }

    /// Arms the strict runtime invariant checker on the built simulation
    /// (see [`crate::invariants::install`]): the first violated law panics
    /// with a rendered report.
    ///
    /// Also armed process-wide by the `MALSIM_CHECK_INVARIANTS` environment
    /// variable, so existing harnesses (goldens, examples) can be swept
    /// without code changes.
    pub fn check_invariants(&mut self) -> &mut Self {
        self.check_invariants = true;
        self
    }

    /// Compiles a Flua scenario script (manifest header + body) for running
    /// against worlds built by this builder. Scripts are sandboxed: see
    /// [`crate::script_api`] for the capability gate and fault semantics.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Compile`] for a malformed manifest or body.
    ///
    /// # Examples
    ///
    /// ```
    /// use malsim::scenario::ScenarioBuilder;
    ///
    /// let builder = ScenarioBuilder::new(7);
    /// let script = builder
    ///     .script_scenario("#! name: census\n#! grant: fs_scan\nreturn len(scan_files(\".dll\"))")
    ///     .unwrap();
    /// let (mut world, mut sim) = builder.office_lan(3);
    /// let report = script.run(&mut world, &mut sim).unwrap();
    /// assert_eq!(report.script_id, "census");
    /// ```
    pub fn script_scenario(&self, source: &str) -> Result<crate::script_api::ScriptScenario, crate::Error> {
        crate::script_api::ScriptScenario::compile(source)
    }

    fn sim(&self) -> WorldSim {
        let mut sim = WorldSim::new(self.start, self.seed);
        if !self.trace {
            sim.trace = TraceLog::disabled();
            // Span ids keep advancing while disabled, so disabled-sweep runs
            // stay id-compatible with traced runs of the same seed.
            sim.spans = SpanLog::disabled();
        }
        if self.check_invariants || crate::invariants::check_from_env() {
            crate::invariants::install(&mut sim, true);
        }
        sim
    }

    fn spawn_host(
        &self,
        world: &mut World,
        sim: &mut WorldSim,
        name: String,
        zone: ZoneId,
        role: HostRole,
    ) -> HostId {
        let version = *sim
            .rng
            .pick(&[WindowsVersion::Xp, WindowsVersion::Seven, WindowsVersion::Vista])
            .expect("non-empty");
        let mut host = Host::new(name, version, role, sim.now());
        if sim.rng.chance(self.patch_rate) {
            for b in [Bulletin::Ms10_046, Bulletin::Ms10_061, Bulletin::Ms10_073, Bulletin::Ms10_092] {
                host.patches.apply(b);
            }
        }
        if self.advisory_applied {
            host.patches.apply(Bulletin::Advisory2718704);
        }
        let id = world.hosts.push(host);
        world.topology.place(id, zone);
        id
    }

    /// One internet-connected LAN of `n` workstations.
    pub fn office_lan(&self, n: usize) -> (World, WorldSim) {
        let mut sim = self.sim();
        let mut world = World::new();
        let zone = world.topology.add_zone("office", true);
        for i in 0..n {
            self.spawn_host(&mut world, &mut sim, format!("ws-{i:04}"), zone, HostRole::Workstation);
        }
        (world, sim)
    }

    /// A multi-zone enterprise: `zones` internet-connected LANs of
    /// `hosts_per_zone` workstations each, plus one server per zone. Zones
    /// model sites/departments; cross-zone spread requires a bridge (e.g. a
    /// courier or a multi-homed infection), which keeps the zone structure
    /// meaningful.
    pub fn enterprise(&self, zones: usize, hosts_per_zone: usize) -> (World, WorldSim) {
        let mut sim = self.sim();
        let mut world = World::new();
        for z in 0..zones {
            let zone = world.topology.add_zone(format!("site-{z:03}"), true);
            self.spawn_host(&mut world, &mut sim, format!("srv-{z:03}"), zone, HostRole::Server);
            for i in 0..hosts_per_zone {
                self.spawn_host(
                    &mut world,
                    &mut sim,
                    format!("ws-{z:03}-{i:04}"),
                    zone,
                    HostRole::Workstation,
                );
            }
        }
        (world, sim)
    }

    /// The Natanz-like site: an office LAN with internet plus an air-gapped
    /// plant network whose engineering station programs a targeted PLC, and
    /// a USB stick that couriers between them. Returns
    /// `(world, sim, plant, office_hosts, engineering_station)`.
    pub fn natanz_site(
        &self,
        office_hosts: usize,
        centrifuges: usize,
    ) -> (World, WorldSim, malsim_malware::world::PlantId, Vec<HostId>, HostId) {
        use malsim_scada::cascade::Cascade;
        use malsim_scada::drive::{DriveVendor, FrequencyDrive};
        use malsim_scada::hmi::{OperatorView, SafetySystem, TelemetryTap};
        use malsim_scada::plc::{CommProcessor, Plc};
        use malsim_scada::step7::Step7;

        let mut sim = self.sim();
        let mut world = World::new();
        let office = world.topology.add_zone("contractor-office", true);
        let mut office_ids = Vec::new();
        for i in 0..office_hosts {
            office_ids.push(self.spawn_host(
                &mut world,
                &mut sim,
                format!("office-{i:03}"),
                office,
                HostRole::Workstation,
            ));
        }
        let plant_zone = world.topology.add_zone("enrichment-plant", false);
        let station = self.spawn_host(
            &mut world,
            &mut sim,
            "eng-station".to_owned(),
            plant_zone,
            HostRole::EngineeringStation,
        );
        world.hosts[station].config.internet_access = false;

        let mut plc = Plc::new(CommProcessor::Profibus);
        for i in 0..centrifuges {
            let vendor = if i % 2 == 0 { DriveVendor::FararoPaya } else { DriveVendor::Vacon };
            plc.attach_drive(FrequencyDrive::new(vendor, 1_064.0));
        }
        let cascade = Cascade::for_plc(&plc);
        let mut step7 = Step7::new();
        step7.add_project("cascade-a26");
        let plant = world.plants.push(malsim_malware::world::Plant {
            name: "natanz-a26".to_owned(),
            plc,
            cascade,
            tap: TelemetryTap::new(),
            safety: SafetySystem::new(),
            operator: OperatorView::new(),
            engineering_station: station,
            step7,
        });
        (world, sim, plant, office_ids, station)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_lan_builds() {
        let (world, sim) = ScenarioBuilder::new(1).office_lan(25);
        assert_eq!(world.hosts.len(), 25);
        assert_eq!(world.topology.zone_count(), 1);
        assert!(world.topology.has_internet(HostId::new(0)));
        assert_eq!(sim.now(), SimTime::from_utc(2010, 6, 1, 0, 0, 0));
    }

    #[test]
    fn patch_rate_is_respected_statistically() {
        let (world, _) = ScenarioBuilder::new(3).patch_rate(0.8).office_lan(500);
        let patched = world.hosts.iter().filter(|(_, h)| !h.is_vulnerable_to(Bulletin::Ms10_046)).count();
        assert!((340..460).contains(&patched), "got {patched}/500 at rate 0.8");
    }

    #[test]
    fn enterprise_builds_zones() {
        let (world, _) = ScenarioBuilder::new(1).enterprise(4, 10);
        assert_eq!(world.topology.zone_count(), 4);
        assert_eq!(world.hosts.len(), 4 * 11);
        // Hosts in different zones are not peers.
        let a = HostId::new(0);
        let other_zone_host = HostId::new(12);
        assert!(!world.topology.same_zone(a, other_zone_host));
    }

    #[test]
    fn natanz_site_builds_targeted_plant() {
        let (world, _, plant, office, station) = ScenarioBuilder::new(1).natanz_site(5, 8);
        assert_eq!(office.len(), 5);
        let p = &world.plants[plant];
        assert!(p.plc.is_stuxnet_target_configuration());
        assert_eq!(p.cascade.len(), 8);
        assert!(!world.topology.has_internet(station));
        assert_eq!(p.engineering_station, station);
    }

    #[test]
    fn without_trace_disables_log() {
        let (_, sim) = ScenarioBuilder::new(1).without_trace().office_lan(1);
        assert!(!sim.trace.is_enabled());
        assert!(!sim.spans.is_enabled());
    }

    #[test]
    fn check_invariants_arms_the_checker() {
        let (_, sim) = ScenarioBuilder::new(1).check_invariants().office_lan(1);
        assert!(sim.is_checking_invariants());
        let (_, sim) = ScenarioBuilder::new(1).office_lan(1);
        assert!(!sim.is_checking_invariants() || crate::invariants::check_from_env());
    }

    #[test]
    #[should_panic(expected = "patch rate")]
    fn invalid_patch_rate_panics() {
        let _ = ScenarioBuilder::new(1).patch_rate(1.5);
    }

    #[test]
    fn determinism_same_seed_same_fleet() {
        let (w1, _) = ScenarioBuilder::new(9).patch_rate(0.5).office_lan(50);
        let (w2, _) = ScenarioBuilder::new(9).patch_rate(0.5).office_lan(50);
        for i in 0..50 {
            let id = HostId::new(i);
            assert_eq!(w1.hosts[id].version(), w2.hosts[id].version());
            assert_eq!(
                w1.hosts[id].is_vulnerable_to(Bulletin::Ms10_046),
                w2.hosts[id].is_vulnerable_to(Bulletin::Ms10_046)
            );
        }
    }
}
