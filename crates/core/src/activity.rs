//! User- and operator-activity processes that drive the vectors.
//!
//! Malware in this model never acts in a vacuum: LNK infections need a user
//! opening a USB stick, the WPAD spread needs clients checking for updates,
//! and the Flame operators need to triage summaries and retrieve stolen
//! data. These helpers schedule those recurring behaviours.

use malsim_kernel::time::SimDuration;
use malsim_malware::flame;
use malsim_malware::flame::candc::{Package, StolenData};
use malsim_malware::stuxnet;
use malsim_malware::world::{World, WorldSim};
use malsim_os::host::HostId;
use malsim_os::usb::UsbId;

/// A USB courier: the stick rotates through `route` (one hop per `period`),
/// and at each stop the user browses it in Explorer. Handles contamination,
/// LNK infection, and the Flame hidden-database ferry at every hop.
pub fn schedule_usb_courier(sim: &mut WorldSim, usb: UsbId, route: Vec<HostId>, period: SimDuration) {
    assert!(!route.is_empty(), "a courier route needs at least one stop");
    let mut hop = 0usize;
    sim.schedule_every(period, move |w: &mut World, s| {
        let current = route[hop % route.len()];
        hop += 1;
        // Remove the stick from wherever it is.
        for (_, h) in w.hosts.iter_mut() {
            if h.inserted_usb() == Some(usb) {
                h.eject_usb();
            }
        }
        if !w.hosts[current].is_running() {
            return true; // skip dead stops, keep the route alive
        }
        w.hosts[current].insert_usb(usb);
        stuxnet::infection::on_usb_inserted(w, s, current);
        flame::usb_exfil::on_usb_inserted(w, s, current);
        stuxnet::infection::open_usb_in_explorer(w, s, current);
        true
    });
}

/// Every host periodically checks Windows Update; proxied checks feed the
/// Flame MITM. Each host gets a random initial offset within one period so
/// the fleet's checks spread over the day instead of firing in lockstep.
pub fn schedule_update_checks(sim: &mut WorldSim, hosts: Vec<HostId>, period: SimDuration) {
    for host in hosts {
        let offset = SimDuration::from_millis(sim.rng.range(0..period.as_millis().max(1)));
        sim.schedule_in(offset, move |_w: &mut World, s| {
            s.schedule_every(period, move |w: &mut World, s| {
                if !w.hosts[host].is_running() {
                    return false;
                }
                flame::mitm::victim_update_check(w, s, host);
                true
            });
        });
    }
}

/// The Flame operator loop: every `period`, each live server's uploaded
/// summaries are triaged (juicy paths get upload approval queued back to
/// their client), then the attack center retrieves and the server cleans up
/// (the 30-minute cron of the paper).
pub fn schedule_flame_operator(sim: &mut WorldSim, period: SimDuration) {
    sim.schedule_every(period, move |w: &mut World, s| {
        let Some(platform) = w.campaigns.flame_platform.as_mut() else { return false };
        // Triage summaries still sitting in entries before cleanup.
        let mut by_client: std::collections::BTreeMap<u64, Vec<(String, usize)>> =
            std::collections::BTreeMap::new();
        for server in &platform.servers {
            if server.seized {
                continue;
            }
            for e in &server.entries {
                if let StolenData::FileSummary { path, size, .. } = platform.attack_center.decrypt_entry(e) {
                    by_client.entry(e.client_id).or_default().push((path, size));
                }
            }
        }
        // Clients roam across servers, so per-client approvals are mirrored
        // onto every live server's ads folder.
        let mut approvals: Vec<(u64, Vec<String>)> = Vec::new();
        for (client, summaries) in by_client {
            let juicy = platform.triage_summaries(&summaries);
            if !juicy.is_empty() {
                approvals.push((client, juicy));
            }
        }
        for server in 0..platform.servers.len() {
            if platform.servers[server].seized {
                continue;
            }
            for (client, paths) in &approvals {
                platform.queue_ad(server, *client, Package::ApproveUploads { paths: paths.clone() });
            }
            let n = platform.retrieve_and_clean(server);
            if n > 0 {
                s.metrics.incr_by("flame.entries_retrieved", n as u64);
            }
        }
        true
    });
}

/// Schedules the Stuxnet C&C check-in loop for already-infected hosts (new
/// infections schedule their own).
pub fn schedule_stuxnet_checkins(sim: &mut WorldSim, period: SimDuration) {
    sim.schedule_every(period, move |w: &mut World, s| {
        let infected: Vec<HostId> = w.campaigns.stuxnet.infections.keys().copied().collect();
        if infected.is_empty() {
            return true; // nothing yet; keep polling
        }
        for h in infected {
            stuxnet::candc::check_in(w, s, h);
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::armory::Pki;
    use crate::scenario::ScenarioBuilder;
    use malsim_os::usb::UsbDrive;

    #[test]
    fn courier_spreads_stuxnet_across_a_route() {
        let (mut world, mut sim) = ScenarioBuilder::new(5).office_lan(3);
        let pki = Pki::install(&mut world);
        pki.arm_stuxnet(&mut world);
        let usb = world.usb_drives.push(UsbDrive::new("courier"));
        stuxnet::infection::contaminate_usb(&mut world, &mut sim, usb);
        let route: Vec<HostId> = (0..3).map(HostId::new).collect();
        schedule_usb_courier(&mut sim, usb, route, SimDuration::from_hours(4));
        sim.run_until(&mut world, sim.now() + SimDuration::from_hours(13));
        assert_eq!(world.campaigns.stuxnet.infections.len(), 3, "all stops hit");
    }

    #[test]
    fn update_checks_drive_the_mitm() {
        let (mut world, mut sim) = ScenarioBuilder::new(5).office_lan(4);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 4, 10);
        let seed = HostId::new(0);
        flame::client::infect_host(&mut world, &mut sim, seed, "seed");
        flame::mitm::snack_claim_wpad(&mut world, &mut sim, seed);
        schedule_update_checks(&mut sim, (0..4).map(HostId::new).collect(), SimDuration::from_hours(6));
        // Staggered first checks land within one period; run two periods.
        sim.run_until(&mut world, sim.now() + SimDuration::from_hours(13));
        assert_eq!(world.campaigns.flame_clients.len(), 4, "whole LAN fell via fake updates");
    }

    #[test]
    fn operator_loop_approves_and_cleans() {
        let (mut world, mut sim) = ScenarioBuilder::new(5).office_lan(1);
        let pki = Pki::install(&mut world);
        pki.arm_flame(&mut world, &mut sim, 4, 10);
        let h = HostId::new(0);
        world.hosts[h]
            .fs
            .write(
                &malsim_os::path::WinPath::new(r"C:\Users\user\Documents\deal.docx"),
                malsim_os::fs::FileData::Bytes(vec![0; 64_000]),
                sim.now(),
            )
            .unwrap();
        flame::client::infect_host(&mut world, &mut sim, h, "seed");
        schedule_flame_operator(&mut sim, SimDuration::from_mins(30));
        // Client cycles hourly; operator every 30 min. After several hours
        // the full content must have been uploaded and retrieved.
        sim.run_until(&mut world, sim.now() + SimDuration::from_hours(5));
        assert!(sim.metrics.counter("flame.content_uploads") >= 1);
        let p = world.campaigns.flame_platform.as_ref().unwrap();
        assert!(p
            .attack_center
            .retrieved
            .iter()
            .any(|d| matches!(d, StolenData::FileContent { path, .. } if path.contains("deal.docx"))));
        assert!(p.servers.iter().all(|srv| srv.entries.is_empty()), "cleanup ran");
    }

    #[test]
    #[should_panic(expected = "courier route")]
    fn empty_route_panics() {
        let (_, mut sim) = ScenarioBuilder::new(5).office_lan(1);
        schedule_usb_courier(&mut sim, UsbId::new(0), vec![], SimDuration::from_hours(1));
    }
}
