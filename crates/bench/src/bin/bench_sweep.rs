//! Sweep throughput baseline: end-to-end events/sec on four representative
//! experiments (E1 Stuxnet site, E9 Shamoon fleet wipe at the test scale and
//! at the paper's ~30,000-workstation Aramco scale, E13 takedown resilience),
//! emitted as one canonical-JSON document. The repo commits the result as
//! `BENCH_sweep.json` at the root so speedups and regressions form a
//! PR-over-PR trajectory rather than an anecdote; CI re-measures every push
//! and `--compare`s against the committed file (warn-only — wall-clock
//! figures are machine-dependent, so a regression prints a warning instead of
//! failing the build).
//!
//! Usage: `cargo run --release -p malsim-bench --bin bench_sweep --
//!   [--iters <n>] [--out <path>] [--compare <path>] [--threshold <ratio>]`
//!
//! Event counts are deterministic per seed; only the wall-clock figures
//! vary between machines and runs.

use std::time::Instant;

use malsim::experiments::{
    e13_takedown_resilience_profiled_t, e1_stuxnet_end_to_end_run, e9_shamoon_wipe_run,
};
use malsim::report::{self, Json};
use malsim::telemetry;

/// Times `iters` runs of one experiment; `run()` returns the number of
/// kernel events the run dispatched.
fn sample(iters: u64, run: impl Fn() -> u64) -> (u64, f64) {
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        events += run();
    }
    (events / iters, start.elapsed().as_secs_f64() * 1e3 / iters as f64)
}

/// Pulls `experiment -> events_per_sec` rows out of a bench document.
fn throughput_rows(doc: &Json) -> Vec<(String, f64)> {
    let Some(Json::Arr(rows)) = doc.get("rows") else { return Vec::new() };
    rows.iter()
        .filter_map(|row| {
            let name = row.get("experiment")?.as_str()?.to_owned();
            let eps = row.get("events_per_sec")?.as_f64()?;
            Some((name, eps))
        })
        .collect()
}

/// Warn-only diff of the fresh measurement against a committed baseline:
/// prints one line per experiment and a GitHub-annotation-style `::warning::`
/// when throughput dropped below `threshold` of the baseline. Never fails the
/// run — the committed file was measured on different hardware.
fn compare(current: &Json, baseline_text: &str, threshold: f64) {
    let baseline = match report::parse(baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("::warning::baseline unreadable, skipping comparison: {e}");
            return;
        }
    };
    let base_rows = throughput_rows(&baseline);
    for (experiment, now_eps) in throughput_rows(current) {
        match base_rows.iter().find(|(name, _)| *name == experiment) {
            Some((_, base_eps)) if *base_eps > 0.0 => {
                let ratio = now_eps / base_eps;
                eprintln!("{experiment}: {now_eps:.0} ev/s vs baseline {base_eps:.0} ({ratio:.2}x)");
                if ratio < threshold {
                    eprintln!(
                        "::warning::{experiment} throughput {now_eps:.0} ev/s is below \
                         {threshold:.2}x of the committed baseline {base_eps:.0} ev/s"
                    );
                }
            }
            _ => eprintln!("{experiment}: {now_eps:.0} ev/s (no baseline row)"),
        }
    }
}

fn main() {
    let mut iters = 3u64;
    let mut out: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--iters takes an integer");
                    std::process::exit(2);
                })
            }
            "--out" => out = args.next(),
            "--compare" => compare_path = args.next(),
            "--threshold" => {
                threshold = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold takes a ratio like 0.5");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_sweep [--iters <n>] [--out <path>] [--compare <path>] [--threshold <ratio>]"
                );
                std::process::exit(2);
            }
        }
    }

    type Case = (&'static str, Box<dyn Fn() -> u64>);
    let cases: Vec<Case> = vec![
        ("e1_stuxnet_site", Box::new(|| e1_stuxnet_end_to_end_run(42, 10, false).sim.executed())),
        ("e9_shamoon_fleet", Box::new(|| e9_shamoon_wipe_run(815, 4, 24, 2).sim.executed())),
        // The paper's headline Shamoon figure: ~30,000 wiped workstations.
        // 30 zones x 1000 hosts with three seeded zones reproduces that scale
        // end to end; this is the row the calendar-queue rewrite is judged on.
        ("e9_shamoon_aramco", Box::new(|| e9_shamoon_wipe_run(815, 30, 1000, 3).sim.executed())),
        (
            "e13_takedown_grid",
            Box::new(|| {
                let (_, profiles) =
                    e13_takedown_resilience_profiled_t(11, 6, 3, &[0.0, 0.25, 0.5, 0.75, 1.0], 1);
                profiles.iter().map(|p| p.total_events).sum()
            }),
        ),
    ];
    // Time every case first with telemetry unarmed, so the wall-clock figures
    // measure the one-branch idle path the acceptance bar is set against.
    let timed: Vec<(Case, u64, f64)> = cases
        .into_iter()
        .map(|(experiment, run)| {
            let (events, wall_ms) = sample(iters, &run);
            eprintln!("{experiment}: {events} events in {wall_ms:.1} ms/iter");
            ((experiment, run), events, wall_ms)
        })
        .collect();
    // Then arm the registry and replay each case once, untimed, to attach its
    // deterministic structural counters (dispatches by category, calendar
    // queue resizes/reaps) to the row. Arming is process-wide and one-way,
    // which is why it happens only after all timing is done.
    telemetry::arm();
    let rows: Vec<Json> = timed
        .into_iter()
        .map(|((experiment, run), events, wall_ms)| {
            telemetry::reset();
            run();
            let det = telemetry::deterministic_json();
            let counter = |name: &str| det.get(name).cloned().unwrap_or(Json::U64(0));
            Json::obj([
                ("experiment", experiment.into()),
                ("events", Json::U64(events)),
                ("wall_ms", Json::F64(wall_ms)),
                ("events_per_sec", Json::F64((events as f64 / wall_ms * 1e3).round())),
                (
                    "telemetry",
                    Json::obj([
                        ("dispatches", counter("malsim_sched_dispatches_total")),
                        ("calq_resizes", counter("malsim_calq_resizes_total")),
                        ("calq_tombstone_reaps", counter("malsim_calq_tombstone_reaps_total")),
                        ("calq_cursor_pullbacks", counter("malsim_calq_cursor_pullbacks_total")),
                    ]),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([("bench", "sweep".into()), ("iters", Json::U64(iters)), ("rows", Json::Arr(rows))]);
    let text = doc.to_canonical_string();
    if let Some(path) = compare_path {
        match std::fs::read_to_string(&path) {
            Ok(baseline_text) => compare(&doc, &baseline_text, threshold),
            Err(e) => eprintln!("::warning::cannot read baseline {path}: {e}"),
        }
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
