//! Sweep throughput baseline: end-to-end events/sec on three representative
//! experiments (E1 Stuxnet site, E9 Shamoon fleet wipe, E13 takedown
//! resilience), emitted as one canonical-JSON document so CI can archive
//! `BENCH_sweep.json` per commit and regressions show up as a diffable
//! artifact rather than an anecdote.
//!
//! Usage: `cargo run --release -p malsim-bench --bin bench_sweep --
//!   [--iters <n>] [--out <path>]`
//!
//! Event counts are deterministic per seed; only the wall-clock figures
//! vary between machines and runs.

use std::time::Instant;

use malsim::experiments::{
    e13_takedown_resilience_profiled_t, e1_stuxnet_end_to_end_run, e9_shamoon_wipe_run,
};
use malsim::report::Json;

/// Times `iters` runs of one experiment; `run()` returns the number of
/// kernel events the run dispatched.
fn sample(iters: u64, run: impl Fn() -> u64) -> (u64, f64) {
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        events += run();
    }
    (events / iters, start.elapsed().as_secs_f64() * 1e3 / iters as f64)
}

fn main() {
    let mut iters = 3u64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--iters takes an integer");
                    std::process::exit(2);
                })
            }
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_sweep [--iters <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    type Case = (&'static str, Box<dyn Fn() -> u64>);
    let cases: Vec<Case> = vec![
        ("e1_stuxnet_site", Box::new(|| e1_stuxnet_end_to_end_run(42, 10, false).sim.executed())),
        ("e9_shamoon_fleet", Box::new(|| e9_shamoon_wipe_run(815, 4, 24, 2).sim.executed())),
        (
            "e13_takedown_grid",
            Box::new(|| {
                let (_, profiles) =
                    e13_takedown_resilience_profiled_t(11, 6, 3, &[0.0, 0.25, 0.5, 0.75, 1.0], 1);
                profiles.iter().map(|p| p.total_events).sum()
            }),
        ),
    ];
    let rows: Vec<Json> = cases
        .into_iter()
        .map(|(experiment, run)| {
            let (events, wall_ms) = sample(iters, run);
            eprintln!("{experiment}: {events} events in {wall_ms:.1} ms/iter");
            Json::obj([
                ("experiment", experiment.into()),
                ("events", Json::U64(events)),
                ("wall_ms", Json::F64(wall_ms)),
                ("events_per_sec", Json::F64((events as f64 / wall_ms * 1e3).round())),
            ])
        })
        .collect();
    let doc = Json::obj([("bench", "sweep".into()), ("iters", Json::U64(iters)), ("rows", Json::Arr(rows))]);
    let text = doc.to_canonical_string();
    match out {
        Some(path) => {
            std::fs::write(&path, &text).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}
