//! One benchmark group per experiment in DESIGN.md's index (E1–E13).
//!
//! Besides timing, each bench prints the experiment's headline rows once at
//! startup so `cargo bench` regenerates the paper-shaped numbers recorded in
//! EXPERIMENTS.md. Scales are kept modest so the suite completes quickly;
//! the examples run the larger versions.

use criterion::{criterion_group, criterion_main, Criterion};
use malsim::prelude::*;
use std::hint::black_box;

fn print_once(title: &str, body: impl FnOnce()) {
    println!("\n=== {title} ===");
    body();
}

fn e1(c: &mut Criterion) {
    print_once("E1 (Fig.1) stuxnet end-to-end", || {
        let r = experiments::e1_stuxnet_end_to_end(42, 30);
        println!(
            "infected={} plc_implanted={} destroyed={}/{} safety_tripped={} operator_anomalies={}",
            r.infected_hosts,
            r.plc_implanted,
            r.destroyed,
            r.total_centrifuges,
            r.safety_tripped,
            r.operator_anomalies
        );
    });
    c.bench_function("e1_stuxnet_endtoend_10d", |b| {
        b.iter(|| black_box(experiments::e1_stuxnet_end_to_end(black_box(42), 10)))
    });
}

fn e2(c: &mut Criterion) {
    print_once("E2 zero-day ablation (50-host LAN, 5 days)", || {
        for row in experiments::e2_zero_day_ablation(42, 50, 5, experiments::grids::E2_PATCH_RATES) {
            println!("patch_rate={:.2} infected_fraction={:.2}", row.patch_rate, row.infected_fraction);
        }
    });
    c.bench_function("e2_zero_day_ablation", |b| {
        b.iter(|| black_box(experiments::e2_zero_day_ablation(black_box(42), 30, 3, &[0.0, 0.5, 1.0])))
    });
}

fn e3(c: &mut Criterion) {
    print_once("E3 plc targeting discipline", || {
        for row in experiments::e3_plc_targeting(42, 10) {
            println!("{}: armed={} destroyed={}", row.configuration, row.armed, row.destroyed);
        }
    });
    c.bench_function("e3_plc_payload", |b| {
        b.iter(|| black_box(experiments::e3_plc_targeting(black_box(42), 5)))
    });
}

fn e4(c: &mut Criterion) {
    print_once("E4 (Fig.2) wpad mitm spread (72h)", || {
        for row in experiments::e4_wpad_mitm(42, experiments::grids::E4_LAN_SIZES, 72) {
            println!(
                "lan={} mitm={} infected_fraction={:.2}",
                row.lan_size, row.mitm_active, row.infected_fraction
            );
        }
    });
    c.bench_function("e4_wpad_mitm", |b| {
        b.iter(|| black_box(experiments::e4_wpad_mitm(black_box(42), &[8], 48)))
    });
}

fn e5(c: &mut Criterion) {
    print_once("E5 (Fig.3) certificate forgery policy matrix", || {
        for row in experiments::e5_cert_forgery(42) {
            println!("{}: accepted={}", row.policy, row.accepted);
        }
    });
    c.bench_function("e5_cert_forgery", |b| {
        b.iter(|| black_box(experiments::e5_cert_forgery(black_box(42))))
    });
}

fn e6(c: &mut Criterion) {
    print_once("E6 (Fig.4) c2 takedown resilience (30 clients)", || {
        for row in experiments::e6_candc_resilience(42, 30, experiments::grids::E6_TAKEDOWNS) {
            println!(
                "takedown={:.2} reachable(80-domain)={:.2} reachable(single)={:.0}",
                row.takedown_fraction, row.reachable_many, row.reachable_single
            );
        }
    });
    c.bench_function("e6_candc_resilience", |b| {
        b.iter(|| black_box(experiments::e6_candc_resilience(black_box(42), 15, &[0.5])))
    });
}

fn e7(c: &mut Criterion) {
    print_once("E7 (Fig.5) c2 dataflow, one week, 20 clients / 4 servers", || {
        let r = experiments::e7_candc_dataflow(42, 20, 4, 7);
        println!(
            "uploaded={:.1}MB per_server_week={:.1}MB retrieved={} residual={} attack_center={:.1}MB",
            r.bytes_uploaded as f64 / 1e6,
            r.bytes_per_server_week / 1e6,
            r.entries_retrieved,
            r.entries_residual,
            r.attack_center_bytes as f64 / 1e6
        );
    });
    c.bench_function("e7_candc_dataflow", |b| {
        b.iter(|| black_box(experiments::e7_candc_dataflow(black_box(42), 8, 4, 3)))
    });
}

fn e8(c: &mut Criterion) {
    print_once("E8 exfil-intelligence ablation", || {
        for row in experiments::e8_exfil_ablation(42, 6, 4) {
            println!(
                "{}: uploaded={:.1}MB juicy={:.1}MB",
                row.strategy,
                row.bytes_uploaded as f64 / 1e6,
                row.juicy_bytes as f64 / 1e6
            );
        }
    });
    c.bench_function("e8_flame_modules", |b| {
        b.iter(|| black_box(experiments::e8_exfil_ablation(black_box(42), 3, 2)))
    });
}

fn e9(c: &mut Criterion) {
    print_once("E9 (Fig.6) shamoon wipe, 10 sites x 50 hosts", || {
        let r = experiments::e9_shamoon_wipe(815, 10, 49, 5);
        println!(
            "fleet={} infected={} bricked={} reports={} hours_to_trigger={:.1}",
            r.fleet, r.infected, r.bricked, r.reports, r.hours_to_trigger
        );
    });
    c.bench_function("e9_shamoon_wipe", |b| {
        b.iter(|| black_box(experiments::e9_shamoon_wipe(black_box(815), 4, 24, 2)))
    });
}

fn e10(c: &mut Criterion) {
    print_once("E10 (§V) derived trend matrix", || {
        print!("{}", trend_table(&experiments::e10_trend_matrix(5)));
    });
    let mut group = c.benchmark_group("e10");
    group.sample_size(10);
    group.bench_function("e10_trend_matrix", |b| {
        b.iter(|| black_box(experiments::e10_trend_matrix(black_box(5))))
    });
    group.finish();
}

fn e11(c: &mut Criterion) {
    print_once("E11 stealth vs spread", || {
        for row in experiments::e11_stealth_tradeoff(5, 20, experiments::grids::E11_ACTION_RATES) {
            println!(
                "aggressiveness={:.0} infected={} alerts={}",
                row.aggressiveness, row.infected, row.alerts
            );
        }
    });
    c.bench_function("e11_stealth_tradeoff", |b| {
        b.iter(|| black_box(experiments::e11_stealth_tradeoff(black_box(5), 10, &[1.0, 12.0])))
    });
}

fn e12(c: &mut Criterion) {
    print_once("E12 suicide vs forensics", || {
        for row in experiments::e12_suicide_forensics(5, 8) {
            println!(
                "{}: recovery={:.2} server_logs={}",
                row.scenario, row.recovery_score, row.server_logs_remaining
            );
        }
    });
    c.bench_function("e12_suicide_forensics", |b| {
        b.iter(|| black_box(experiments::e12_suicide_forensics(black_box(5), 4)))
    });
}

fn e13(c: &mut Criterion) {
    print_once("E13 takedown resilience sweep (10 clients, 7 days)", || {
        for row in experiments::e13_takedown_resilience(11, 10, 7, experiments::grids::E13_SINKHOLE_FRACTIONS)
        {
            println!(
                "sinkholed={:.2} seized={}srv/{}dom reachable={:.2} direct={:.1}MB/wk ferried={:.1}MB/wk backlog={}",
                row.sinkhole_fraction,
                row.servers_seized,
                row.domains_seized,
                row.reachable_clients,
                row.direct_bytes_week / 1e6,
                row.ferried_bytes_week / 1e6,
                row.stick_backlog
            );
        }
    });
    c.bench_function("e13_takedown_sweep", |b| {
        b.iter(|| black_box(experiments::e13_takedown_resilience(black_box(11), 6, 3, &[0.0, 0.5, 1.0])))
    });
}

criterion_group! {
    name = experiments_benches;
    config = Criterion::default().sample_size(10);
    targets = e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13
}
criterion_main!(experiments_benches);
