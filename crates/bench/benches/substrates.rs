//! Substrate microbenchmarks: event-kernel throughput, MZSM parse/build,
//! Flua compile/execute, and the PKI verification path. These bound the
//! cost of the building blocks the experiments are assembled from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn kernel_event_throughput(c: &mut Criterion) {
    use malsim_kernel::prelude::*;
    c.bench_function("kernel_schedule_run_10k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(SimTime::EPOCH, 1);
            let mut world = 0u64;
            for i in 0..10_000u64 {
                sim.schedule_in(SimDuration::from_millis(i % 977), |w: &mut u64, _| {
                    *w = w.wrapping_add(1);
                });
            }
            sim.run(&mut world);
            black_box(world)
        })
    });
    c.bench_function("kernel_nested_cascade_10k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(SimTime::EPOCH, 1);
            let mut world = 0u64;
            fn step(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if *w < 10_000 {
                    sim.schedule_in(SimDuration::from_millis(1), step);
                }
            }
            sim.schedule_in(SimDuration::from_millis(1), step);
            sim.run(&mut world);
            black_box(world)
        })
    });
}

fn pe_roundtrip(c: &mut Criterion) {
    use malsim_pe::prelude::*;
    let image = ImageBuilder::new("TrkSvr.exe", Machine::X86)
        .section(".text", SectionKind::Code, vec![0x90; 64 * 1024])
        .section(".data", SectionKind::Data, vec![0x00; 32 * 1024])
        .resource_encrypted("PKCS12", XorKey::new(0xFB), vec![0x41; 128 * 1024])
        .resource_encrypted("PKCS7", XorKey::new(0x91), vec![0x42; 64 * 1024])
        .import("CreateServiceW")
        .import("WriteRawSectors")
        .build();
    let bytes = image.to_bytes();
    c.bench_function("pe_build_300k", |b| b.iter(|| black_box(image.to_bytes())));
    c.bench_function("pe_parse_300k", |b| b.iter(|| black_box(Image::parse(black_box(&bytes)).unwrap())));
    c.bench_function("pe_xor_crack_128k", |b| {
        let ct = &image.resource("PKCS12").unwrap().data;
        b.iter(|| black_box(XorKey::crack(black_box(ct), 0x41)))
    });
}

fn script_vm(c: &mut Criterion) {
    use malsim_script::prelude::*;
    let jimmy_like = r#"
        let hits = []
        for f in files do
            if contains(f, ".docx") or contains(f, ".dwg") then
                hits = push(hits, f)
            end
        end
        return len(hits)
    "#;
    c.bench_function("flua_compile_jimmy", |b| b.iter(|| black_box(compile(black_box(jimmy_like)).unwrap())));
    let chunk = compile(jimmy_like).unwrap();
    let files: Vec<Value> = (0..200)
        .map(|i| Value::str(format!("C:\\docs\\file-{i}.{}", if i % 3 == 0 { "docx" } else { "txt" })))
        .collect();
    c.bench_function("flua_run_jimmy_200_files", |b| {
        b.iter(|| {
            let mut vm = Vm::new();
            vm.set_global("files", Value::list(files.clone()));
            black_box(vm.run(&chunk, &mut NoHost, VmLimits::default()).unwrap())
        })
    });
    let fib = compile("fn fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end\nreturn fib(15)")
        .unwrap();
    c.bench_function("flua_fib_15", |b| {
        b.iter(|| {
            let mut vm = Vm::new();
            black_box(vm.run(&fib, &mut NoHost, VmLimits::default()).unwrap())
        })
    });
}

fn certs_path(c: &mut Criterion) {
    use malsim_certs::prelude::*;
    use malsim_kernel::time::SimTime;
    let far = SimTime::from_utc(2035, 1, 1, 0, 0, 0);
    let ca = CertificateAuthority::new_root("Root", 1, SimTime::EPOCH, far);
    let mut store = TrustStore::new();
    store.add_root(ca.root_certificate().clone());
    let kp = KeyPair::from_seed(7);
    let cert =
        ca.issue("Vendor", kp.public(), vec![Eku::CodeSigning], HashAlgorithm::Strong64, SimTime::EPOCH, far);
    let content = vec![0xAB; 256 * 1024];
    let sig = CodeSignature::sign(&kp, cert, HashAlgorithm::Strong64, &content);
    c.bench_function("certs_verify_code_256k", |b| {
        b.iter(|| {
            store
                .verify_code(
                    black_box(&content),
                    black_box(&sig),
                    SimTime::EPOCH,
                    Eku::CodeSigning,
                    VerifyPolicy::strict(),
                )
                .unwrap();
        })
    });
    let (lkey, lcert) = ca.activate_terminal_services_licensing("Org", 9, SimTime::EPOCH, far);
    c.bench_function("certs_forge_weak_collision", |b| {
        b.iter(|| {
            black_box(malsim_certs::forgery::leverage_licensing_credential(
                black_box(&lkey),
                lcert.clone(),
                black_box(b"malicious update binary"),
            ))
        })
    });
}

criterion_group! {
    name = substrate_benches;
    config = Criterion::default();
    targets = kernel_event_throughput, pe_roundtrip, script_vm, certs_path
}
criterion_main!(substrate_benches);
