//! Builder for [`Image`]s.

use crate::image::{Image, Machine, Resource, Section, SectionKind, MAX_ENTRIES, MAX_NAME};
use crate::xor::XorKey;

/// Incrementally assembles an [`Image`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use malsim_pe::builder::ImageBuilder;
/// use malsim_pe::image::{Machine, SectionKind};
/// use malsim_pe::xor::XorKey;
///
/// let image = ImageBuilder::new("mssecmgr.ocx", Machine::X86)
///     .section(".text", SectionKind::Code, b"core".to_vec())
///     .resource_encrypted("146", XorKey::new(0x1F), b"lua modules".to_vec())
///     .import("WinHttpOpen")
///     .build();
/// assert_eq!(image.name(), "mssecmgr.ocx");
/// ```
#[derive(Debug, Clone)]
pub struct ImageBuilder {
    name: String,
    machine: Machine,
    timestamp_secs: u64,
    sections: Vec<Section>,
    resources: Vec<Resource>,
    imports: Vec<String>,
}

impl ImageBuilder {
    /// Starts a builder for an image with the given file name and machine.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or longer than [`MAX_NAME`] bytes.
    pub fn new(name: impl Into<String>, machine: Machine) -> Self {
        let name = name.into();
        assert!(!name.is_empty() && name.len() <= MAX_NAME, "invalid image name");
        ImageBuilder {
            name,
            machine,
            timestamp_secs: 0,
            sections: Vec::new(),
            resources: Vec::new(),
            imports: Vec::new(),
        }
    }

    /// Sets the build timestamp (seconds since the Unix epoch).
    pub fn timestamp_secs(mut self, secs: u64) -> Self {
        self.timestamp_secs = secs;
        self
    }

    /// Appends a section.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid or the section table is full.
    pub fn section(mut self, name: impl Into<String>, kind: SectionKind, data: Vec<u8>) -> Self {
        let name = name.into();
        assert!(!name.is_empty() && name.len() <= MAX_NAME, "invalid section name");
        assert!(self.sections.len() < MAX_ENTRIES, "section table full");
        self.sections.push(Section { name, kind, data });
        self
    }

    /// Appends a plaintext resource.
    pub fn resource(self, name: impl Into<String>, data: Vec<u8>) -> Self {
        self.push_resource(name.into(), None, data)
    }

    /// Appends an XOR-encrypted resource: `plaintext` is encrypted with `key`
    /// before being stored, mirroring how Shamoon shipped its payloads.
    pub fn resource_encrypted(self, name: impl Into<String>, key: XorKey, plaintext: Vec<u8>) -> Self {
        let ciphertext = key.apply(&plaintext);
        self.push_resource(name.into(), Some(key), ciphertext)
    }

    fn push_resource(mut self, name: String, xor_key: Option<XorKey>, data: Vec<u8>) -> Self {
        assert!(!name.is_empty() && name.len() <= MAX_NAME, "invalid resource name");
        assert!(self.resources.len() < MAX_ENTRIES, "resource table full");
        self.resources.push(Resource { name, xor_key, data });
        self
    }

    /// Appends an imported API name.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid or the import table is full.
    pub fn import(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty() && name.len() <= MAX_NAME, "invalid import name");
        assert!(self.imports.len() < MAX_ENTRIES, "import table full");
        self.imports.push(name);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Image {
        Image::from_parts(
            self.machine,
            self.timestamp_secs,
            self.name,
            self.sections,
            self.resources,
            self.imports,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_parts() {
        let img = ImageBuilder::new("a.exe", Machine::X64)
            .timestamp_secs(99)
            .section(".text", SectionKind::Code, vec![1])
            .resource("R", vec![2])
            .import("Foo")
            .build();
        assert_eq!(img.timestamp_secs(), 99);
        assert_eq!(img.sections().len(), 1);
        assert_eq!(img.resources().len(), 1);
        assert_eq!(img.imports().len(), 1);
        assert!(img.signature().is_none());
    }

    #[test]
    fn encrypted_resource_is_ciphertext_on_wire() {
        let img = ImageBuilder::new("a.exe", Machine::X86)
            .resource_encrypted("X", XorKey::new(0x10), b"abc".to_vec())
            .build();
        let r = img.resource("X").unwrap();
        assert_eq!(r.data, XorKey::new(0x10).apply(b"abc"));
        assert_eq!(r.plaintext(), b"abc");
    }

    #[test]
    #[should_panic(expected = "invalid image name")]
    fn empty_name_panics() {
        let _ = ImageBuilder::new("", Machine::X86);
    }

    #[test]
    #[should_panic(expected = "invalid section name")]
    fn long_section_name_panics() {
        let _ = ImageBuilder::new("a.exe", Machine::X86).section("x".repeat(300), SectionKind::Code, vec![]);
    }
}
