//! The MZSM image model: sections, resources, imports, and signature slot.
//!
//! An [`Image`] is the in-memory form; [`crate::builder::ImageBuilder`]
//! produces one, [`Image::to_bytes`] serializes it to the wire format, and
//! [`Image::parse`] reads it back. The format deliberately mirrors the parts
//! of the real Portable Executable format the paper's narrative depends on:
//! named sections, a resource directory whose entries may be XOR-encrypted
//! (Shamoon), an import-name table (used by heuristic scanners), and a
//! signature blob slot (used by the certificate policy in `malsim-os`).

use serde::{Deserialize, Serialize};

use crate::error::ParseImageError;
use crate::xor::XorKey;

/// Target architecture word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// 32-bit x86 (`0x014c`, as in the real PE format).
    X86,
    /// 64-bit x86-64 (`0x8664`).
    X64,
}

impl Machine {
    /// The on-wire machine word.
    pub const fn code(self) -> u16 {
        match self {
            Machine::X86 => 0x014c,
            Machine::X64 => 0x8664,
        }
    }

    /// Parses a machine word.
    pub fn from_code(code: u16) -> Option<Machine> {
        match code {
            0x014c => Some(Machine::X86),
            0x8664 => Some(Machine::X64),
            _ => None,
        }
    }
}

/// What a section holds. Stored as one byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SectionKind {
    /// Executable code.
    Code,
    /// Initialized data.
    Data,
    /// Read-only data.
    Rodata,
}

impl SectionKind {
    const fn code(self) -> u8 {
        match self {
            SectionKind::Code => 1,
            SectionKind::Data => 2,
            SectionKind::Rodata => 3,
        }
    }

    fn from_code(code: u8) -> Option<SectionKind> {
        match code {
            1 => Some(SectionKind::Code),
            2 => Some(SectionKind::Data),
            3 => Some(SectionKind::Rodata),
            _ => None,
        }
    }
}

/// A named section with raw contents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Section name, e.g. `.text`.
    pub name: String,
    /// Content classification.
    pub kind: SectionKind,
    /// Raw bytes.
    pub data: Vec<u8>,
}

/// A resource directory entry, optionally XOR-encrypted on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    /// Resource name, e.g. `PKCS12` (Shamoon used misleading names).
    pub name: String,
    /// XOR key if the stored bytes are encrypted.
    pub xor_key: Option<XorKey>,
    /// Stored bytes (ciphertext when `xor_key` is set).
    pub data: Vec<u8>,
}

impl Resource {
    /// The plaintext contents: decrypts if an XOR key is present.
    pub fn plaintext(&self) -> Vec<u8> {
        match self.xor_key {
            Some(k) => k.apply(&self.data),
            None => self.data.clone(),
        }
    }
}

/// A parsed or built MZSM image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    machine: Machine,
    /// Build timestamp, seconds since the Unix epoch.
    timestamp_secs: u64,
    name: String,
    sections: Vec<Section>,
    resources: Vec<Resource>,
    imports: Vec<String>,
    signature: Option<Vec<u8>>,
}

/// Magic bytes at offset 0.
pub const MAGIC: [u8; 4] = *b"MZSM";
/// Current (only) format version.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 40;
/// Sanity cap on table entry counts.
pub const MAX_ENTRIES: usize = 4096;
/// Sanity cap on any single name length.
pub const MAX_NAME: usize = 255;

impl Image {
    pub(crate) fn from_parts(
        machine: Machine,
        timestamp_secs: u64,
        name: String,
        sections: Vec<Section>,
        resources: Vec<Resource>,
        imports: Vec<String>,
        signature: Option<Vec<u8>>,
    ) -> Self {
        Image { machine, timestamp_secs, name, sections, resources, imports, signature }
    }

    /// Target architecture.
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// Build timestamp in seconds since the Unix epoch.
    pub fn timestamp_secs(&self) -> u64 {
        self.timestamp_secs
    }

    /// Image (file) name, e.g. `TrkSvr.exe`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All sections in order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// All resources in order.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Looks a section up by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Looks a resource up by name.
    pub fn resource(&self, name: &str) -> Option<&Resource> {
        self.resources.iter().find(|r| r.name == name)
    }

    /// Imported API names (used by heuristic scanners).
    pub fn imports(&self) -> &[String] {
        &self.imports
    }

    /// The signature blob, if the image is signed.
    pub fn signature(&self) -> Option<&[u8]> {
        self.signature.as_deref()
    }

    /// Attaches (or replaces) a signature blob.
    pub fn set_signature(&mut self, blob: Vec<u8>) {
        self.signature = Some(blob);
    }

    /// Removes the signature blob, if any.
    pub fn clear_signature(&mut self) -> Option<Vec<u8>> {
        self.signature.take()
    }

    /// Total payload size: all section and resource bytes.
    pub fn payload_len(&self) -> usize {
        self.sections.iter().map(|s| s.data.len()).sum::<usize>()
            + self.resources.iter().map(|r| r.data.len()).sum::<usize>()
    }

    /// Bytes covered by the signature: everything except the signature blob
    /// itself. Used by the certificate layer to bind signatures to content.
    pub fn signed_region(&self) -> Vec<u8> {
        let mut unsigned = self.clone();
        unsigned.signature = None;
        unsigned.to_bytes()
    }

    /// FNV-1a digest of the whole serialized image. Stable identity for AV
    /// signature databases.
    pub fn content_hash(&self) -> u64 {
        let bytes = self.to_bytes();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Serializes to the wire format.
    ///
    /// Layout: fixed header, name, section table, resource table, import
    /// table, payload blobs, signature. All integers little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload_len() + 256);
        // --- header (40 bytes) ---
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.machine.code().to_le_bytes());
        out.extend_from_slice(&self.timestamp_secs.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.resources.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.imports.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        let sig_len = self.signature.as_ref().map_or(0, Vec::len) as u32;
        out.extend_from_slice(&sig_len.to_le_bytes());
        // checksum placeholder, patched below
        let checksum_at = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        // pad header to HEADER_LEN
        while out.len() < HEADER_LEN {
            out.push(0);
        }
        debug_assert_eq!(out.len(), HEADER_LEN);
        // --- name ---
        out.extend_from_slice(self.name.as_bytes());
        // --- section table + payload offsets ---
        // Payload blobs start after all tables; compute offsets as we emit.
        let mut payload: Vec<u8> = Vec::new();
        for s in &self.sections {
            out.push(s.name.len() as u8);
            out.extend_from_slice(s.name.as_bytes());
            out.push(s.kind.code());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&(s.data.len() as u32).to_le_bytes());
            payload.extend_from_slice(&s.data);
        }
        for r in &self.resources {
            out.push(r.name.len() as u8);
            out.extend_from_slice(r.name.as_bytes());
            match r.xor_key {
                Some(k) => {
                    out.push(1);
                    out.push(k.as_byte());
                }
                None => {
                    out.push(0);
                    out.push(0);
                }
            }
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&(r.data.len() as u32).to_le_bytes());
            payload.extend_from_slice(&r.data);
        }
        for imp in &self.imports {
            out.push(imp.len() as u8);
            out.extend_from_slice(imp.as_bytes());
        }
        out.extend_from_slice(&payload);
        if let Some(sig) = &self.signature {
            out.extend_from_slice(sig);
        }
        // --- checksum over everything after the header ---
        let computed = checksum(&out[HEADER_LEN..]);
        out[checksum_at..checksum_at + 4].copy_from_slice(&computed.to_le_bytes());
        out
    }

    /// Parses an image from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseImageError`] on truncation, bad magic, unknown machine,
    /// out-of-bounds table entries, invalid UTF-8 names, or checksum
    /// mismatch.
    pub fn parse(bytes: &[u8]) -> Result<Image, ParseImageError> {
        let mut rd = Reader { buf: bytes, pos: 0 };
        let magic: [u8; 4] = rd.take(4)?.try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(ParseImageError::BadMagic(magic));
        }
        let version = rd.u16()?;
        if version != VERSION {
            return Err(ParseImageError::UnsupportedVersion(version));
        }
        let machine_code = rd.u16()?;
        let machine =
            Machine::from_code(machine_code).ok_or(ParseImageError::UnknownMachine(machine_code))?;
        let timestamp_secs = rd.u64()?;
        let n_sections = rd.u16()? as usize;
        let n_resources = rd.u16()? as usize;
        let n_imports = rd.u16()? as usize;
        let name_len = rd.u16()? as usize;
        let sig_len = rd.u32()? as usize;
        let stored_checksum = rd.u32()?;
        if n_sections > MAX_ENTRIES || n_resources > MAX_ENTRIES || n_imports > MAX_ENTRIES {
            return Err(ParseImageError::LimitExceeded("table entry count"));
        }
        if name_len > MAX_NAME {
            return Err(ParseImageError::LimitExceeded("image name length"));
        }
        rd.pos = HEADER_LEN.min(bytes.len());
        if bytes.len() < HEADER_LEN {
            return Err(ParseImageError::Truncated { needed: HEADER_LEN, available: bytes.len() });
        }
        let computed = checksum(&bytes[HEADER_LEN..]);
        if computed != stored_checksum {
            return Err(ParseImageError::ChecksumMismatch { stored: stored_checksum, computed });
        }
        let name =
            String::from_utf8(rd.take(name_len)?.to_vec()).map_err(|_| ParseImageError::BadName("image"))?;
        struct RawSection {
            name: String,
            kind: SectionKind,
            offset: usize,
            len: usize,
        }
        struct RawResource {
            name: String,
            xor_key: Option<XorKey>,
            offset: usize,
            len: usize,
        }
        let mut raw_sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let nlen = rd.u8()? as usize;
            let sname = String::from_utf8(rd.take(nlen)?.to_vec())
                .map_err(|_| ParseImageError::BadName("section"))?;
            let kind_code = rd.u8()?;
            let kind =
                SectionKind::from_code(kind_code).ok_or(ParseImageError::LimitExceeded("section kind"))?;
            let offset = rd.u32()? as usize;
            let len = rd.u32()? as usize;
            raw_sections.push(RawSection { name: sname, kind, offset, len });
        }
        let mut raw_resources = Vec::with_capacity(n_resources);
        for _ in 0..n_resources {
            let nlen = rd.u8()? as usize;
            let rname = String::from_utf8(rd.take(nlen)?.to_vec())
                .map_err(|_| ParseImageError::BadName("resource"))?;
            let has_key = rd.u8()?;
            let key_byte = rd.u8()?;
            let xor_key = if has_key != 0 { Some(XorKey::new(key_byte)) } else { None };
            let offset = rd.u32()? as usize;
            let len = rd.u32()? as usize;
            raw_resources.push(RawResource { name: rname, xor_key, offset, len });
        }
        let mut imports = Vec::with_capacity(n_imports);
        for _ in 0..n_imports {
            let nlen = rd.u8()? as usize;
            let iname =
                String::from_utf8(rd.take(nlen)?.to_vec()).map_err(|_| ParseImageError::BadName("import"))?;
            imports.push(iname);
        }
        let payload_start = rd.pos;
        let payload_end = bytes
            .len()
            .checked_sub(sig_len)
            .ok_or(ParseImageError::Truncated { needed: sig_len, available: bytes.len() })?;
        if payload_end < payload_start {
            return Err(ParseImageError::Truncated {
                needed: payload_start + sig_len,
                available: bytes.len(),
            });
        }
        let payload = &bytes[payload_start..payload_end];
        let mut sections = Vec::with_capacity(n_sections);
        for (i, rs) in raw_sections.into_iter().enumerate() {
            let end = rs.offset.checked_add(rs.len);
            let data = match end {
                Some(end) if end <= payload.len() => payload[rs.offset..end].to_vec(),
                _ => return Err(ParseImageError::RangeOutOfBounds { table: "section", index: i }),
            };
            sections.push(Section { name: rs.name, kind: rs.kind, data });
        }
        let mut resources = Vec::with_capacity(n_resources);
        for (i, rr) in raw_resources.into_iter().enumerate() {
            let end = rr.offset.checked_add(rr.len);
            let data = match end {
                Some(end) if end <= payload.len() => payload[rr.offset..end].to_vec(),
                _ => return Err(ParseImageError::RangeOutOfBounds { table: "resource", index: i }),
            };
            resources.push(Resource { name: rr.name, xor_key: rr.xor_key, data });
        }
        let signature = if sig_len > 0 { Some(bytes[payload_end..].to_vec()) } else { None };
        Ok(Image { machine, timestamp_secs, name, sections, resources, imports, signature })
    }
}

fn checksum(bytes: &[u8]) -> u32 {
    // Simple 32-bit Fletcher-like sum; enough to catch corruption, and gives
    // the defense crate a stable "file integrity" primitive.
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &x in bytes {
        a = a.wrapping_add(u32::from(x));
        b = b.wrapping_add(a);
    }
    (b << 16) | (a & 0xffff)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseImageError> {
        if self.pos + n > self.buf.len() {
            return Err(ParseImageError::Truncated { needed: self.pos + n, available: self.buf.len() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ParseImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ParseImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ParseImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ParseImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ImageBuilder;

    fn sample() -> Image {
        ImageBuilder::new("TrkSvr.exe", Machine::X86)
            .timestamp_secs(1_345_000_000)
            .section(".text", SectionKind::Code, b"main dispatch loop".to_vec())
            .section(".data", SectionKind::Data, vec![0u8; 64])
            .resource_encrypted("PKCS12", XorKey::new(0xAA), b"wiper module".to_vec())
            .resource("LANG", b"en-us".to_vec())
            .import("CreateServiceW")
            .import("WriteRawSectors")
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = Image::parse(&bytes).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.name(), "TrkSvr.exe");
        assert_eq!(back.machine(), Machine::X86);
        assert_eq!(back.timestamp_secs(), 1_345_000_000);
        assert_eq!(back.sections().len(), 2);
        assert_eq!(back.resources().len(), 2);
        assert_eq!(back.imports(), ["CreateServiceW", "WriteRawSectors"]);
    }

    #[test]
    fn encrypted_resource_stores_ciphertext() {
        let img = sample();
        let res = img.resource("PKCS12").unwrap();
        assert_ne!(res.data, b"wiper module");
        assert_eq!(res.plaintext(), b"wiper module");
        let plain = img.resource("LANG").unwrap();
        assert_eq!(plain.plaintext(), b"en-us");
    }

    #[test]
    fn signature_roundtrip_and_signed_region() {
        let mut img = sample();
        let region_before = img.signed_region();
        img.set_signature(vec![1, 2, 3, 4]);
        let bytes = img.to_bytes();
        let back = Image::parse(&bytes).unwrap();
        assert_eq!(back.signature(), Some(&[1u8, 2, 3, 4][..]));
        // Signing must not change the signed region.
        assert_eq!(back.signed_region(), region_before);
        let mut unsigned = back.clone();
        assert_eq!(unsigned.clear_signature(), Some(vec![1, 2, 3, 4]));
        assert_eq!(unsigned.signature(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Image::parse(&bytes), Err(ParseImageError::BadMagic(_))));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 10, HEADER_LEN - 1, HEADER_LEN + 2, bytes.len() - 1] {
            let err = Image::parse(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} parsed successfully");
        }
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(Image::parse(&bytes), Err(ParseImageError::ChecksumMismatch { .. })));
    }

    #[test]
    fn unknown_machine_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[6] = 0xEE;
        bytes[7] = 0xEE;
        let err = Image::parse(&bytes).unwrap_err();
        assert!(
            matches!(err, ParseImageError::UnknownMachine(0xEEEE))
                || matches!(err, ParseImageError::ChecksumMismatch { .. })
        );
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.content_hash(), b.content_hash());
        let c = ImageBuilder::new("other.exe", Machine::X86).build();
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn machine_codes_match_pe() {
        assert_eq!(Machine::X86.code(), 0x014c);
        assert_eq!(Machine::X64.code(), 0x8664);
        assert_eq!(Machine::from_code(0x8664), Some(Machine::X64));
        assert_eq!(Machine::from_code(0x1234), None);
    }

    #[test]
    fn empty_image_roundtrips() {
        let img = ImageBuilder::new("empty.exe", Machine::X64).build();
        let back = Image::parse(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.payload_len(), 0);
    }
}
