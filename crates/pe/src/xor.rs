//! Single-byte XOR cipher.
//!
//! Shamoon's `TrkSvr.exe` carried its wiper, reporter, and 64-bit payloads as
//! resources "encrypted" with a simple XOR routine — weak enough that
//! analysts unpacked it immediately, which is one of the paper's "work of
//! amateurs" indicators. The same scheme is modelled here so that defenders
//! in `malsim-defense` can implement the equivalent unpack-and-scan step.

use serde::{Deserialize, Serialize};

/// Key for the single-byte XOR cipher.
///
/// # Examples
///
/// ```
/// use malsim_pe::xor::XorKey;
///
/// let key = XorKey::new(0xA5);
/// let ct = key.apply(b"secret payload");
/// assert_ne!(ct, b"secret payload");
/// assert_eq!(key.apply(&ct), b"secret payload");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct XorKey(u8);

impl XorKey {
    /// Creates a key from a byte. A zero key is allowed but is the identity.
    pub const fn new(key: u8) -> Self {
        XorKey(key)
    }

    /// The raw key byte.
    pub const fn as_byte(self) -> u8 {
        self.0
    }

    /// Applies the cipher, returning a new buffer. XOR is an involution, so
    /// the same call encrypts and decrypts.
    pub fn apply(self, data: &[u8]) -> Vec<u8> {
        data.iter().map(|b| b ^ self.0).collect()
    }

    /// Applies the cipher in place.
    pub fn apply_in_place(self, data: &mut [u8]) {
        for b in data {
            *b ^= self.0;
        }
    }

    /// Recovers the key assuming the plaintext's most common byte is
    /// `expected` (classic single-byte-XOR cryptanalysis; defaults used by
    /// analysts: 0x00 for binaries).
    ///
    /// Returns `None` for an empty buffer.
    pub fn crack(ciphertext: &[u8], expected: u8) -> Option<XorKey> {
        if ciphertext.is_empty() {
            return None;
        }
        let mut freq = [0usize; 256];
        for &b in ciphertext {
            freq[b as usize] += 1;
        }
        let most = (0..256).max_by_key(|&i| freq[i]).expect("256 buckets") as u8;
        Some(XorKey(most ^ expected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = XorKey::new(0x5C);
        let plain = b"The quick brown fox".to_vec();
        let mut buf = plain.clone();
        key.apply_in_place(&mut buf);
        assert_ne!(buf, plain);
        assert_eq!(key.apply(&buf), plain);
    }

    #[test]
    fn zero_key_is_identity() {
        let key = XorKey::new(0);
        assert_eq!(key.apply(b"abc"), b"abc");
    }

    #[test]
    fn crack_recovers_key_from_zero_heavy_plaintext() {
        // Model a binary blob: mostly zero padding.
        let mut plain = vec![0u8; 900];
        plain.extend_from_slice(b"payload body with some text");
        let key = XorKey::new(0x77);
        let ct = key.apply(&plain);
        assert_eq!(XorKey::crack(&ct, 0x00), Some(key));
    }

    #[test]
    fn crack_empty_is_none() {
        assert_eq!(XorKey::crack(&[], 0), None);
    }
}
