//! Parse errors for the MZSM image format.

use std::error::Error;
use std::fmt;

/// Error returned when parsing an image fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseImageError {
    /// The buffer is smaller than a valid header.
    Truncated {
        /// Bytes required at the point of failure.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The magic bytes are not `MZSM`.
    BadMagic([u8; 4]),
    /// The format version is unsupported.
    UnsupportedVersion(u16),
    /// The machine word is not a known architecture.
    UnknownMachine(u16),
    /// A section or resource entry points outside the payload area.
    RangeOutOfBounds {
        /// Which table the bad entry came from.
        table: &'static str,
        /// Entry index within that table.
        index: usize,
    },
    /// A name is not valid UTF-8.
    BadName(&'static str),
    /// The stored checksum does not match the computed one.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// A count or length field exceeds the format's sanity limits.
    LimitExceeded(&'static str),
}

impl fmt::Display for ParseImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseImageError::Truncated { needed, available } => {
                write!(f, "truncated image: needed {needed} bytes, had {available}")
            }
            ParseImageError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            ParseImageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            ParseImageError::UnknownMachine(m) => write!(f, "unknown machine 0x{m:04x}"),
            ParseImageError::RangeOutOfBounds { table, index } => {
                write!(f, "{table} entry {index} points outside the image")
            }
            ParseImageError::BadName(what) => write!(f, "{what} name is not valid utf-8"),
            ParseImageError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored 0x{stored:08x}, computed 0x{computed:08x}")
            }
            ParseImageError::LimitExceeded(what) => write!(f, "{what} exceeds format limits"),
        }
    }
}

impl Error for ParseImageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ParseImageError::Truncated { needed: 64, available: 3 };
        assert_eq!(e.to_string(), "truncated image: needed 64 bytes, had 3");
        assert!(ParseImageError::BadMagic(*b"ABCD").to_string().contains("bad magic"));
        assert!(ParseImageError::ChecksumMismatch { stored: 1, computed: 2 }
            .to_string()
            .contains("mismatch"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ParseImageError::UnsupportedVersion(9));
    }
}
