//! # malsim-pe
//!
//! A byte-level toy executable container ("MZSM") standing in for the
//! Windows Portable Executable format in the `malsim` simulation workspace.
//!
//! The paper's Shamoon dissection hinges on file structure: a 900 KB PE
//! whose wiper/reporter/x64 payloads travel as XOR-encrypted resources, and
//! whose signature (or lack of one) decides whether a driver loads. This
//! crate provides exactly those mechanics on a simple, fully specified
//! format:
//!
//! - [`builder::ImageBuilder`] assembles an image out of sections, resources
//!   (optionally XOR-encrypted via [`xor::XorKey`]), and imported API names;
//! - [`image::Image::to_bytes`] / [`image::Image::parse`] round-trip the wire
//!   format with full validation ([`error::ParseImageError`]);
//! - [`image::Image::signed_region`] and the signature slot integrate with
//!   `malsim-certs` for code-signing policy;
//! - [`image::Image::content_hash`] gives AV engines a stable identity.
//!
//! Nothing here executes: "code" sections are inert bytes that simulation
//! agents interpret symbolically.
//!
//! # Examples
//!
//! ```
//! use malsim_pe::prelude::*;
//!
//! // Build a Shamoon-shaped image: encrypted payload resources.
//! let image = ImageBuilder::new("TrkSvr.exe", Machine::X86)
//!     .section(".text", SectionKind::Code, b"dropper logic".to_vec())
//!     .resource_encrypted("PKCS12", XorKey::new(0xFB), b"wiper".to_vec())
//!     .resource_encrypted("PKCS7", XorKey::new(0x91), b"reporter".to_vec())
//!     .resource_encrypted("X509", XorKey::new(0x04), b"64-bit variant".to_vec())
//!     .build();
//!
//! let wire = image.to_bytes();
//! let parsed = Image::parse(&wire)?;
//! assert_eq!(parsed.resource("PKCS12").unwrap().plaintext(), b"wiper");
//! # Ok::<(), malsim_pe::error::ParseImageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod image;
pub mod xor;

/// Commonly used items.
pub mod prelude {
    pub use crate::builder::ImageBuilder;
    pub use crate::error::ParseImageError;
    pub use crate::image::{Image, Machine, Resource, Section, SectionKind};
    pub use crate::xor::XorKey;
}
