//! Property tests: the MZSM wire format round-trips arbitrary images, and the
//! parser never panics on arbitrary or mutated input.

use malsim_pe::builder::ImageBuilder;
use malsim_pe::image::{Image, Machine, SectionKind};
use malsim_pe::xor::XorKey;
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._]{1,32}".prop_map(|s| s)
}

fn machine_strategy() -> impl Strategy<Value = Machine> {
    prop_oneof![Just(Machine::X86), Just(Machine::X64)]
}

fn kind_strategy() -> impl Strategy<Value = SectionKind> {
    prop_oneof![Just(SectionKind::Code), Just(SectionKind::Data), Just(SectionKind::Rodata)]
}

prop_compose! {
    fn image_strategy()(
        name in name_strategy(),
        machine in machine_strategy(),
        ts in any::<u64>(),
        sections in proptest::collection::vec(
            (name_strategy(), kind_strategy(), proptest::collection::vec(any::<u8>(), 0..200)),
            0..6,
        ),
        resources in proptest::collection::vec(
            (name_strategy(), proptest::option::of(any::<u8>()), proptest::collection::vec(any::<u8>(), 0..200)),
            0..6,
        ),
        imports in proptest::collection::vec(name_strategy(), 0..8),
        signature in proptest::option::of(proptest::collection::vec(any::<u8>(), 1..64)),
    ) -> Image {
        let mut b = ImageBuilder::new(name, machine).timestamp_secs(ts);
        for (n, k, d) in sections {
            b = b.section(n, k, d);
        }
        for (n, key, d) in resources {
            b = match key {
                Some(k) => b.resource_encrypted(n, XorKey::new(k), d),
                None => b.resource(n, d),
            };
        }
        for i in imports {
            b = b.import(i);
        }
        let mut img = b.build();
        if let Some(sig) = signature {
            img.set_signature(sig);
        }
        img
    }
}

proptest! {
    #[test]
    fn roundtrip(img in image_strategy()) {
        let bytes = img.to_bytes();
        let back = Image::parse(&bytes).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn parse_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Image::parse(&bytes);
    }

    #[test]
    fn single_byte_mutation_never_panics(img in image_strategy(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = img.to_bytes();
        let i = pos.index(bytes.len());
        bytes[i] ^= flip;
        // Must either fail cleanly or parse to something (e.g. payload-only bytes
        // not covered by any table can flip without consequence — but the
        // checksum makes that impossible here).
        let _ = Image::parse(&bytes);
    }

    #[test]
    fn xor_involution(key in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let k = XorKey::new(key);
        prop_assert_eq!(k.apply(&k.apply(&data)), data);
    }

    #[test]
    fn content_hash_changes_with_content(
        a in image_strategy(),
        b in image_strategy(),
    ) {
        if a != b {
            // Not a cryptographic guarantee, but FNV over distinct structured
            // images should essentially never collide in practice; treat a
            // collision as a test failure worth investigating.
            prop_assert_ne!(a.content_hash(), b.content_hash());
        } else {
            prop_assert_eq!(a.content_hash(), b.content_hash());
        }
    }
}
