//! Zones (LAN segments), internet reachability, and traffic interposition.
//!
//! A [`Topology`] partitions hosts into zones. Each zone may be connected to
//! the internet or air-gapped (the protected environments the paper says
//! Flame targeted via USB ferrying). Within a zone, a WPAD claimant can
//! become every WPAD-enabled host's proxy — the interposition hook Flame's
//! SNACK module used for its man-in-the-middle spread.

use std::collections::BTreeMap;

use malsim_kernel::define_id;
use malsim_kernel::ids::Arena;
use malsim_os::host::HostId;

define_id!(
    /// Identifies a zone (LAN segment).
    pub struct ZoneId("zone")
);
malsim_kernel::impl_arena_id!(ZoneId);

/// A LAN segment.
#[derive(Debug, Clone)]
pub struct Zone {
    /// Zone name, e.g. `"office-lan"` or `"natanz-scada"`.
    pub name: String,
    /// Whether the zone routes to the internet.
    pub internet: bool,
    hosts: Vec<HostId>,
    /// The host currently answering WPAD queries, if any. Legitimate
    /// networks in these scenarios have none; an infected machine claims the
    /// role.
    wpad_claimant: Option<HostId>,
    /// Whether the zone's uplink is currently up. Fault windows and defender
    /// actions (unplugging a compromised segment) toggle this.
    link_up: bool,
}

impl Zone {
    /// Hosts in the zone.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The current WPAD claimant.
    pub fn wpad_claimant(&self) -> Option<HostId> {
        self.wpad_claimant
    }

    /// Whether the zone's uplink is currently up.
    pub fn link_up(&self) -> bool {
        self.link_up
    }

    /// The fault-plane target name for this zone, e.g. `"zone:office"`.
    pub fn fault_target(&self) -> String {
        format!("zone:{}", self.name)
    }
}

/// The network world: zones plus per-host placement.
///
/// # Examples
///
/// ```
/// use malsim_net::topology::Topology;
/// use malsim_os::host::HostId;
///
/// let mut topo = Topology::new();
/// let lan = topo.add_zone("office", true);
/// topo.place(HostId::new(0), lan);
/// topo.place(HostId::new(1), lan);
/// assert_eq!(topo.peers_of(HostId::new(0)).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    zones: Arena<ZoneId, Zone>,
    placement: BTreeMap<HostId, ZoneId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a zone.
    pub fn add_zone(&mut self, name: impl Into<String>, internet: bool) -> ZoneId {
        self.zones.push(Zone {
            name: name.into(),
            internet,
            hosts: Vec::new(),
            wpad_claimant: None,
            link_up: true,
        })
    }

    /// Places a host in a zone (moving it if already placed).
    pub fn place(&mut self, host: HostId, zone: ZoneId) {
        if let Some(old) = self.placement.insert(host, zone) {
            self.zones[old].hosts.retain(|h| *h != host);
        }
        self.zones[zone].hosts.push(host);
    }

    /// The zone a host is in.
    pub fn zone_of(&self, host: HostId) -> Option<ZoneId> {
        self.placement.get(&host).copied()
    }

    /// Zone accessor.
    pub fn zone(&self, id: ZoneId) -> &Zone {
        &self.zones[id]
    }

    /// All zones.
    pub fn zones(&self) -> impl Iterator<Item = (ZoneId, &Zone)> {
        self.zones.iter()
    }

    /// Hosts sharing a zone with `host` (excluding it).
    pub fn peers_of(&self, host: HostId) -> Vec<HostId> {
        match self.zone_of(host) {
            Some(z) => self.zones[z].hosts.iter().copied().filter(|h| *h != host).collect(),
            None => Vec::new(),
        }
    }

    /// Whether a host's zone routes to the internet *right now*: the zone
    /// must be internet-connected by design and have its uplink up.
    pub fn has_internet(&self, host: HostId) -> bool {
        self.zone_of(host).is_some_and(|z| self.zones[z].internet && self.zones[z].link_up)
    }

    /// Raises or severs a zone's uplink. Returns the previous state.
    pub fn set_link(&mut self, zone: ZoneId, up: bool) -> bool {
        std::mem::replace(&mut self.zones[zone].link_up, up)
    }

    /// Whether a host's zone uplink is up (true for unzoned hosts' absence
    /// of a link to sever — they already fail `has_internet`).
    pub fn link_up(&self, host: HostId) -> bool {
        self.zone_of(host).is_none_or(|z| self.zones[z].link_up)
    }

    /// The fault-plane target name for the host's zone (`"zone:<name>"`).
    pub fn fault_target_of(&self, host: HostId) -> Option<String> {
        self.zone_of(host).map(|z| self.zones[z].fault_target())
    }

    /// Whether two hosts share a zone.
    pub fn same_zone(&self, a: HostId, b: HostId) -> bool {
        match (self.zone_of(a), self.zone_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Claims the WPAD role in the claimant's zone. Returns `false` when the
    /// host is unplaced.
    pub fn claim_wpad(&mut self, claimant: HostId) -> bool {
        match self.zone_of(claimant) {
            Some(z) => {
                self.zones[z].wpad_claimant = Some(claimant);
                true
            }
            None => false,
        }
    }

    /// Releases the WPAD role in a zone.
    pub fn release_wpad(&mut self, zone: ZoneId) {
        self.zones[zone].wpad_claimant = None;
    }

    /// Resolves the proxy a client's traffic flows through: the zone's WPAD
    /// claimant, if the client consults WPAD (`client_wpad_enabled`) and the
    /// claimant is not the client itself.
    pub fn effective_proxy(&self, client: HostId, client_wpad_enabled: bool) -> Option<HostId> {
        if !client_wpad_enabled {
            return None;
        }
        let z = self.zone_of(client)?;
        match self.zones[z].wpad_claimant {
            Some(p) if p != client => Some(p),
            _ => None,
        }
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Number of placed hosts.
    pub fn host_count(&self) -> usize {
        self.placement.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: usize) -> HostId {
        HostId::new(i)
    }

    #[test]
    fn placement_and_peers() {
        let mut t = Topology::new();
        let a = t.add_zone("a", true);
        let b = t.add_zone("b", false);
        t.place(h(0), a);
        t.place(h(1), a);
        t.place(h(2), b);
        assert_eq!(t.peers_of(h(0)), vec![h(1)]);
        assert!(t.same_zone(h(0), h(1)));
        assert!(!t.same_zone(h(0), h(2)));
        assert!(t.has_internet(h(0)));
        assert!(!t.has_internet(h(2)), "air-gapped zone");
        assert_eq!(t.zone_count(), 2);
        assert_eq!(t.host_count(), 3);
    }

    #[test]
    fn moving_a_host_updates_both_zones() {
        let mut t = Topology::new();
        let a = t.add_zone("a", true);
        let b = t.add_zone("b", true);
        t.place(h(0), a);
        t.place(h(0), b);
        assert!(t.zone(a).hosts().is_empty());
        assert_eq!(t.zone(b).hosts(), &[h(0)]);
        assert_eq!(t.zone_of(h(0)), Some(b));
    }

    #[test]
    fn wpad_claim_and_proxy_resolution() {
        let mut t = Topology::new();
        let z = t.add_zone("lan", true);
        for i in 0..3 {
            t.place(h(i), z);
        }
        assert_eq!(t.effective_proxy(h(1), true), None, "no claimant yet");
        assert!(t.claim_wpad(h(0)));
        assert_eq!(t.effective_proxy(h(1), true), Some(h(0)));
        assert_eq!(t.effective_proxy(h(1), false), None, "wpad disabled on client");
        assert_eq!(t.effective_proxy(h(0), true), None, "claimant does not proxy itself");
        t.release_wpad(z);
        assert_eq!(t.effective_proxy(h(1), true), None);
    }

    #[test]
    fn link_state_gates_internet_access() {
        let mut t = Topology::new();
        let office = t.add_zone("office", true);
        let plant = t.add_zone("plant", false);
        t.place(h(0), office);
        t.place(h(1), plant);
        assert!(t.has_internet(h(0)));
        assert!(t.link_up(h(0)));
        assert_eq!(t.zone(office).fault_target(), "zone:office");
        assert_eq!(t.fault_target_of(h(0)).as_deref(), Some("zone:office"));

        // Severing the uplink cuts internet access without re-zoning.
        assert!(t.set_link(office, false), "previous state was up");
        assert!(!t.has_internet(h(0)));
        assert!(!t.link_up(h(0)));
        assert!(!t.set_link(office, true));
        assert!(t.has_internet(h(0)), "restored");

        // An air-gapped zone stays offline regardless of link state.
        assert!(t.set_link(plant, false));
        t.set_link(plant, true);
        assert!(!t.has_internet(h(1)));
    }

    #[test]
    fn unplaced_host_edge_cases() {
        let mut t = Topology::new();
        assert_eq!(t.zone_of(h(9)), None);
        assert!(t.peers_of(h(9)).is_empty());
        assert!(!t.has_internet(h(9)));
        assert!(!t.claim_wpad(h(9)));
        assert_eq!(t.effective_proxy(h(9), true), None);
    }
}
