//! Lateral-movement preconditions: SMB shares and the print-spooler vector.
//!
//! These are *predicates*, not exploit code: they answer "can an agent on
//! host A deliver a file to / execute on host B", given both hosts' modelled
//! configuration and patch state. The actual file writes happen through the
//! OS layer, and the scheduling through the kernel.

use malsim_os::host::Host;
use malsim_os::patches::Bulletin;

/// Why a lateral-movement attempt cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LateralBlocked {
    /// Target host is not running.
    TargetDown,
    /// Target has file/print sharing disabled.
    SharingDisabled,
    /// Target is patched against the exploited flaw.
    Patched,
}

/// Checks whether plain SMB share copy (Shamoon's spread, Flame's network
/// module) can reach the target: the target must be up with sharing on.
/// Share copying abuses credentials rather than a vulnerability, so patch
/// state is irrelevant.
pub fn can_copy_to_share(target: &Host) -> Result<(), LateralBlocked> {
    if !target.is_running() {
        return Err(LateralBlocked::TargetDown);
    }
    if !target.config.file_sharing {
        return Err(LateralBlocked::SharingDisabled);
    }
    Ok(())
}

/// Checks whether the MS10-061 print-spooler vector (Stuxnet's LAN spread)
/// can execute code on the target: sharing on *and* bulletin missing.
pub fn can_exploit_spooler(target: &Host) -> Result<(), LateralBlocked> {
    can_copy_to_share(target)?;
    if !target.is_vulnerable_to(Bulletin::Ms10_061) {
        return Err(LateralBlocked::Patched);
    }
    Ok(())
}

/// Checks whether rendering a malicious shortcut compromises the host
/// (MS10-046): the shell renders LNK icons whenever a directory is opened,
/// so the only gate is the patch.
pub fn lnk_render_compromises(target: &Host) -> bool {
    target.is_running() && target.is_vulnerable_to(Bulletin::Ms10_046)
}

/// Checks whether an autorun manifest executes on mount: requires the host
/// to honour autorun (a configuration, not a vulnerability).
pub fn autorun_executes(target: &Host) -> bool {
    target.is_running() && target.config.autorun_enabled
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::time::SimTime;
    use malsim_os::host::{Host, HostRole, WindowsVersion};

    fn host() -> Host {
        Host::new("t", WindowsVersion::Xp, HostRole::Workstation, SimTime::EPOCH)
    }

    #[test]
    fn share_copy_gates() {
        let mut h = host();
        assert_eq!(can_copy_to_share(&h), Ok(()));
        h.config.file_sharing = false;
        assert_eq!(can_copy_to_share(&h), Err(LateralBlocked::SharingDisabled));
        h.config.file_sharing = true;
        h.brick();
        assert_eq!(can_copy_to_share(&h), Err(LateralBlocked::TargetDown));
    }

    #[test]
    fn spooler_needs_vulnerability() {
        let mut h = host();
        assert_eq!(can_exploit_spooler(&h), Ok(()));
        h.patches.apply(Bulletin::Ms10_061);
        assert_eq!(can_exploit_spooler(&h), Err(LateralBlocked::Patched));
    }

    #[test]
    fn spooler_needs_sharing_too() {
        let mut h = host();
        h.config.file_sharing = false;
        assert_eq!(can_exploit_spooler(&h), Err(LateralBlocked::SharingDisabled));
    }

    #[test]
    fn lnk_gate_is_patch_only() {
        let mut h = host();
        assert!(lnk_render_compromises(&h));
        h.patches.apply(Bulletin::Ms10_046);
        assert!(!lnk_render_compromises(&h));
    }

    #[test]
    fn autorun_gate_is_config_only() {
        let mut h = host();
        assert!(autorun_executes(&h));
        h.config.autorun_enabled = false;
        assert!(!autorun_executes(&h));
        h.config.autorun_enabled = true;
        h.brick();
        assert!(!autorun_executes(&h));
    }
}
