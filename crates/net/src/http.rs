//! Plain-data HTTP messages.
//!
//! Both C&C protocols in the paper ride on ordinary HTTP: Flame clients use
//! `GET_NEWS`/`ADD_ENTRY` operations against an Apache front end, and the
//! Shamoon reporter phones home with a single GET whose query string carries
//! the wipe statistics. These are modelled as simple structured messages.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::addr::Domain;

/// HTTP method subset used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Target host.
    pub host: Domain,
    /// Path, e.g. `/newsforyou/get`.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Builds a GET.
    pub fn get(host: Domain, path: impl Into<String>) -> Self {
        HttpRequest { method: Method::Get, host, path: path.into(), query: BTreeMap::new(), body: Vec::new() }
    }

    /// Builds a POST with a body.
    pub fn post(host: Domain, path: impl Into<String>, body: Vec<u8>) -> Self {
        HttpRequest { method: Method::Post, host, path: path.into(), query: BTreeMap::new(), body }
    }

    /// Adds a query parameter (builder style).
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Renders the request line (for traces and IDS matching).
    pub fn request_line(&self) -> String {
        let m = match self.method {
            Method::Get => "GET",
            Method::Post => "POST",
        };
        if self.query.is_empty() {
            format!("{m} http://{}{}", self.host, self.path)
        } else {
            let qs: Vec<String> =
                self.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{m} http://{}{}?{}", self.host, self.path, qs.join("&"))
        }
    }

    /// Total on-wire size estimate.
    pub fn wire_size(&self) -> usize {
        self.request_line().len() + self.body.len() + 64
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with body.
    pub fn ok(body: Vec<u8>) -> Self {
        HttpResponse { status: 200, body }
    }

    /// 404 empty.
    pub fn not_found() -> Self {
        HttpResponse { status: 404, body: Vec::new() }
    }

    /// 503 empty (server taken down / unreachable).
    pub fn unavailable() -> Self {
        HttpResponse { status: 503, body: Vec::new() }
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_rendering() {
        let r = HttpRequest::get(Domain::new("home.example"), "/report")
            .with_query("domain", "ws-12")
            .with_query("count", "42");
        let line = r.request_line();
        assert!(line.starts_with("GET http://home.example/report?"));
        assert!(line.contains("count=42"));
        assert!(line.contains("domain=ws-12"));
    }

    #[test]
    fn post_carries_body() {
        let r = HttpRequest::post(Domain::new("c2.example"), "/entries", vec![1, 2, 3]);
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body.len(), 3);
        assert!(r.wire_size() > 3);
    }

    #[test]
    fn response_constructors() {
        assert!(HttpResponse::ok(vec![]).is_success());
        assert!(!HttpResponse::not_found().is_success());
        assert_eq!(HttpResponse::unavailable().status, 503);
    }
}
