//! Plain-data HTTP messages.
//!
//! Both C&C protocols in the paper ride on ordinary HTTP: Flame clients use
//! `GET_NEWS`/`ADD_ENTRY` operations against an Apache front end, and the
//! Shamoon reporter phones home with a single GET whose query string carries
//! the wipe statistics. These are modelled as simple structured messages.

use std::collections::BTreeMap;
use std::fmt;

use malsim_kernel::fault::FaultPlane;
use malsim_kernel::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::addr::Domain;
use crate::dns::DnsError;

/// Typed transport-level failure for one HTTP exchange.
///
/// Produced by [`check_transport`] (and the fault-aware call sites built on
/// it) so callers can distinguish *retryable* conditions — a severed link, a
/// lost packet, a DNS outage — from terminal ones like a seized server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// The client's uplink is severed (zone link down).
    LinkDown,
    /// The exchange was dropped by an active packet-loss window.
    PacketLost,
    /// Name resolution failed.
    Dns(DnsError),
    /// The server end is seized, sinkholed, or otherwise not answering.
    ServerUnavailable,
}

impl HttpError {
    /// Whether retrying later could plausibly succeed.
    ///
    /// Takedowns and unregistered names are terminal for this destination;
    /// outages, loss, and link faults are transient by construction (they
    /// are windows).
    pub fn is_transient(&self) -> bool {
        match self {
            HttpError::LinkDown | HttpError::PacketLost => true,
            HttpError::Dns(DnsError::Outage) => true,
            HttpError::Dns(DnsError::NxDomain) | HttpError::Dns(DnsError::TakenDown) => false,
            HttpError::ServerUnavailable => false,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::LinkDown => write!(f, "link down"),
            HttpError::PacketLost => write!(f, "packet lost"),
            HttpError::Dns(e) => write!(f, "dns: {e}"),
            HttpError::ServerUnavailable => write!(f, "server unavailable"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<DnsError> for HttpError {
    fn from(e: DnsError) -> Self {
        HttpError::Dns(e)
    }
}

/// Consults the fault plane for one client→server exchange.
///
/// Checks, in order: a link-down window on `client_target` (e.g.
/// `"zone:office"`), a takedown window on `server_target` (e.g. a domain or
/// `"c2:<ip>"`), then rolls packet loss for either end. With an empty plane
/// this is three branches and no randomness.
pub fn check_transport(
    faults: &mut FaultPlane,
    now: SimTime,
    client_target: &str,
    server_target: &str,
) -> Result<(), HttpError> {
    if faults.is_empty() {
        return Ok(());
    }
    if faults.link_down_at(client_target, now) {
        return Err(HttpError::LinkDown);
    }
    if faults.taken_down_at(server_target, now) {
        return Err(HttpError::ServerUnavailable);
    }
    if faults.roll_packet_loss(client_target, now) || faults.roll_packet_loss(server_target, now) {
        return Err(HttpError::PacketLost);
    }
    Ok(())
}

/// HTTP method subset used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Target host.
    pub host: Domain,
    /// Path, e.g. `/newsforyou/get`.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Builds a GET.
    pub fn get(host: Domain, path: impl Into<String>) -> Self {
        HttpRequest { method: Method::Get, host, path: path.into(), query: BTreeMap::new(), body: Vec::new() }
    }

    /// Builds a POST with a body.
    pub fn post(host: Domain, path: impl Into<String>, body: Vec<u8>) -> Self {
        HttpRequest { method: Method::Post, host, path: path.into(), query: BTreeMap::new(), body }
    }

    /// Adds a query parameter (builder style).
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Renders the request line (for traces and IDS matching).
    pub fn request_line(&self) -> String {
        let m = match self.method {
            Method::Get => "GET",
            Method::Post => "POST",
        };
        if self.query.is_empty() {
            format!("{m} http://{}{}", self.host, self.path)
        } else {
            let qs: Vec<String> = self.query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{m} http://{}{}?{}", self.host, self.path, qs.join("&"))
        }
    }

    /// Total on-wire size estimate.
    pub fn wire_size(&self) -> usize {
        self.request_line().len() + self.body.len() + 64
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// 200 with body.
    pub fn ok(body: Vec<u8>) -> Self {
        HttpResponse { status: 200, body }
    }

    /// 404 empty.
    pub fn not_found() -> Self {
        HttpResponse { status: 404, body: Vec::new() }
    }

    /// 503 empty (server taken down / unreachable).
    pub fn unavailable() -> Self {
        HttpResponse { status: 503, body: Vec::new() }
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_rendering() {
        let r = HttpRequest::get(Domain::new("home.example"), "/report")
            .with_query("domain", "ws-12")
            .with_query("count", "42");
        let line = r.request_line();
        assert!(line.starts_with("GET http://home.example/report?"));
        assert!(line.contains("count=42"));
        assert!(line.contains("domain=ws-12"));
    }

    #[test]
    fn post_carries_body() {
        let r = HttpRequest::post(Domain::new("c2.example"), "/entries", vec![1, 2, 3]);
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body.len(), 3);
        assert!(r.wire_size() > 3);
    }

    #[test]
    fn response_constructors() {
        assert!(HttpResponse::ok(vec![]).is_success());
        assert!(!HttpResponse::not_found().is_success());
        assert_eq!(HttpResponse::unavailable().status, 503);
    }

    #[test]
    fn transient_classification() {
        assert!(HttpError::LinkDown.is_transient());
        assert!(HttpError::PacketLost.is_transient());
        assert!(HttpError::Dns(DnsError::Outage).is_transient());
        assert!(!HttpError::Dns(DnsError::NxDomain).is_transient());
        assert!(!HttpError::Dns(DnsError::TakenDown).is_transient());
        assert!(!HttpError::ServerUnavailable.is_transient());
    }

    #[test]
    fn check_transport_consults_each_fault_class() {
        use malsim_kernel::rng::SimRng;
        use malsim_kernel::time::SimDuration;

        let mut faults = FaultPlane::new(SimRng::seed_from(3).fork("fault-plane"));
        let t0 = SimTime::EPOCH;
        assert_eq!(check_transport(&mut faults, t0, "zone:a", "c2:1"), Ok(()));

        faults.link_down("zone:a", t0, t0 + SimDuration::from_hours(1));
        assert_eq!(check_transport(&mut faults, t0, "zone:a", "c2:1"), Err(HttpError::LinkDown));
        let later = t0 + SimDuration::from_hours(2);
        assert_eq!(check_transport(&mut faults, later, "zone:a", "c2:1"), Ok(()));

        faults.takedown("c2:1", later);
        assert_eq!(check_transport(&mut faults, later, "zone:a", "c2:1"), Err(HttpError::ServerUnavailable));
        assert_eq!(check_transport(&mut faults, later, "zone:a", "c2:2"), Ok(()));

        faults.packet_loss("zone:b", 1.0, later, SimTime::MAX);
        assert_eq!(check_transport(&mut faults, later, "zone:b", "c2:2"), Err(HttpError::PacketLost));
    }
}
