//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! Real C&C clients do not give up after one failed beacon — Flame's client
//! kept a domain list precisely so it could fail over and try again later.
//! [`RetryPolicy`] models that discipline: attempt `n` waits
//! `min(base · 2ⁿ, cap)` plus a jitter drawn from the **fault plane's**
//! forked rng stream (never from `Sim::rng`), so retry scheduling cannot
//! perturb the main random stream of a run.

use malsim_kernel::fault::FaultPlane;
use malsim_kernel::time::SimDuration;

/// Capped exponential backoff with bounded retries and proportional jitter.
///
/// # Examples
///
/// ```
/// use malsim_net::retry::RetryPolicy;
/// use malsim_kernel::time::SimDuration;
///
/// let p = RetryPolicy::flame_default();
/// assert!(p.should_retry(0));
/// assert_eq!(p.backoff(1), p.backoff(0).saturating_mul(2));
/// assert!(p.backoff(60) <= p.cap, "growth is capped");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single delay (before jitter).
    pub cap: SimDuration,
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Jitter bound as parts-per-hundred of the backoff (0 = none,
    /// 25 = up to +25%).
    pub jitter_pct: u32,
}

impl RetryPolicy {
    /// The policy the modelled Flame client uses: 2 min base, 1 h cap,
    /// 5 retries, up to +25% jitter.
    pub fn flame_default() -> Self {
        RetryPolicy {
            base: SimDuration::from_mins(2),
            cap: SimDuration::from_hours(1),
            max_retries: 5,
            jitter_pct: 25,
        }
    }

    /// Whether attempt number `attempt` (0-based count of *failures so far*)
    /// is still within the retry budget.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// Raw backoff for the given attempt: `min(base · 2^attempt, cap)`.
    ///
    /// Monotone non-decreasing in `attempt` and saturating — large attempt
    /// numbers simply pin to the cap.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Backoff plus a deterministic jitter in `[0, jitter_pct%]` of itself,
    /// drawn from the fault plane's forked stream.
    pub fn delay(&self, attempt: u32, faults: &mut FaultPlane) -> SimDuration {
        let backoff = self.backoff(attempt);
        let bound_ms = backoff.as_millis() / 100 * u64::from(self.jitter_pct);
        backoff + SimDuration::from_millis(faults.jitter_ms(bound_ms))
    }

    /// The error a client reports once this policy's budget is spent.
    ///
    /// `last_error` describes the final failed attempt (e.g. the DNS or HTTP
    /// error rendered via `Display`).
    pub fn exhausted(&self, last_error: impl Into<String>) -> RetryExhausted {
        RetryExhausted { attempts: self.max_retries + 1, last_error: last_error.into() }
    }
}

/// Terminal failure after a [`RetryPolicy`]'s budget is spent: the initial
/// attempt plus every allowed retry failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryExhausted {
    /// Total attempts made (initial attempt + retries).
    pub attempts: u32,
    /// `Display` rendering of the error from the final attempt.
    pub last_error: String,
}

impl std::fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "retries exhausted after {} attempts: {}", self.attempts, self.last_error)
    }
}

impl std::error::Error for RetryExhausted {}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::rng::SimRng;
    use proptest::prelude::*;

    fn plane(seed: u64) -> FaultPlane {
        FaultPlane::new(SimRng::seed_from(seed).fork("fault-plane"))
    }

    #[test]
    fn flame_default_shape() {
        let p = RetryPolicy::flame_default();
        assert_eq!(p.backoff(0), SimDuration::from_mins(2));
        assert_eq!(p.backoff(1), SimDuration::from_mins(4));
        assert_eq!(p.backoff(4), SimDuration::from_mins(32));
        assert_eq!(p.backoff(5), SimDuration::from_hours(1), "capped");
        assert_eq!(p.backoff(600), SimDuration::from_hours(1), "huge attempts saturate");
        assert!(p.should_retry(4));
        assert!(!p.should_retry(5));
    }

    #[test]
    fn exhausted_counts_the_initial_attempt() {
        let p = RetryPolicy::flame_default();
        let err = p.exhausted("dns: all resolvers down");
        assert_eq!(err.attempts, 6, "5 retries plus the initial attempt");
        assert_eq!(err.to_string(), "retries exhausted after 6 attempts: dns: all resolvers down");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = RetryPolicy { jitter_pct: 0, ..RetryPolicy::flame_default() };
        let mut faults = plane(11);
        for attempt in 0..8 {
            assert_eq!(p.delay(attempt, &mut faults), p.backoff(attempt));
        }
    }

    fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
        (1u64..120_000, 1u64..48, 0u32..12, 0u32..100).prop_map(|(base_ms, cap_h, retries, jitter)| {
            RetryPolicy {
                base: SimDuration::from_millis(base_ms),
                cap: SimDuration::from_hours(cap_h),
                max_retries: retries,
                jitter_pct: jitter,
            }
        })
    }

    proptest! {
        #[test]
        fn backoff_is_monotone_up_to_cap(p in arb_policy(), attempt in 0u32..64) {
            let here = p.backoff(attempt);
            let next = p.backoff(attempt + 1);
            prop_assert!(next >= here, "backoff must never shrink");
            prop_assert!(here <= p.cap, "backoff must never exceed the cap");
            prop_assert!(here >= p.base.min(p.cap), "backoff starts at base (or cap if smaller)");
        }

        #[test]
        fn jittered_delay_stays_within_bounds(p in arb_policy(), attempt in 0u32..64, seed in 0u64..1024) {
            let mut faults = plane(seed);
            let backoff = p.backoff(attempt);
            let delay = p.delay(attempt, &mut faults);
            prop_assert!(delay >= backoff, "jitter only adds");
            let bound = backoff.as_millis() / 100 * u64::from(p.jitter_pct);
            prop_assert!(
                delay.as_millis() <= backoff.as_millis() + bound,
                "jitter bounded by {}% of backoff",
                p.jitter_pct
            );
        }

        #[test]
        fn retry_budget_is_respected(p in arb_policy()) {
            // Walking attempts 0.. stops after exactly max_retries retries.
            let mut attempt = 0u32;
            while p.should_retry(attempt) {
                attempt += 1;
                prop_assert!(attempt <= p.max_retries, "must stop at the budget");
            }
            prop_assert_eq!(attempt, p.max_retries);
        }

        #[test]
        fn delay_is_deterministic_per_stream(p in arb_policy(), seed in 0u64..1024) {
            let series = |mut faults: FaultPlane| {
                (0..6).map(|a| p.delay(a, &mut faults)).collect::<Vec<_>>()
            };
            prop_assert_eq!(series(plane(seed)), series(plane(seed)));
        }
    }
}
