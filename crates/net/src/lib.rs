//! # malsim-net
//!
//! Network substrate for the `malsim` workspace: zones, names, protocols,
//! and the interposition hooks the modelled campaigns abuse.
//!
//! - [`addr`] — IPv4 addresses and case-folded domain names;
//! - [`dns`] — a registry with registrant metadata and takedown support
//!   (the Flame C&C used ~80 domains under fake identities, resolving to
//!   ~22 server addresses);
//! - [`topology`] — zones/LANs, internet vs air-gapped reachability, and
//!   WPAD-claimant proxy resolution (the SNACK man-in-the-middle hook);
//! - [`http`] — plain-data requests/responses both C&C protocols ride on,
//!   plus typed transport errors and the fault-plane consultation point;
//! - [`retry`] — capped exponential backoff with deterministic jitter, the
//!   discipline fault-aware clients use to survive outages;
//! - [`lateral`] — lateral-movement predicates: SMB share copy, the
//!   MS10-061 print-spooler vector, LNK rendering, autorun;
//! - [`winupdate`] — the Windows Update install decision, including the
//!   forged-certificate subversion;
//! - [`bluetooth`] — the proximity plane BEETLEJUICE beacons into.
//!
//! The crate is message-level and mostly pure: delivery timing and event
//! scheduling belong to the kernel; file effects belong to `malsim-os`.
//!
//! # Examples
//!
//! ```
//! use malsim_net::prelude::*;
//! use malsim_os::host::HostId;
//!
//! // An office LAN where host 0 hijacks WPAD.
//! let mut topo = Topology::new();
//! let lan = topo.add_zone("office", true);
//! for i in 0..4 {
//!     topo.place(HostId::new(i), lan);
//! }
//! topo.claim_wpad(HostId::new(0));
//! assert_eq!(topo.effective_proxy(HostId::new(2), true), Some(HostId::new(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bluetooth;
pub mod dns;
pub mod http;
pub mod lateral;
pub mod retry;
pub mod topology;
pub mod winupdate;

/// Commonly used items.
pub mod prelude {
    pub use crate::addr::{Domain, Ipv4};
    pub use crate::bluetooth::{BluetoothPlane, Radio, RadioId, RadioKind};
    pub use crate::dns::{Dns, DnsError, DnsRecord, Registrant};
    pub use crate::http::{check_transport, HttpError, HttpRequest, HttpResponse, Method};
    pub use crate::lateral::{
        autorun_executes, can_copy_to_share, can_exploit_spooler, lnk_render_compromises, LateralBlocked,
    };
    pub use crate::retry::{RetryExhausted, RetryPolicy};
    pub use crate::topology::{Topology, Zone, ZoneId};
    pub use crate::winupdate::{client_accepts_update, UpdatePackage, UpdateRejected};
}
