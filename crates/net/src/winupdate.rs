//! The Windows Update flow and its man-in-the-middle subversion.
//!
//! The legitimate flow: a client periodically fetches the update catalog and
//! installs binaries whose signatures verify against its trust store with
//! the code-signing usage. Flame's GADGET module interposed on that flow
//! (after SNACK's WPAD hijack made the infected machine the client's proxy)
//! and served a forged-signature binary instead; on the legacy verification
//! policy it installed cleanly.

use malsim_certs::cert::Eku;
use malsim_certs::store::{CodeSignature, TrustStore, VerifyPolicy};
use malsim_kernel::time::SimTime;

/// An update package as delivered to a client.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatePackage {
    /// Human-readable update name.
    pub name: String,
    /// The binary payload.
    pub binary: Vec<u8>,
    /// The signature presented with it.
    pub signature: Option<CodeSignature>,
}

/// Why a client refused an update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateRejected {
    /// No signature attached.
    Unsigned,
    /// Signature failed verification (reason string from the cert layer).
    BadSignature(String),
}

/// Client-side install decision: verifies the package against the client's
/// trust store and policy.
///
/// # Errors
///
/// Returns [`UpdateRejected`] when the client would refuse the package.
pub fn client_accepts_update(
    package: &UpdatePackage,
    trust: &TrustStore,
    policy: VerifyPolicy,
    now: SimTime,
) -> Result<(), UpdateRejected> {
    let Some(sig) = &package.signature else {
        return Err(UpdateRejected::Unsigned);
    };
    trust
        .verify_code(&package.binary, sig, now, Eku::CodeSigning, policy)
        .map_err(|e| UpdateRejected::BadSignature(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_certs::authority::CertificateAuthority;
    use malsim_certs::forgery::leverage_licensing_credential;
    use malsim_certs::hash::HashAlgorithm;
    use malsim_certs::key::KeyPair;

    fn far() -> SimTime {
        SimTime::from_utc(2030, 1, 1, 0, 0, 0)
    }

    fn vendor_setup() -> (TrustStore, CertificateAuthority) {
        let ca = CertificateAuthority::new_root("Platform Vendor Root", 21, SimTime::EPOCH, far());
        let mut store = TrustStore::new();
        store.add_root(ca.root_certificate().clone());
        (store, ca)
    }

    #[test]
    fn genuine_update_installs() {
        let (store, ca) = vendor_setup();
        let kp = KeyPair::from_seed(2);
        let cert = ca.issue(
            "Vendor Update Publisher",
            kp.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        let binary = b"KB2718704 security update".to_vec();
        let sig = CodeSignature::sign(&kp, cert, HashAlgorithm::Strong64, &binary);
        let pkg = UpdatePackage { name: "KB-1".into(), binary, signature: Some(sig) };
        assert_eq!(client_accepts_update(&pkg, &store, VerifyPolicy::strict(), SimTime::EPOCH), Ok(()));
    }

    #[test]
    fn unsigned_update_refused() {
        let (store, _) = vendor_setup();
        let pkg = UpdatePackage { name: "x".into(), binary: vec![1], signature: None };
        assert_eq!(
            client_accepts_update(&pkg, &store, VerifyPolicy::legacy(), SimTime::EPOCH),
            Err(UpdateRejected::Unsigned)
        );
    }

    #[test]
    fn forged_update_installs_only_on_legacy_policy() {
        let (store, ca) = vendor_setup();
        let (key, cert) = ca.activate_terminal_services_licensing("Attacker Org", 7, SimTime::EPOCH, far());
        let forged = leverage_licensing_credential(&key, cert, b"flame installer");
        let pkg = UpdatePackage {
            name: "WusetupV.exe".into(),
            binary: forged.content,
            signature: Some(forged.signature),
        };
        assert_eq!(
            client_accepts_update(&pkg, &store, VerifyPolicy::legacy(), SimTime::EPOCH),
            Ok(()),
            "pre-advisory client installs the forged update"
        );
        assert!(matches!(
            client_accepts_update(&pkg, &store, VerifyPolicy::strict(), SimTime::EPOCH),
            Err(UpdateRejected::BadSignature(_))
        ));
    }

    #[test]
    fn distrusted_cert_kills_forged_update_even_on_legacy() {
        let (mut store, ca) = vendor_setup();
        let (key, cert) = ca.activate_terminal_services_licensing("Attacker Org", 7, SimTime::EPOCH, far());
        let serial = cert.serial;
        let forged = leverage_licensing_credential(&key, cert, b"flame installer");
        store.distrust(serial);
        let pkg = UpdatePackage {
            name: "WusetupV.exe".into(),
            binary: forged.content,
            signature: Some(forged.signature),
        };
        assert!(matches!(
            client_accepts_update(&pkg, &store, VerifyPolicy::legacy(), SimTime::EPOCH),
            Err(UpdateRejected::BadSignature(_))
        ));
    }
}
