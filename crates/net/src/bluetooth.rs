//! Bluetooth proximity layer.
//!
//! Flame's BEETLEJUICE module enumerated nearby bluetooth devices and turned
//! the infected machine into a discoverable beacon — mapping the victim's
//! social surroundings, geolocating them, and (per the paper) offering a
//! side channel out of firewalled networks via nearby devices. We model a
//! 2-D plane of radios with a discovery range.

use std::collections::BTreeMap;

use malsim_kernel::define_id;
use serde::{Deserialize, Serialize};

define_id!(
    /// Identifies a bluetooth radio (host adapters and external devices).
    pub struct RadioId("radio")
);
malsim_kernel::impl_arena_id!(RadioId);

/// What kind of thing carries the radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadioKind {
    /// A simulated host's adapter.
    HostAdapter,
    /// A bystander's phone (carries an address book worth stealing).
    Phone,
    /// A peripheral (headset, printer).
    Peripheral,
}

/// One radio in the plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Radio {
    /// What the radio is attached to.
    pub kind: RadioKind,
    /// Display name, e.g. the phone owner's label.
    pub name: String,
    /// Position (meters).
    pub x: f64,
    /// Position (meters).
    pub y: f64,
    /// Whether the radio answers discovery probes.
    pub discoverable: bool,
    /// Address-book entries (phones only; the data BEETLEJUICE harvests).
    pub contacts: Vec<String>,
}

/// The proximity world.
///
/// # Examples
///
/// ```
/// use malsim_net::bluetooth::{BluetoothPlane, Radio, RadioKind};
///
/// let mut plane = BluetoothPlane::new(10.0);
/// let a = plane.add(Radio { kind: RadioKind::HostAdapter, name: "pc".into(), x: 0.0, y: 0.0, discoverable: false, contacts: vec![] });
/// let b = plane.add(Radio { kind: RadioKind::Phone, name: "phone".into(), x: 3.0, y: 4.0, discoverable: true, contacts: vec!["mom".into()] });
/// assert_eq!(plane.discover_from(a), vec![b]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BluetoothPlane {
    range_m: f64,
    radios: BTreeMap<RadioId, Radio>,
    next: usize,
}

impl BluetoothPlane {
    /// Creates a plane with the given discovery range in meters.
    pub fn new(range_m: f64) -> Self {
        BluetoothPlane { range_m, radios: BTreeMap::new(), next: 0 }
    }

    /// Adds a radio, returning its id.
    pub fn add(&mut self, radio: Radio) -> RadioId {
        let id = RadioId::new(self.next);
        self.next += 1;
        self.radios.insert(id, radio);
        id
    }

    /// Radio accessor.
    pub fn radio(&self, id: RadioId) -> Option<&Radio> {
        self.radios.get(&id)
    }

    /// Mutable radio accessor.
    pub fn radio_mut(&mut self, id: RadioId) -> Option<&mut Radio> {
        self.radios.get_mut(&id)
    }

    /// Sets a radio discoverable (what BEETLEJUICE does to the infected
    /// host: "turns itself into a beacon").
    pub fn set_discoverable(&mut self, id: RadioId, discoverable: bool) {
        if let Some(r) = self.radios.get_mut(&id) {
            r.discoverable = discoverable;
        }
    }

    /// Discoverable radios within range of `from` (excluding itself).
    pub fn discover_from(&self, from: RadioId) -> Vec<RadioId> {
        let Some(origin) = self.radios.get(&from) else { return Vec::new() };
        self.radios
            .iter()
            .filter(|(id, r)| {
                **id != from && r.discoverable && dist(origin.x, origin.y, r.x, r.y) <= self.range_m
            })
            .map(|(id, _)| *id)
            .collect()
    }

    /// Radios (discoverable or not) that can *see* a beacon at `id` — i.e.
    /// who learns the victim's presence once BEETLEJUICE beacons.
    pub fn observers_of(&self, id: RadioId) -> Vec<RadioId> {
        let Some(beacon) = self.radios.get(&id) else { return Vec::new() };
        if !beacon.discoverable {
            return Vec::new();
        }
        self.radios
            .iter()
            .filter(|(other, r)| **other != id && dist(beacon.x, beacon.y, r.x, r.y) <= self.range_m)
            .map(|(other, _)| *other)
            .collect()
    }

    /// Estimated position of a radio from three observers (trilateration is
    /// modelled as exact — the paper's point is *that* physical location
    /// leaks, not the geometry error).
    pub fn leak_position(&self, id: RadioId) -> Option<(f64, f64)> {
        let r = self.radios.get(&id)?;
        if !self.observers_of(id).is_empty() {
            Some((r.x, r.y))
        } else {
            None
        }
    }

    /// Total number of radios.
    pub fn len(&self) -> usize {
        self.radios.len()
    }

    /// True when the plane has no radios.
    pub fn is_empty(&self) -> bool {
        self.radios.is_empty()
    }
}

fn dist(x1: f64, y1: f64, x2: f64, y2: f64) -> f64 {
    ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone(name: &str, x: f64, y: f64) -> Radio {
        Radio {
            kind: RadioKind::Phone,
            name: name.into(),
            x,
            y,
            discoverable: true,
            contacts: vec![format!("{name}-contact")],
        }
    }

    fn adapter(x: f64, y: f64) -> Radio {
        Radio {
            kind: RadioKind::HostAdapter,
            name: "host".into(),
            x,
            y,
            discoverable: false,
            contacts: vec![],
        }
    }

    #[test]
    fn discovery_respects_range() {
        let mut p = BluetoothPlane::new(10.0);
        let host = p.add(adapter(0.0, 0.0));
        let near = p.add(phone("near", 6.0, 8.0)); // dist 10 — inclusive
        let _far = p.add(phone("far", 60.0, 80.0));
        assert_eq!(p.discover_from(host), vec![near]);
    }

    #[test]
    fn non_discoverable_radios_hidden() {
        let mut p = BluetoothPlane::new(10.0);
        let host = p.add(adapter(0.0, 0.0));
        let shy = p.add(phone("shy", 1.0, 1.0));
        p.set_discoverable(shy, false);
        assert!(p.discover_from(host).is_empty());
    }

    #[test]
    fn beaconing_exposes_the_host() {
        let mut p = BluetoothPlane::new(10.0);
        let host = p.add(adapter(0.0, 0.0));
        let watcher = p.add(phone("watcher", 2.0, 0.0));
        assert!(p.observers_of(host).is_empty(), "not discoverable yet");
        assert_eq!(p.leak_position(host), None);
        p.set_discoverable(host, true);
        assert_eq!(p.observers_of(host), vec![watcher]);
        assert_eq!(p.leak_position(host), Some((0.0, 0.0)));
    }

    #[test]
    fn contacts_are_harvestable() {
        let mut p = BluetoothPlane::new(10.0);
        let host = p.add(adapter(0.0, 0.0));
        let phone_id = p.add(phone("boss", 3.0, 0.0));
        let found = p.discover_from(host);
        assert_eq!(found, vec![phone_id]);
        let contacts: Vec<&str> =
            found.iter().flat_map(|id| p.radio(*id).unwrap().contacts.iter().map(String::as_str)).collect();
        assert_eq!(contacts, vec!["boss-contact"]);
    }

    #[test]
    fn missing_radio_is_safe() {
        let p = BluetoothPlane::new(10.0);
        assert!(p.discover_from(RadioId::new(9)).is_empty());
        assert!(p.observers_of(RadioId::new(9)).is_empty());
        assert!(p.is_empty());
    }
}
