//! DNS registry with registrant metadata and takedown support.
//!
//! The Flame C&C platform registered ~80 domains under fake identities
//! (addresses mostly in Germany and Austria) across many registrars, all
//! resolving to ~22 server IPs. Modelling registration metadata and
//! takedowns lets experiment E6 sweep takedown pressure against C&C
//! reachability.

use std::collections::BTreeMap;
use std::fmt;

use malsim_kernel::fault::FaultPlane;
use malsim_kernel::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::addr::{Domain, Ipv4};

/// Typed resolution failure, distinguishing *why* a lookup found nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsError {
    /// The domain was never registered.
    NxDomain,
    /// The record exists but has been seized/taken down.
    TakenDown,
    /// A scheduled fault window is suppressing resolution right now.
    Outage,
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NxDomain => write!(f, "no such domain"),
            DnsError::TakenDown => write!(f, "domain taken down"),
            DnsError::Outage => write!(f, "dns outage"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Who registered a domain (fake identities, per the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registrant {
    /// Registrant name as filed.
    pub name: String,
    /// Country of the (fake) address.
    pub country: String,
    /// Registrar used.
    pub registrar: String,
}

/// One DNS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// Resolved address.
    pub ip: Ipv4,
    /// Registration metadata.
    pub registrant: Registrant,
    /// Whether the record has been seized/taken down.
    pub taken_down: bool,
}

/// The (global) name system.
///
/// # Examples
///
/// ```
/// use malsim_net::addr::{Domain, Ipv4};
/// use malsim_net::dns::{Dns, Registrant};
///
/// let mut dns = Dns::new();
/// let d = Domain::new("www.todayfutbol.com");
/// dns.register(d.clone(), Ipv4::new(203, 0, 113, 7), Registrant {
///     name: "J. Doe".into(), country: "DE".into(), registrar: "reg-a".into(),
/// });
/// assert_eq!(dns.resolve(&d), Some(Ipv4::new(203, 0, 113, 7)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dns {
    records: BTreeMap<Domain, DnsRecord>,
}

impl Dns {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Dns::default()
    }

    /// Registers (or replaces) a record.
    pub fn register(&mut self, domain: Domain, ip: Ipv4, registrant: Registrant) {
        self.records.insert(domain, DnsRecord { ip, registrant, taken_down: false });
    }

    /// Resolves a domain; `None` when unregistered or taken down.
    pub fn resolve(&self, domain: &Domain) -> Option<Ipv4> {
        self.records.get(domain).filter(|r| !r.taken_down).map(|r| r.ip)
    }

    /// Fault-aware resolution with a typed failure reason.
    ///
    /// Consults the fault plane for DNS-outage windows matching the domain
    /// (or `"*"`). With an empty plane this reduces to [`Dns::resolve`] plus
    /// one branch, and draws no randomness.
    pub fn try_resolve(&self, domain: &Domain, faults: &FaultPlane, now: SimTime) -> Result<Ipv4, DnsError> {
        if faults.dns_outage_at(domain.as_str(), now) {
            return Err(DnsError::Outage);
        }
        match self.records.get(domain) {
            None => Err(DnsError::NxDomain),
            Some(r) if r.taken_down => Err(DnsError::TakenDown),
            Some(r) => Ok(r.ip),
        }
    }

    /// Marks a domain as taken down. Returns whether the domain existed.
    pub fn take_down(&mut self, domain: &Domain) -> bool {
        match self.records.get_mut(domain) {
            Some(r) => {
                r.taken_down = true;
                true
            }
            None => false,
        }
    }

    /// The raw record (even if taken down).
    pub fn record(&self, domain: &Domain) -> Option<&DnsRecord> {
        self.records.get(domain)
    }

    /// All registered domains.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.records.keys()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no domain is registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct IPs that still have at least one live domain pointing at
    /// them.
    pub fn live_ips(&self) -> Vec<Ipv4> {
        let mut ips: Vec<Ipv4> = self.records.values().filter(|r| !r.taken_down).map(|r| r.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(country: &str) -> Registrant {
        Registrant { name: "fake".into(), country: country.into(), registrar: "r".into() }
    }

    #[test]
    fn register_resolve_takedown() {
        let mut dns = Dns::new();
        let d = Domain::new("example.com");
        dns.register(d.clone(), Ipv4::new(1, 2, 3, 4), reg("DE"));
        assert_eq!(dns.resolve(&d), Some(Ipv4::new(1, 2, 3, 4)));
        assert!(dns.take_down(&d));
        assert_eq!(dns.resolve(&d), None);
        assert!(dns.record(&d).unwrap().taken_down);
        assert!(!dns.take_down(&Domain::new("missing.com")));
    }

    #[test]
    fn live_ips_deduplicates() {
        let mut dns = Dns::new();
        for (i, name) in ["a.com", "b.com", "c.com"].iter().enumerate() {
            let ip = if i < 2 { Ipv4::new(9, 9, 9, 9) } else { Ipv4::new(8, 8, 8, 8) };
            dns.register(Domain::new(name), ip, reg("AT"));
        }
        assert_eq!(dns.live_ips().len(), 2);
        dns.take_down(&Domain::new("c.com"));
        assert_eq!(dns.live_ips(), vec![Ipv4::new(9, 9, 9, 9)]);
        assert_eq!(dns.len(), 3);
    }

    #[test]
    fn unresolved_unknown_domain() {
        let dns = Dns::new();
        assert_eq!(dns.resolve(&Domain::new("nope.org")), None);
        assert!(dns.is_empty());
    }

    #[test]
    fn try_resolve_distinguishes_failure_modes() {
        use malsim_kernel::rng::SimRng;
        use malsim_kernel::time::SimDuration;

        let mut dns = Dns::new();
        let live = Domain::new("live.example.com");
        let seized = Domain::new("seized.example.com");
        dns.register(live.clone(), Ipv4::new(1, 1, 1, 1), reg("DE"));
        dns.register(seized.clone(), Ipv4::new(2, 2, 2, 2), reg("AT"));
        dns.take_down(&seized);

        let mut faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        let t0 = SimTime::EPOCH;
        assert_eq!(dns.try_resolve(&live, &faults, t0), Ok(Ipv4::new(1, 1, 1, 1)));
        assert_eq!(dns.try_resolve(&seized, &faults, t0), Err(DnsError::TakenDown));
        assert_eq!(dns.try_resolve(&Domain::new("nope.org"), &faults, t0), Err(DnsError::NxDomain));

        // An outage window beats the record while active, then clears.
        faults.dns_outage(live.as_str(), t0, t0 + SimDuration::from_hours(1));
        assert_eq!(dns.try_resolve(&live, &faults, t0), Err(DnsError::Outage));
        let after = t0 + SimDuration::from_hours(2);
        assert_eq!(dns.try_resolve(&live, &faults, after), Ok(Ipv4::new(1, 1, 1, 1)));

        // Global outage via the wildcard target.
        faults.dns_outage("*", after, after + SimDuration::from_hours(1));
        assert_eq!(dns.try_resolve(&live, &faults, after), Err(DnsError::Outage));
    }
}
