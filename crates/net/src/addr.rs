//! Addresses and names.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An IPv4 address.
///
/// # Examples
///
/// ```
/// use malsim_net::addr::Ipv4;
///
/// let ip = Ipv4::new(192, 168, 1, 10);
/// assert_eq!(ip.to_string(), "192.168.1.10");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4(u32);

impl Ipv4 {
    /// Creates an address from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from a raw big-endian u32.
    pub const fn from_u32(raw: u32) -> Self {
        Ipv4(raw)
    }

    /// The octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A DNS domain name (case-insensitive).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain(String);

impl Domain {
    /// Creates a domain, folding to lowercase.
    pub fn new(name: impl AsRef<str>) -> Self {
        Domain(name.as_ref().to_lowercase())
    }

    /// The name as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Domain {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Domain {}
impl PartialOrd for Domain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Domain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}
impl std::hash::Hash for Domain {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Domain {
    fn from(s: &str) -> Self {
        Domain::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_display_and_octets() {
        let ip = Ipv4::new(10, 0, 0, 255);
        assert_eq!(ip.to_string(), "10.0.0.255");
        assert_eq!(ip.octets(), [10, 0, 0, 255]);
        assert_eq!(Ipv4::from_u32(u32::from_be_bytes([1, 2, 3, 4])), Ipv4::new(1, 2, 3, 4));
    }

    #[test]
    fn domains_fold_case() {
        assert_eq!(Domain::new("WWW.MyPremierFutbol.COM"), Domain::new("www.mypremierfutbol.com"));
        assert_eq!(Domain::new("A.b").to_string(), "a.b");
    }
}
