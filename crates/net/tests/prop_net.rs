//! Property tests for the network substrate: topology invariants, DNS
//! takedown semantics, and proxy resolution.

use malsim_net::prelude::*;
use malsim_os::host::HostId;
use proptest::prelude::*;

proptest! {
    #[test]
    fn placement_partitions_hosts(
        moves in proptest::collection::vec((0usize..50, 0usize..5), 1..200)
    ) {
        let mut topo = Topology::new();
        let zones: Vec<ZoneId> = (0..5).map(|i| topo.add_zone(format!("z{i}"), i % 2 == 0)).collect();
        for (host, zone) in &moves {
            topo.place(HostId::new(*host), zones[*zone]);
        }
        // Every placed host appears in exactly one zone's list.
        let mut seen = std::collections::BTreeMap::new();
        for (zid, zone) in topo.zones() {
            for h in zone.hosts() {
                prop_assert!(seen.insert(*h, zid).is_none(), "host {h} in two zones");
            }
        }
        // zone_of agrees with the lists.
        for (h, zid) in &seen {
            prop_assert_eq!(topo.zone_of(*h), Some(*zid));
        }
        prop_assert_eq!(topo.host_count(), seen.len());
    }

    #[test]
    fn peers_are_symmetric_and_exclude_self(
        placements in proptest::collection::vec((0usize..30, 0usize..3), 1..60)
    ) {
        let mut topo = Topology::new();
        let zones: Vec<ZoneId> = (0..3).map(|i| topo.add_zone(format!("z{i}"), true)).collect();
        for (host, zone) in &placements {
            topo.place(HostId::new(*host), zones[*zone]);
        }
        for (h, _) in placements.iter() {
            let h = HostId::new(*h);
            let peers = topo.peers_of(h);
            prop_assert!(!peers.contains(&h));
            for p in &peers {
                prop_assert!(topo.peers_of(*p).contains(&h), "asymmetric peers");
                prop_assert!(topo.same_zone(h, *p));
            }
        }
    }

    #[test]
    fn dns_takedown_exactly_silences_taken_domains(
        n in 1usize..60,
        down in proptest::collection::btree_set(0usize..60, 0..30),
    ) {
        let mut dns = Dns::new();
        for i in 0..n {
            dns.register(
                Domain::new(format!("d{i}.example")),
                Ipv4::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                Registrant { name: "x".into(), country: "DE".into(), registrar: "r".into() },
            );
        }
        for i in &down {
            dns.take_down(&Domain::new(format!("d{i}.example")));
        }
        for i in 0..n {
            let resolved = dns.resolve(&Domain::new(format!("d{i}.example")));
            prop_assert_eq!(resolved.is_none(), down.contains(&i), "domain {}", i);
        }
        let expected_live = n - down.iter().filter(|i| **i < n).count();
        prop_assert_eq!(dns.live_ips().len(), expected_live);
    }

    #[test]
    fn proxy_resolution_requires_all_three_conditions(
        claimant_placed in any::<bool>(),
        client_wpad in any::<bool>(),
        same_zone in any::<bool>(),
    ) {
        let mut topo = Topology::new();
        let z1 = topo.add_zone("a", true);
        let z2 = topo.add_zone("b", true);
        let claimant = HostId::new(0);
        let client = HostId::new(1);
        topo.place(client, z1);
        if claimant_placed {
            topo.place(claimant, if same_zone { z1 } else { z2 });
            topo.claim_wpad(claimant);
        }
        let proxy = topo.effective_proxy(client, client_wpad);
        let expected = claimant_placed && client_wpad && same_zone;
        prop_assert_eq!(proxy.is_some(), expected);
    }

    #[test]
    fn http_request_line_contains_all_parts(
        host in "[a-z]{1,10}\\.[a-z]{2,4}",
        path in "/[a-z]{0,10}",
        kvs in proptest::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{1,6}", 0..4),
    ) {
        let mut req = HttpRequest::get(Domain::new(&host), path.clone());
        for (k, v) in &kvs {
            req = req.with_query(k.clone(), v.clone());
        }
        let line = req.request_line();
        prop_assert!(line.contains(&host));
        prop_assert!(line.contains(&path));
        for (k, v) in &kvs {
            let pair = format!("{k}={v}");
            prop_assert!(line.contains(&pair));
        }
        prop_assert!(req.wire_size() >= line.len());
    }
}
