//! # malsim-defense
//!
//! Defensive instrumentation for the `malsim` workspace: the security
//! products the modelled campaigns had to evade, plus the forensic analysis
//! their suicide modules were designed to defeat.
//!
//! - [`av`] — an antivirus engine with the three channels that mattered in
//!   the paper's narrative: content-hash signatures (shipped after public
//!   analysis), structural heuristics (suspicious imports, encrypted
//!   resources, unsigned drivers), and a behaviour budget that aggressive
//!   spreading blows but "do-not-disturb" malware stays under;
//! - [`ids`] — a passive network sensor with domain blacklists, request
//!   patterns, and bulk-upload thresholds;
//! - [`forensics`] — an offline indicator sweep producing a recovery score,
//!   used to quantify the effect of SUICIDE/LogWiper anti-forensics;
//! - [`sinkhole`] — the coordinated C&C takedown action: seizures flip DNS
//!   records and file permanent windows in the kernel's fault plane.
//!
//! # Examples
//!
//! ```
//! use malsim_defense::prelude::*;
//! use malsim_net::addr::Domain;
//! use malsim_net::http::HttpRequest;
//!
//! let mut ids = Ids::new();
//! ids.add_rule(IdsRule::RequestPattern("ADD_ENTRY".into()));
//! let beacon = HttpRequest::get(Domain::new("c2.example"), "/newsforyou")
//!     .with_query("cmd", "ADD_ENTRY");
//! assert!(ids.inspect(&beacon).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod av;
pub mod forensics;
pub mod ids;
pub mod sinkhole;

/// Commonly used items.
pub mod prelude {
    pub use crate::av::{Antivirus, ScanVerdict};
    pub use crate::forensics::{analyze_host, ForensicReport, Indicator};
    pub use crate::ids::{Ids, IdsAlert, IdsRule};
    pub use crate::sinkhole::SinkholeCampaign;
}
