//! Post-incident forensic analysis of a host.
//!
//! Experiment E12 measures what the paper's §V-F asserts: suicide modules
//! make forensics "very difficult". The analyzer sweeps a host for a set of
//! indicators of compromise and scores how much of the intrusion is still
//! reconstructable. Running it before and after a SUICIDE wipe quantifies
//! the difference.

use malsim_os::host::Host;
use malsim_os::path::WinPath;

/// One indicator of compromise to look for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Indicator {
    /// A file expected at (or under) a path.
    File(WinPath),
    /// A service by name.
    Service(String),
    /// A loaded driver by name.
    Driver(String),
    /// A registry key.
    RegistryKey(String),
}

/// What the analyst found for one indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The indicator searched for.
    pub indicator: Indicator,
    /// Whether evidence was recovered.
    pub recovered: bool,
}

/// The analyst's report.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicReport {
    /// Per-indicator findings.
    pub findings: Vec<Finding>,
}

impl ForensicReport {
    /// Fraction of indicators recovered, in `[0, 1]`; 1.0 for an empty
    /// indicator list (nothing sought, nothing missing).
    pub fn recovery_score(&self) -> f64 {
        if self.findings.is_empty() {
            return 1.0;
        }
        let hit = self.findings.iter().filter(|f| f.recovered).count();
        hit as f64 / self.findings.len() as f64
    }

    /// Indicators that were recovered.
    pub fn recovered(&self) -> impl Iterator<Item = &Indicator> {
        self.findings.iter().filter(|f| f.recovered).map(|f| &f.indicator)
    }
}

/// Sweeps a host for the given indicators. The sweep sees hidden files
/// (an offline disk image is not fooled by runtime rootkits) but obviously
/// cannot see deleted ones.
pub fn analyze_host(host: &Host, indicators: &[Indicator]) -> ForensicReport {
    let findings = indicators
        .iter()
        .map(|ind| {
            let recovered = match ind {
                Indicator::File(path) => host.fs.exists(path),
                Indicator::Service(name) => host.services.service(name).is_some(),
                Indicator::Driver(name) => host.drivers().iter().any(|d| &d.name == name),
                Indicator::RegistryKey(key) => host.registry.get(key).is_some(),
            };
            Finding { indicator: ind.clone(), recovered }
        })
        .collect();
    ForensicReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::time::SimTime;
    use malsim_os::fs::FileData;
    use malsim_os::host::{HostRole, WindowsVersion};

    fn t0() -> SimTime {
        SimTime::EPOCH
    }

    fn infected_host() -> Host {
        let mut h = Host::new("victim", WindowsVersion::Seven, HostRole::Workstation, t0());
        let payload = WinPath::expand(r"%system%\mssecmgr.ocx");
        h.fs.write(&payload, FileData::Bytes(vec![0; 1024]), t0()).unwrap();
        h.fs.set_hidden(&payload, true).unwrap();
        h.services.create_service("WSvc", payload.clone(), true, t0()).unwrap();
        h.registry.set(r"HKLM\Software\Run\WSvc", "autostart");
        h
    }

    fn indicators() -> Vec<Indicator> {
        vec![
            Indicator::File(WinPath::expand(r"%system%\mssecmgr.ocx")),
            Indicator::Service("WSvc".into()),
            Indicator::RegistryKey(r"HKLM\Software\Run\WSvc".into()),
            Indicator::Driver("mrxcls.sys".into()),
        ]
    }

    #[test]
    fn finds_planted_artifacts_including_hidden() {
        let h = infected_host();
        let report = analyze_host(&h, &indicators());
        assert_eq!(report.recovery_score(), 0.75, "3 of 4 indicators present");
        assert_eq!(report.recovered().count(), 3);
    }

    #[test]
    fn wiped_host_scores_low() {
        let mut h = infected_host();
        // SUICIDE: remove every artifact.
        let payload = WinPath::expand(r"%system%\mssecmgr.ocx");
        h.fs.delete(&payload).unwrap();
        h.services.delete_service("WSvc").unwrap();
        h.registry.delete(r"HKLM\Software\Run\WSvc");
        let report = analyze_host(&h, &indicators());
        assert_eq!(report.recovery_score(), 0.0);
    }

    #[test]
    fn empty_indicator_list() {
        let h = infected_host();
        let report = analyze_host(&h, &[]);
        assert_eq!(report.recovery_score(), 1.0);
    }
}
