//! Network intrusion detection: rule matching over HTTP traffic.

use malsim_net::addr::Domain;
use malsim_net::http::HttpRequest;

/// One IDS rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdsRule {
    /// Alert when the request targets this domain.
    DomainBlacklist(Domain),
    /// Alert when the rendered request line contains this substring.
    RequestPattern(String),
    /// Alert when a single request body exceeds this many bytes
    /// (bulk-exfiltration indicator).
    BodyLarger(usize),
}

/// An alert produced by the sensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdsAlert {
    /// Index of the matching rule.
    pub rule_index: usize,
    /// Human-readable description.
    pub description: String,
}

/// A passive network sensor.
///
/// # Examples
///
/// ```
/// use malsim_defense::ids::{Ids, IdsRule};
/// use malsim_net::addr::Domain;
/// use malsim_net::http::HttpRequest;
///
/// let mut ids = Ids::new();
/// ids.add_rule(IdsRule::DomainBlacklist(Domain::new("www.mypremierfutbol.com")));
/// let req = HttpRequest::get(Domain::new("www.mypremierfutbol.com"), "/index.php");
/// assert!(ids.inspect(&req).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ids {
    rules: Vec<IdsRule>,
    alerts: Vec<IdsAlert>,
    inspected: u64,
}

impl Ids {
    /// Creates a sensor with no rules.
    pub fn new() -> Self {
        Ids::default()
    }

    /// Adds a rule, returning its index.
    pub fn add_rule(&mut self, rule: IdsRule) -> usize {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Inspects one request; records and returns an alert on first match.
    pub fn inspect(&mut self, request: &HttpRequest) -> Option<IdsAlert> {
        self.inspected += 1;
        let line = request.request_line();
        for (i, rule) in self.rules.iter().enumerate() {
            let hit = match rule {
                IdsRule::DomainBlacklist(d) => request.host == *d,
                IdsRule::RequestPattern(p) => line.contains(p.as_str()),
                IdsRule::BodyLarger(n) => request.body.len() > *n,
            };
            if hit {
                let alert = IdsAlert { rule_index: i, description: format!("rule {i} matched: {line}") };
                self.alerts.push(alert.clone());
                return Some(alert);
            }
        }
        None
    }

    /// All alerts so far.
    pub fn alerts(&self) -> &[IdsAlert] {
        &self.alerts
    }

    /// Requests inspected.
    pub fn inspected(&self) -> u64 {
        self.inspected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_blacklist() {
        let mut ids = Ids::new();
        ids.add_rule(IdsRule::DomainBlacklist(Domain::new("evil.example")));
        assert!(ids.inspect(&HttpRequest::get(Domain::new("EVIL.example"), "/")).is_some());
        assert!(ids.inspect(&HttpRequest::get(Domain::new("ok.example"), "/")).is_none());
        assert_eq!(ids.inspected(), 2);
        assert_eq!(ids.alerts().len(), 1);
    }

    #[test]
    fn request_pattern() {
        let mut ids = Ids::new();
        ids.add_rule(IdsRule::RequestPattern("GET_NEWS".into()));
        let req = HttpRequest::get(Domain::new("c2.example"), "/newsforyou").with_query("cmd", "GET_NEWS");
        assert!(ids.inspect(&req).is_some());
    }

    #[test]
    fn body_size_threshold() {
        let mut ids = Ids::new();
        ids.add_rule(IdsRule::BodyLarger(1_000));
        let small = HttpRequest::post(Domain::new("x.example"), "/u", vec![0; 100]);
        let big = HttpRequest::post(Domain::new("x.example"), "/u", vec![0; 10_000]);
        assert!(ids.inspect(&small).is_none());
        assert!(ids.inspect(&big).is_some());
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut ids = Ids::new();
        ids.add_rule(IdsRule::RequestPattern("/a".into()));
        ids.add_rule(IdsRule::DomainBlacklist(Domain::new("both.example")));
        let req = HttpRequest::get(Domain::new("both.example"), "/a");
        assert_eq!(ids.inspect(&req).unwrap().rule_index, 0);
    }
}
