//! Antivirus engine: signature, heuristic, and behavioural detection.
//!
//! The paper's §III stresses that Flame *avoided* classic evasion
//! (packing, obfuscation) and instead moved slowly and watched the security
//! products (the adventcfg module). To reproduce that dynamic, this engine
//! exposes the three detection channels the campaigns had to contend with:
//!
//! 1. **Signature** matches against known image content hashes — what killed
//!    variants after public reports.
//! 2. **Heuristics** over image structure: suspicious imports, encrypted
//!    resources, unsigned binaries in system paths.
//! 3. **Behaviour budget**: each noisy action (file drop, service creation,
//!    network beacon) spends points; exceeding the scan-interval budget
//!    triggers a behavioural alert. Stealthy malware stays under it —
//!    aggressive malware (or ablations with "do-not-disturb" off) does not.

use std::collections::BTreeSet;

use malsim_pe::image::Image;

/// Verdict for one scanned object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanVerdict {
    /// Nothing suspicious.
    Clean,
    /// Content hash matched a known-bad signature.
    SignatureMatch {
        /// Name of the matched signature.
        name: String,
    },
    /// Structural heuristics fired.
    Heuristic {
        /// The reasons, in order of evaluation.
        reasons: Vec<String>,
    },
}

impl ScanVerdict {
    /// Whether the verdict is a detection.
    pub fn is_detection(&self) -> bool {
        !matches!(self, ScanVerdict::Clean)
    }
}

/// Import names the heuristic layer considers dangerous.
const SUSPICIOUS_IMPORTS: &[&str] =
    &["WriteRawSectors", "SetWindowsHookEx", "WriteProcessMemory", "NtLoadDriver"];

/// A signature + heuristic + behaviour antivirus engine.
///
/// # Examples
///
/// ```
/// use malsim_defense::av::{Antivirus, ScanVerdict};
/// use malsim_pe::builder::ImageBuilder;
/// use malsim_pe::image::Machine;
///
/// let mut av = Antivirus::new(10.0);
/// let img = ImageBuilder::new("notepad.exe", Machine::X86).build();
/// assert_eq!(av.scan_image(&img), ScanVerdict::Clean);
/// av.add_signature("W32.Disttrack", img.content_hash());
/// assert!(av.scan_image(&img).is_detection());
/// ```
#[derive(Debug, Clone)]
pub struct Antivirus {
    signatures: Vec<(String, u64)>,
    /// Behaviour points accumulated since the last interval reset.
    behaviour_points: f64,
    /// Points per interval that trigger a behavioural alert.
    behaviour_budget: f64,
    behavioural_alerts: u32,
    /// Process names the heuristics whitelist (the engine's own, system).
    whitelist: BTreeSet<String>,
}

impl Antivirus {
    /// Creates an engine with the given behaviour budget per interval.
    pub fn new(behaviour_budget: f64) -> Self {
        Antivirus {
            signatures: Vec::new(),
            behaviour_points: 0.0,
            behaviour_budget,
            behavioural_alerts: 0,
            whitelist: ["explorer.exe", "svchost.exe"].iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds a content-hash signature (what vendors ship after analysis).
    pub fn add_signature(&mut self, name: impl Into<String>, content_hash: u64) {
        self.signatures.push((name.into(), content_hash));
    }

    /// Number of known signatures.
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }

    /// Scans an image: signatures first, then structural heuristics.
    pub fn scan_image(&self, image: &Image) -> ScanVerdict {
        let hash = image.content_hash();
        if let Some((name, _)) = self.signatures.iter().find(|(_, h)| *h == hash) {
            return ScanVerdict::SignatureMatch { name: name.clone() };
        }
        let mut reasons = Vec::new();
        for imp in image.imports() {
            if SUSPICIOUS_IMPORTS.contains(&imp.as_str()) {
                reasons.push(format!("suspicious import {imp}"));
            }
        }
        let encrypted = image.resources().iter().filter(|r| r.xor_key.is_some()).count();
        if encrypted >= 2 {
            reasons.push(format!("{encrypted} encrypted resources"));
        }
        if image.signature().is_none() && image.name().to_lowercase().ends_with(".sys") {
            reasons.push("unsigned driver image".to_owned());
        }
        if reasons.is_empty() {
            ScanVerdict::Clean
        } else {
            ScanVerdict::Heuristic { reasons }
        }
    }

    /// Records a noisy action by a process. Returns `true` when this action
    /// pushed the interval over budget (a behavioural alert).
    pub fn observe_behaviour(&mut self, process: &str, points: f64) -> bool {
        if self.whitelist.contains(process) {
            return false;
        }
        self.behaviour_points += points;
        if self.behaviour_points > self.behaviour_budget {
            self.behaviour_points = 0.0;
            self.behavioural_alerts += 1;
            true
        } else {
            false
        }
    }

    /// Resets the interval (called by the scenario on the engine's scan
    /// cadence).
    pub fn reset_interval(&mut self) {
        self.behaviour_points = 0.0;
    }

    /// Behaviour points currently accumulated.
    pub fn behaviour_points(&self) -> f64 {
        self.behaviour_points
    }

    /// Total behavioural alerts raised.
    pub fn behavioural_alerts(&self) -> u32 {
        self.behavioural_alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_pe::builder::ImageBuilder;
    use malsim_pe::image::Machine;
    use malsim_pe::xor::XorKey;

    #[test]
    fn clean_image_is_clean() {
        let av = Antivirus::new(10.0);
        let img = ImageBuilder::new("calc.exe", Machine::X86).import("CreateWindowW").build();
        assert_eq!(av.scan_image(&img), ScanVerdict::Clean);
    }

    #[test]
    fn signature_match_beats_heuristics() {
        let mut av = Antivirus::new(10.0);
        let img = ImageBuilder::new("TrkSvr.exe", Machine::X86).import("WriteRawSectors").build();
        av.add_signature("W32.Disttrack", img.content_hash());
        assert_eq!(av.scan_image(&img), ScanVerdict::SignatureMatch { name: "W32.Disttrack".into() });
        assert_eq!(av.signature_count(), 1);
    }

    #[test]
    fn heuristics_fire_on_shamoon_shape() {
        let av = Antivirus::new(10.0);
        let img = ImageBuilder::new("TrkSvr.exe", Machine::X86)
            .resource_encrypted("PKCS12", XorKey::new(1), vec![1; 32])
            .resource_encrypted("PKCS7", XorKey::new(2), vec![2; 32])
            .import("WriteRawSectors")
            .build();
        let ScanVerdict::Heuristic { reasons } = av.scan_image(&img) else {
            panic!("expected heuristic");
        };
        assert!(reasons.iter().any(|r| r.contains("WriteRawSectors")));
        assert!(reasons.iter().any(|r| r.contains("encrypted resources")));
    }

    #[test]
    fn unsigned_driver_heuristic() {
        let av = Antivirus::new(10.0);
        let img = ImageBuilder::new("mrxcls.sys", Machine::X86).build();
        assert!(av.scan_image(&img).is_detection());
        let mut signed = ImageBuilder::new("mrxcls.sys", Machine::X86).build();
        signed.set_signature(vec![1, 2, 3]);
        assert_eq!(av.scan_image(&signed), ScanVerdict::Clean);
    }

    #[test]
    fn behaviour_budget() {
        let mut av = Antivirus::new(10.0);
        // Stealthy: small actions stay under budget.
        for _ in 0..9 {
            assert!(!av.observe_behaviour("malware.exe", 1.0));
        }
        av.reset_interval();
        assert_eq!(av.behavioural_alerts(), 0);
        // Aggressive: blows the budget.
        assert!(!av.observe_behaviour("malware.exe", 8.0));
        assert!(av.observe_behaviour("malware.exe", 8.0));
        assert_eq!(av.behavioural_alerts(), 1);
        assert_eq!(av.behaviour_points(), 0.0, "alert resets the meter");
    }

    #[test]
    fn whitelisted_processes_ignored() {
        let mut av = Antivirus::new(1.0);
        assert!(!av.observe_behaviour("explorer.exe", 100.0));
        assert_eq!(av.behaviour_points(), 0.0);
    }
}
