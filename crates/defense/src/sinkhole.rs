//! Sinkholing: the defender-side C&C takedown action.
//!
//! When Flame became public, registrars and researchers seized its domains
//! and pointed them at sinkholes; hosting providers pulled servers. This
//! module models that response as one coordinated campaign object: each
//! seizure flips the DNS record and files a permanent
//! [`FaultKind::ServerTakedown`](malsim_kernel::fault::FaultKind) window in
//! the fault plane, so every fault-aware consumer (beacons, USB ferry
//! uploads) sees the takedown from the same source of truth.

use malsim_kernel::fault::FaultPlane;
use malsim_kernel::time::SimTime;
use malsim_net::addr::{Domain, Ipv4};
use malsim_net::dns::Dns;

/// A coordinated takedown/sinkhole operation.
///
/// # Examples
///
/// ```
/// use malsim_defense::sinkhole::SinkholeCampaign;
/// use malsim_kernel::fault::FaultPlane;
/// use malsim_kernel::rng::SimRng;
/// use malsim_kernel::time::SimTime;
/// use malsim_net::addr::{Domain, Ipv4};
/// use malsim_net::dns::{Dns, Registrant};
///
/// let mut dns = Dns::new();
/// let d = Domain::new("cdn-7.example-news.com");
/// dns.register(d.clone(), Ipv4::new(185, 10, 0, 7), Registrant {
///     name: "fake".into(), country: "DE".into(), registrar: "reg-a".into(),
/// });
/// let mut faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
/// let mut op = SinkholeCampaign::new(Ipv4::new(198, 51, 100, 1));
/// assert!(op.seize_domain(&mut dns, &mut faults, &d, SimTime::EPOCH));
/// assert_eq!(dns.resolve(&d), None);
/// assert!(faults.taken_down_at(d.as_str(), SimTime::EPOCH));
/// ```
#[derive(Debug, Clone)]
pub struct SinkholeCampaign {
    /// Where seized domains now point (the researchers' sinkhole).
    pub sink_ip: Ipv4,
    /// Domains seized so far.
    pub seized_domains: Vec<Domain>,
    /// Server addresses seized so far.
    pub seized_servers: Vec<Ipv4>,
}

impl SinkholeCampaign {
    /// Starts an empty campaign pointing seizures at `sink_ip`.
    pub fn new(sink_ip: Ipv4) -> Self {
        SinkholeCampaign { sink_ip, seized_domains: Vec::new(), seized_servers: Vec::new() }
    }

    /// The fault-plane target name for a seized server (`"c2:<ip>"`),
    /// matching the convention the malware-side consumers query.
    pub fn server_target(ip: Ipv4) -> String {
        format!("c2:{ip}")
    }

    /// Seizes one domain: takes the DNS record down and files a permanent
    /// takedown window under the domain name. Returns whether the domain
    /// existed (an unregistered name is recorded nowhere).
    pub fn seize_domain(
        &mut self,
        dns: &mut Dns,
        faults: &mut FaultPlane,
        domain: &Domain,
        from: SimTime,
    ) -> bool {
        if !dns.take_down(domain) {
            return false;
        }
        faults.takedown(domain.as_str(), from);
        self.seized_domains.push(domain.clone());
        true
    }

    /// Seizes a server address: files a permanent takedown window under
    /// `"c2:<ip>"` so even a still-resolving domain cannot reach it.
    pub fn seize_server(&mut self, faults: &mut FaultPlane, ip: Ipv4, from: SimTime) {
        faults.takedown(Self::server_target(ip), from);
        self.seized_servers.push(ip);
    }

    /// Seizes a server *and* every registered domain resolving to it — the
    /// full takedown of one C&C node. Returns how many domains were seized.
    pub fn seize_server_and_domains(
        &mut self,
        dns: &mut Dns,
        faults: &mut FaultPlane,
        ip: Ipv4,
        from: SimTime,
    ) -> usize {
        let pointing: Vec<Domain> = dns
            .domains()
            .filter(|d| dns.record(d).is_some_and(|r| r.ip == ip && !r.taken_down))
            .cloned()
            .collect();
        for d in &pointing {
            self.seize_domain(dns, faults, d, from);
        }
        self.seize_server(faults, ip, from);
        pointing.len()
    }

    /// Number of seizure actions taken so far.
    pub fn actions(&self) -> usize {
        self.seized_domains.len() + self.seized_servers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malsim_kernel::rng::SimRng;
    use malsim_net::dns::Registrant;

    fn reg() -> Registrant {
        Registrant { name: "fake".into(), country: "DE".into(), registrar: "r".into() }
    }

    fn plane() -> FaultPlane {
        FaultPlane::new(SimRng::seed_from(9).fork("fault-plane"))
    }

    #[test]
    fn seizing_a_domain_updates_dns_and_plane() {
        let mut dns = Dns::new();
        let d = Domain::new("bad.example.com");
        dns.register(d.clone(), Ipv4::new(185, 10, 0, 1), reg());
        let mut faults = plane();
        let mut op = SinkholeCampaign::new(Ipv4::new(198, 51, 100, 1));
        assert!(op.seize_domain(&mut dns, &mut faults, &d, SimTime::EPOCH));
        assert_eq!(dns.resolve(&d), None);
        assert!(faults.taken_down_at(d.as_str(), SimTime::EPOCH));
        assert_eq!(op.actions(), 1);
        assert!(!op.seize_domain(&mut dns, &mut faults, &Domain::new("no.example"), SimTime::EPOCH));
        assert_eq!(op.actions(), 1, "unregistered domain recorded nowhere");
    }

    #[test]
    fn full_node_takedown_seizes_every_pointing_domain() {
        let mut dns = Dns::new();
        let target = Ipv4::new(185, 10, 0, 2);
        let other = Ipv4::new(185, 10, 0, 3);
        for (name, ip) in [("a.example", target), ("b.example", target), ("c.example", other)] {
            dns.register(Domain::new(name), ip, reg());
        }
        let mut faults = plane();
        let mut op = SinkholeCampaign::new(Ipv4::new(198, 51, 100, 1));
        let n = op.seize_server_and_domains(&mut dns, &mut faults, target, SimTime::EPOCH);
        assert_eq!(n, 2);
        assert_eq!(dns.resolve(&Domain::new("a.example")), None);
        assert_eq!(dns.resolve(&Domain::new("c.example")), Some(other), "other node untouched");
        assert!(faults.taken_down_at(&SinkholeCampaign::server_target(target), SimTime::EPOCH));
        assert!(!faults.taken_down_at(&SinkholeCampaign::server_target(other), SimTime::EPOCH));
        assert_eq!(op.seized_servers.len(), 1);
        assert_eq!(op.seized_domains.len(), 2);
    }
}
