//! Property tests for the defensive layer: AV signature exactness,
//! behaviour-budget accounting, and forensic score bounds.

use malsim_defense::av::{Antivirus, ScanVerdict};
use malsim_defense::forensics::{analyze_host, Indicator};
use malsim_kernel::time::SimTime;
use malsim_os::fs::FileData;
use malsim_os::host::{Host, HostRole, WindowsVersion};
use malsim_os::path::WinPath;
use malsim_pe::builder::ImageBuilder;
use malsim_pe::image::Machine;
use proptest::prelude::*;

proptest! {
    #[test]
    fn signatures_match_exactly_their_image(
        name_a in "[a-z]{3,10}\\.exe",
        name_b in "[a-z]{3,10}\\.exe",
        body_a in proptest::collection::vec(any::<u8>(), 1..100),
        body_b in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        let img_a = ImageBuilder::new(&name_a, Machine::X86)
            .section(".text", malsim_pe::image::SectionKind::Code, body_a.clone())
            .build();
        let img_b = ImageBuilder::new(&name_b, Machine::X86)
            .section(".text", malsim_pe::image::SectionKind::Code, body_b.clone())
            .build();
        let mut av = Antivirus::new(10.0);
        av.add_signature("sig-a", img_a.content_hash());
        let a_matches = matches!(av.scan_image(&img_a), ScanVerdict::SignatureMatch { .. });
        prop_assert!(a_matches);
        if img_a != img_b {
            let b_matches = matches!(av.scan_image(&img_b), ScanVerdict::SignatureMatch { .. });
            prop_assert!(!b_matches);
        }
    }

    #[test]
    fn behaviour_alerts_match_budget_arithmetic(
        budget in 1.0f64..50.0,
        actions in proptest::collection::vec(0.1f64..10.0, 0..100),
    ) {
        let mut av = Antivirus::new(budget);
        let mut alerts = 0u32;
        let mut meter = 0.0f64;
        for a in &actions {
            let fired = av.observe_behaviour("proc.exe", *a);
            meter += a;
            if meter > budget {
                prop_assert!(fired, "expected alert at meter {} budget {}", meter, budget);
                meter = 0.0;
                alerts += 1;
            } else {
                prop_assert!(!fired);
            }
        }
        prop_assert_eq!(av.behavioural_alerts(), alerts);
    }

    #[test]
    fn forensic_score_counts_present_indicators(
        present_files in proptest::collection::btree_set("[a-z]{3,8}\\.dll", 0..6),
        absent_files in proptest::collection::btree_set("[A-Z]{3,8}\\.sys", 0..6),
    ) {
        let mut host = Host::new("h", WindowsVersion::Seven, HostRole::Workstation, SimTime::EPOCH);
        let mut indicators = Vec::new();
        for f in &present_files {
            let p = WinPath::new(format!(r"C:\mal\{f}"));
            host.fs.write(&p, FileData::Bytes(vec![1]), SimTime::EPOCH).unwrap();
            indicators.push(Indicator::File(p));
        }
        for f in &absent_files {
            indicators.push(Indicator::File(WinPath::new(format!(r"C:\mal\{f}"))));
        }
        let report = analyze_host(&host, &indicators);
        let total = present_files.len() + absent_files.len();
        if total == 0 {
            prop_assert_eq!(report.recovery_score(), 1.0);
        } else {
            let expected = present_files.len() as f64 / total as f64;
            prop_assert!((report.recovery_score() - expected).abs() < 1e-12);
        }
        prop_assert_eq!(report.recovered().count(), present_files.len());
    }
}
