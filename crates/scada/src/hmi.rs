//! Operator HMI and the digital safety system — and the record/replay
//! falsification that blinds both.
//!
//! The paper: while the payload runs, Stuxnet feeds previously recorded
//! normal operating frequencies to the PLC operator and to the digital
//! safety system, so everything appears normal while the rotors are driven
//! to destruction. [`TelemetryTap`] models that interposition: in `Record`
//! mode it stores readings; in `Replay` mode it serves the recording instead
//! of live values.

use serde::{Deserialize, Serialize};

use crate::centrifuge::envelope;
use crate::plc::Plc;

/// What the telemetry path is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TapMode {
    /// Pass live values through (and optionally record them).
    Passthrough,
    /// Pass live values through while recording them for later replay.
    Record,
    /// Serve recorded values instead of live ones.
    Replay,
}

/// The interposition point between drive telemetry and its consumers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryTap {
    mode: TapMode,
    recording: Vec<Vec<f64>>,
    replay_cursor: usize,
}

impl Default for TelemetryTap {
    fn default() -> Self {
        TelemetryTap::new()
    }
}

impl TelemetryTap {
    /// Creates a passthrough tap.
    pub fn new() -> Self {
        TelemetryTap { mode: TapMode::Passthrough, recording: Vec::new(), replay_cursor: 0 }
    }

    /// Current mode.
    pub fn mode(&self) -> TapMode {
        self.mode
    }

    /// Switches mode. Entering `Replay` with an empty recording keeps the
    /// tap in its current mode (nothing to serve).
    pub fn set_mode(&mut self, mode: TapMode) {
        if mode == TapMode::Replay && self.recording.is_empty() {
            return;
        }
        self.mode = mode;
        if mode == TapMode::Replay {
            self.replay_cursor = 0;
        }
    }

    /// Number of recorded frames.
    pub fn recorded_frames(&self) -> usize {
        self.recording.len()
    }

    /// Produces the frequencies a consumer sees for this sampling instant.
    pub fn observe(&mut self, plc: &Plc) -> Vec<f64> {
        let live: Vec<f64> = plc.drives().iter().map(|d| d.frequency_hz()).collect();
        match self.mode {
            TapMode::Passthrough => live,
            TapMode::Record => {
                self.recording.push(live.clone());
                live
            }
            TapMode::Replay => {
                let frame = self.recording[self.replay_cursor % self.recording.len()].clone();
                self.replay_cursor += 1;
                frame
            }
        }
    }
}

/// The digital safety system: trips (commands an emergency stop) when any
/// observed frequency leaves the safe envelope.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetySystem {
    tripped: bool,
    observations: u64,
}

impl SafetySystem {
    /// Creates an armed safety system.
    pub fn new() -> Self {
        SafetySystem::default()
    }

    /// Evaluates one telemetry frame; returns whether the system tripped on
    /// this frame. Margins: 5% outside the normal band.
    pub fn evaluate(&mut self, frequencies: &[f64]) -> bool {
        self.observations += 1;
        let low = envelope::NORMAL_MIN_HZ * 0.5;
        let high = envelope::NORMAL_MAX_HZ * 1.05;
        let out_of_band = frequencies.iter().any(|&f| f < low || f > high);
        if out_of_band && !self.tripped {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Whether the system has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// How many frames it has evaluated.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// The operator's display: remembers the last frame and whether anything
/// ever looked abnormal.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorView {
    last_frame: Vec<f64>,
    anomalies_seen: u64,
}

impl OperatorView {
    /// Creates an empty view.
    pub fn new() -> Self {
        OperatorView::default()
    }

    /// Shows a frame to the operator; counts frames that look abnormal
    /// (outside the normal band by eye).
    pub fn show(&mut self, frequencies: &[f64]) {
        let abnormal =
            frequencies.iter().any(|&f| !(envelope::NORMAL_MIN_HZ..=envelope::NORMAL_MAX_HZ).contains(&f));
        if abnormal {
            self.anomalies_seen += 1;
        }
        self.last_frame = frequencies.to_vec();
    }

    /// The last frame shown.
    pub fn last_frame(&self) -> &[f64] {
        &self.last_frame
    }

    /// Frames that looked abnormal to the operator.
    pub fn anomalies_seen(&self) -> u64 {
        self.anomalies_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::{DriveVendor, FrequencyDrive};
    use crate::plc::CommProcessor;

    fn plc_at(freq: f64) -> Plc {
        let mut plc = Plc::new(CommProcessor::Profibus);
        plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, freq));
        plc
    }

    #[test]
    fn passthrough_shows_live_values() {
        let plc = plc_at(1_064.0);
        let mut tap = TelemetryTap::new();
        assert_eq!(tap.observe(&plc), vec![1_064.0]);
        assert_eq!(tap.recorded_frames(), 0);
    }

    #[test]
    fn record_then_replay_masks_live_values() {
        let mut tap = TelemetryTap::new();
        let normal = plc_at(1_064.0);
        tap.set_mode(TapMode::Record);
        for _ in 0..10 {
            tap.observe(&normal);
        }
        assert_eq!(tap.recorded_frames(), 10);
        // The attack begins: live values go wild, tap replays the recording.
        tap.set_mode(TapMode::Replay);
        let attacked = plc_at(1_410.0);
        for _ in 0..25 {
            let seen = tap.observe(&attacked);
            assert_eq!(seen, vec![1_064.0], "operator sees recorded normal values");
        }
    }

    #[test]
    fn replay_requires_a_recording() {
        let mut tap = TelemetryTap::new();
        tap.set_mode(TapMode::Replay);
        assert_eq!(tap.mode(), TapMode::Passthrough, "no recording yet");
    }

    #[test]
    fn safety_trips_on_live_overspeed() {
        let mut safety = SafetySystem::new();
        assert!(!safety.evaluate(&[1_064.0]));
        assert!(safety.evaluate(&[1_410.0]));
        assert!(safety.is_tripped());
        // Trips once; later frames don't re-trip.
        assert!(!safety.evaluate(&[1_500.0]));
        assert_eq!(safety.observations(), 3);
    }

    #[test]
    fn safety_blinded_by_replay() {
        let mut tap = TelemetryTap::new();
        let normal = plc_at(1_064.0);
        tap.set_mode(TapMode::Record);
        for _ in 0..5 {
            tap.observe(&normal);
        }
        tap.set_mode(TapMode::Replay);
        let attacked = plc_at(1_410.0);
        let mut safety = SafetySystem::new();
        for _ in 0..100 {
            let frame = tap.observe(&attacked);
            safety.evaluate(&frame);
        }
        assert!(!safety.is_tripped(), "replayed telemetry never trips the safety system");
    }

    #[test]
    fn operator_counts_anomalies() {
        let mut view = OperatorView::new();
        view.show(&[1_064.0]);
        view.show(&[1_410.0]);
        view.show(&[2.0]);
        assert_eq!(view.anomalies_seen(), 2);
        assert_eq!(view.last_frame(), &[2.0]);
    }
}
