//! A centrifuge cascade: the enrichment plant a PLC controls.
//!
//! A [`Cascade`] pairs each PLC drive with a centrifuge rotor and steps the
//! physics: drive frequencies feed rotor stress and enrichment output. This
//! is the plant-level state experiment E1/E3 measure (intact rotors,
//! cumulative output) before and after the attack.

use serde::{Deserialize, Serialize};

use crate::centrifuge::Centrifuge;
use crate::plc::Plc;

/// A bank of centrifuges, one per PLC drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cascade {
    rotors: Vec<Centrifuge>,
}

impl Cascade {
    /// Creates a cascade sized to the PLC's drive count.
    pub fn for_plc(plc: &Plc) -> Self {
        Cascade { rotors: (0..plc.drives().len()).map(|_| Centrifuge::new()).collect() }
    }

    /// Steps the cascade: advances drives, then feeds each rotor its drive's
    /// frequency for `dt_s` seconds.
    pub fn step(&mut self, plc: &mut Plc, dt_s: f64) {
        plc.step_drives(dt_s);
        for (rotor, drive) in self.rotors.iter_mut().zip(plc.drives()) {
            rotor.step(drive.frequency_hz(), dt_s);
        }
    }

    /// The rotors.
    pub fn rotors(&self) -> &[Centrifuge] {
        &self.rotors
    }

    /// Number of rotors still intact.
    pub fn intact_count(&self) -> usize {
        self.rotors.iter().filter(|r| r.is_intact()).count()
    }

    /// Number of destroyed rotors.
    pub fn destroyed_count(&self) -> usize {
        self.rotors.len() - self.intact_count()
    }

    /// Total enrichment output across rotors.
    pub fn total_output(&self) -> f64 {
        self.rotors.iter().map(Centrifuge::enrichment_output).sum()
    }

    /// Total rotor count.
    pub fn len(&self) -> usize {
        self.rotors.len()
    }

    /// Whether the cascade has no rotors.
    pub fn is_empty(&self) -> bool {
        self.rotors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::{DriveVendor, FrequencyDrive};
    use crate::plc::CommProcessor;

    fn plant(n: usize) -> (Plc, Cascade) {
        let mut plc = Plc::new(CommProcessor::Profibus);
        for _ in 0..n {
            plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 1_064.0));
        }
        let cascade = Cascade::for_plc(&plc);
        (plc, cascade)
    }

    #[test]
    fn sized_to_plc() {
        let (_, cascade) = plant(164); // one IR-1 cascade at Natanz
        assert_eq!(cascade.len(), 164);
        assert_eq!(cascade.intact_count(), 164);
        assert!(!cascade.is_empty());
    }

    #[test]
    fn normal_operation_produces_output() {
        let (mut plc, mut cascade) = plant(10);
        for _ in 0..3_600 {
            cascade.step(&mut plc, 1.0);
        }
        assert_eq!(cascade.intact_count(), 10);
        assert!(cascade.total_output() > 9.0);
    }

    #[test]
    fn attack_sequence_destroys_cascade() {
        let (mut plc, mut cascade) = plant(10);
        // Normal running.
        for _ in 0..600 {
            cascade.step(&mut plc, 1.0);
        }
        // The payload: overspeed, crash, recover — repeated.
        for _ in 0..3 {
            plc.command_all_drives(1_410.0);
            for _ in 0..600 {
                cascade.step(&mut plc, 1.0);
            }
            plc.command_all_drives(2.0);
            for _ in 0..120 {
                cascade.step(&mut plc, 1.0);
            }
            plc.command_all_drives(1_064.0);
            for _ in 0..300 {
                cascade.step(&mut plc, 1.0);
            }
        }
        assert_eq!(cascade.destroyed_count(), 10, "all rotors destroyed by the sequence");
    }

    #[test]
    fn output_stops_at_destruction() {
        let (mut plc, mut cascade) = plant(1);
        plc.command_all_drives(1_500.0);
        for _ in 0..7_200 {
            cascade.step(&mut plc, 1.0);
        }
        let frozen = cascade.total_output();
        plc.command_all_drives(1_064.0);
        for _ in 0..3_600 {
            cascade.step(&mut plc, 1.0);
        }
        assert_eq!(cascade.total_output(), frozen);
    }
}
