//! The programmable logic controller: code blocks, the communication
//! processor, and attached drives.

use std::collections::BTreeMap;

use malsim_kernel::define_id;
use serde::{Deserialize, Serialize};

use crate::drive::FrequencyDrive;

define_id!(
    /// Identifies a PLC in a scenario.
    pub struct PlcId("plc")
);
malsim_kernel::impl_arena_id!(PlcId);

/// The fieldbus the PLC talks to its I/O over. Stuxnet's payload required
/// Profibus specifically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommProcessor {
    /// Profibus-DP (the targeted configuration).
    Profibus,
    /// Industrial Ethernet.
    Ethernet,
    /// Anything else.
    Other,
}

/// A PLC code block (OB/FC/DB in Step 7 terms).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeBlock {
    /// Block name, e.g. `OB1` or `FC1869`.
    pub name: String,
    /// Block body (symbolic program bytes).
    pub body: Vec<u8>,
    /// Whether this block was written by the attacker (ground truth used by
    /// experiments; invisible to in-model software, which must rely on
    /// reads through the comm library).
    pub attacker_written: bool,
}

/// A programmable logic controller with attached frequency drives.
///
/// # Examples
///
/// ```
/// use malsim_scada::drive::{DriveVendor, FrequencyDrive};
/// use malsim_scada::plc::{CommProcessor, Plc};
///
/// let mut plc = Plc::new(CommProcessor::Profibus);
/// plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 1064.0));
/// assert!(plc.is_stuxnet_target_configuration());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plc {
    comm: CommProcessor,
    blocks: BTreeMap<String, CodeBlock>,
    drives: Vec<FrequencyDrive>,
}

impl Plc {
    /// Creates a PLC with a standard main block (`OB1`) and no drives.
    pub fn new(comm: CommProcessor) -> Self {
        let mut blocks = BTreeMap::new();
        blocks.insert(
            "OB1".to_owned(),
            CodeBlock { name: "OB1".into(), body: b"main control loop".to_vec(), attacker_written: false },
        );
        Plc { comm, blocks, drives: Vec::new() }
    }

    /// The fieldbus type.
    pub fn comm_processor(&self) -> CommProcessor {
        self.comm
    }

    /// Attaches a drive, returning its index.
    pub fn attach_drive(&mut self, drive: FrequencyDrive) -> usize {
        self.drives.push(drive);
        self.drives.len() - 1
    }

    /// The attached drives.
    pub fn drives(&self) -> &[FrequencyDrive] {
        &self.drives
    }

    /// Mutable access to the attached drives.
    pub fn drives_mut(&mut self) -> &mut [FrequencyDrive] {
        &mut self.drives
    }

    /// Writes (or replaces) a code block. This is the PLC-side primitive the
    /// comm library's `write_block` lands on.
    pub fn write_block(&mut self, block: CodeBlock) {
        self.blocks.insert(block.name.clone(), block);
    }

    /// Reads a code block directly from PLC memory (ground truth — in-model
    /// software goes through the comm library instead).
    pub fn read_block_raw(&self, name: &str) -> Option<&CodeBlock> {
        self.blocks.get(name)
    }

    /// Names of all blocks, sorted.
    pub fn block_names(&self) -> Vec<&str> {
        self.blocks.keys().map(String::as_str).collect()
    }

    /// Whether any block was attacker-written (ground truth for experiments).
    pub fn is_infected(&self) -> bool {
        self.blocks.values().any(|b| b.attacker_written)
    }

    /// Commands every drive's setpoint (what the running PLC program does).
    pub fn command_all_drives(&mut self, setpoint_hz: f64) {
        for d in &mut self.drives {
            d.set_setpoint(setpoint_hz);
        }
    }

    /// Steps all drives by `dt_s`.
    pub fn step_drives(&mut self, dt_s: f64) {
        for d in &mut self.drives {
            d.step(dt_s);
        }
    }

    /// The paper's targeting predicate: a Profibus comm processor and at
    /// least one drive from each of the two targeted vendors... the public
    /// analyses describe "one of two" vendors, so we require every drive to
    /// be from a targeted vendor and at least one drive present.
    pub fn is_stuxnet_target_configuration(&self) -> bool {
        self.comm == CommProcessor::Profibus
            && !self.drives.is_empty()
            && self.drives.iter().all(|d| d.vendor().is_targeted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::DriveVendor;

    #[test]
    fn new_plc_has_main_block() {
        let plc = Plc::new(CommProcessor::Profibus);
        assert!(plc.read_block_raw("OB1").is_some());
        assert!(!plc.is_infected());
    }

    #[test]
    fn targeting_requires_profibus_and_vendors() {
        let mut plc = Plc::new(CommProcessor::Profibus);
        assert!(!plc.is_stuxnet_target_configuration(), "no drives yet");
        plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 1000.0));
        plc.attach_drive(FrequencyDrive::new(DriveVendor::FararoPaya, 1000.0));
        assert!(plc.is_stuxnet_target_configuration());

        let mut eth = Plc::new(CommProcessor::Ethernet);
        eth.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 1000.0));
        assert!(!eth.is_stuxnet_target_configuration(), "wrong bus");

        let mut wrong_vendor = Plc::new(CommProcessor::Profibus);
        wrong_vendor.attach_drive(FrequencyDrive::new(DriveVendor::Other("ABB".into()), 1000.0));
        assert!(!wrong_vendor.is_stuxnet_target_configuration(), "wrong vendor");
    }

    #[test]
    fn block_write_marks_infection() {
        let mut plc = Plc::new(CommProcessor::Profibus);
        plc.write_block(CodeBlock {
            name: "FC1869".into(),
            body: b"attack sequence".to_vec(),
            attacker_written: true,
        });
        assert!(plc.is_infected());
        assert_eq!(plc.block_names(), vec!["FC1869", "OB1"]);
    }

    #[test]
    fn drive_commanding() {
        let mut plc = Plc::new(CommProcessor::Profibus);
        plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 0.0));
        plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, 0.0));
        plc.command_all_drives(1_064.0);
        for _ in 0..100 {
            plc.step_drives(1.0);
        }
        assert!(plc.drives().iter().all(|d| d.is_settled() && d.frequency_hz() == 1_064.0));
    }
}
