//! The Step 7 engineering software and its PLC communication library.
//!
//! Step 7 talks to the PLC exclusively through a library file
//! (`s7otbxdx.dll` in the real product). Stuxnet renamed the genuine library
//! to `s7otbxsx.dll` and installed its own shim exporting the same read and
//! write routines — intercepting every block transfer in both directions.
//! [`CommLibrary`] models exactly that interposition point.

use serde::{Deserialize, Serialize};

use crate::plc::{CodeBlock, Plc};

/// Canonical file name of the genuine comm library.
pub const GENUINE_LIB: &str = "s7otbxdx.dll";
/// Name Stuxnet gives the renamed genuine library.
pub const RENAMED_LIB: &str = "s7otbxsx.dll";

/// The PLC communication library a Step 7 installation calls through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommLibrary {
    /// The vendor's library: reads and writes pass through unmodified.
    Genuine,
    /// The attacker's shim: hides attacker-written blocks from reads,
    /// refuses writes that would overwrite them, and passes everything else
    /// through (the "PLC rootkit" of the paper's §II-C).
    Compromised,
}

/// Result of a block read through the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockView {
    /// The block as stored.
    Block(CodeBlock),
    /// The library reports the block as absent.
    NotFound,
}

impl CommLibrary {
    /// Reads a block through the library.
    ///
    /// The compromised library hides attacker-written blocks entirely and
    /// returns pristine-looking views of patched entry points.
    pub fn read_block(&self, plc: &Plc, name: &str) -> BlockView {
        match plc.read_block_raw(name) {
            None => BlockView::NotFound,
            Some(block) => match self {
                CommLibrary::Genuine => BlockView::Block(block.clone()),
                CommLibrary::Compromised => {
                    if block.attacker_written {
                        BlockView::NotFound
                    } else {
                        BlockView::Block(block.clone())
                    }
                }
            },
        }
    }

    /// Lists block names through the library (hiding attacker blocks on the
    /// compromised path).
    pub fn list_blocks(&self, plc: &Plc) -> Vec<String> {
        plc.block_names()
            .into_iter()
            .filter(|n| match self {
                CommLibrary::Genuine => true,
                CommLibrary::Compromised => !plc.read_block_raw(n).is_some_and(|b| b.attacker_written),
            })
            .map(str::to_owned)
            .collect()
    }

    /// Writes a block through the library. Returns `false` when the write
    /// was silently dropped (the compromised library protecting an infected
    /// block from being repaired).
    pub fn write_block(&self, plc: &mut Plc, block: CodeBlock) -> bool {
        match self {
            CommLibrary::Genuine => {
                plc.write_block(block);
                true
            }
            CommLibrary::Compromised => {
                let protected = plc.read_block_raw(&block.name).is_some_and(|b| b.attacker_written);
                if protected {
                    false
                } else {
                    plc.write_block(block);
                    true
                }
            }
        }
    }
}

/// A Step 7 project on an engineering station.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step7Project {
    /// Project name.
    pub name: String,
    /// Whether the project folder has been contaminated (Stuxnet drops DLLs
    /// there so the project re-infects any machine that opens it).
    pub contaminated: bool,
}

/// A Step 7 installation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step7 {
    /// The library all PLC traffic goes through.
    pub comm_library: CommLibrary,
    /// Projects known to this installation.
    pub projects: Vec<Step7Project>,
}

impl Default for Step7 {
    fn default() -> Self {
        Step7::new()
    }
}

impl Step7 {
    /// Creates a clean installation.
    pub fn new() -> Self {
        Step7 { comm_library: CommLibrary::Genuine, projects: Vec::new() }
    }

    /// Adds a project.
    pub fn add_project(&mut self, name: impl Into<String>) {
        self.projects.push(Step7Project { name: name.into(), contaminated: false });
    }

    /// Whether the installation's comm library has been replaced.
    pub fn is_compromised(&self) -> bool {
        self.comm_library == CommLibrary::Compromised
    }

    /// Replaces the comm library with the attacker shim (models the
    /// rename + drop of the fake `s7otbxdx.dll`).
    pub fn compromise(&mut self) {
        self.comm_library = CommLibrary::Compromised;
    }

    /// Restores the genuine library (incident response).
    pub fn restore(&mut self) {
        self.comm_library = CommLibrary::Genuine;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plc::{CommProcessor, Plc};

    fn infected_plc() -> Plc {
        let mut plc = Plc::new(CommProcessor::Profibus);
        plc.write_block(CodeBlock {
            name: "FC1869".into(),
            body: b"attack".to_vec(),
            attacker_written: true,
        });
        plc
    }

    #[test]
    fn genuine_library_sees_everything() {
        let plc = infected_plc();
        let lib = CommLibrary::Genuine;
        assert!(matches!(lib.read_block(&plc, "FC1869"), BlockView::Block(_)));
        assert_eq!(lib.list_blocks(&plc), vec!["FC1869".to_owned(), "OB1".to_owned()]);
    }

    #[test]
    fn compromised_library_hides_attacker_blocks() {
        let plc = infected_plc();
        let lib = CommLibrary::Compromised;
        assert_eq!(lib.read_block(&plc, "FC1869"), BlockView::NotFound);
        assert_eq!(lib.list_blocks(&plc), vec!["OB1".to_owned()]);
        assert!(matches!(lib.read_block(&plc, "OB1"), BlockView::Block(_)));
    }

    #[test]
    fn compromised_library_blocks_repair_writes() {
        let mut plc = infected_plc();
        let lib = CommLibrary::Compromised;
        let repair = CodeBlock { name: "FC1869".into(), body: b"clean".to_vec(), attacker_written: false };
        assert!(!lib.write_block(&mut plc, repair.clone()), "repair silently dropped");
        assert_eq!(plc.read_block_raw("FC1869").unwrap().body, b"attack");
        // Genuine library would repair it.
        assert!(CommLibrary::Genuine.write_block(&mut plc, repair));
        assert_eq!(plc.read_block_raw("FC1869").unwrap().body, b"clean");
        assert!(!plc.is_infected());
    }

    #[test]
    fn ordinary_writes_pass_through_compromised_library() {
        let mut plc = infected_plc();
        let lib = CommLibrary::Compromised;
        let ob2 = CodeBlock { name: "OB2".into(), body: b"new logic".to_vec(), attacker_written: false };
        assert!(lib.write_block(&mut plc, ob2));
        assert!(plc.read_block_raw("OB2").is_some());
    }

    #[test]
    fn step7_lifecycle() {
        let mut s7 = Step7::new();
        assert!(!s7.is_compromised());
        s7.add_project("cascade-a");
        s7.compromise();
        assert!(s7.is_compromised());
        s7.restore();
        assert!(!s7.is_compromised());
        assert_eq!(s7.projects.len(), 1);
        assert!(!s7.projects[0].contaminated);
    }
}
