//! Frequency converter drives.
//!
//! Stuxnet's payload only armed when the PLC drove frequency converters from
//! two specific vendors — one Iranian, one Finnish — over Profibus. Vendor
//! identity is therefore first-class here: it is the targeting predicate of
//! experiment E3.

use serde::{Deserialize, Serialize};

/// Manufacturer of a frequency converter drive.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriveVendor {
    /// The Finnish manufacturer named in public Stuxnet analyses.
    Vacon,
    /// The Iranian manufacturer named in public Stuxnet analyses.
    FararoPaya,
    /// Any other manufacturer (payload must stay dormant).
    Other(String),
}

impl DriveVendor {
    /// Whether this vendor is on the payload's target list.
    pub fn is_targeted(&self) -> bool {
        matches!(self, DriveVendor::Vacon | DriveVendor::FararoPaya)
    }
}

/// A variable-frequency drive: follows its setpoint at a bounded slew rate.
///
/// # Examples
///
/// ```
/// use malsim_scada::drive::{DriveVendor, FrequencyDrive};
///
/// let mut d = FrequencyDrive::new(DriveVendor::Vacon, 1064.0);
/// d.set_setpoint(1410.0);
/// d.step(1.0);
/// assert!(d.frequency_hz() > 1064.0 && d.frequency_hz() < 1410.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyDrive {
    vendor: DriveVendor,
    frequency_hz: f64,
    setpoint_hz: f64,
    /// Maximum frequency change per second.
    slew_hz_per_s: f64,
}

impl FrequencyDrive {
    /// Default slew rate (Hz/s) — the paper's attack relied on commanded
    /// swings of ~1400 Hz, so transitions take tens of seconds.
    pub const DEFAULT_SLEW: f64 = 40.0;

    /// Creates a drive at `initial_hz` with the default slew rate.
    pub fn new(vendor: DriveVendor, initial_hz: f64) -> Self {
        FrequencyDrive {
            vendor,
            frequency_hz: initial_hz,
            setpoint_hz: initial_hz,
            slew_hz_per_s: Self::DEFAULT_SLEW,
        }
    }

    /// The manufacturer.
    pub fn vendor(&self) -> &DriveVendor {
        &self.vendor
    }

    /// Current output frequency.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Current setpoint.
    pub fn setpoint_hz(&self) -> f64 {
        self.setpoint_hz
    }

    /// Commands a new setpoint (clamped to `[0, 2000]`).
    pub fn set_setpoint(&mut self, hz: f64) {
        self.setpoint_hz = hz.clamp(0.0, 2_000.0);
    }

    /// Advances the drive by `dt_s` seconds, slewing toward the setpoint.
    pub fn step(&mut self, dt_s: f64) {
        let max_delta = self.slew_hz_per_s * dt_s;
        let delta = (self.setpoint_hz - self.frequency_hz).clamp(-max_delta, max_delta);
        self.frequency_hz += delta;
    }

    /// Whether the drive has settled at its setpoint.
    pub fn is_settled(&self) -> bool {
        (self.frequency_hz - self.setpoint_hz).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeting_predicate() {
        assert!(DriveVendor::Vacon.is_targeted());
        assert!(DriveVendor::FararoPaya.is_targeted());
        assert!(!DriveVendor::Other("Siemens".into()).is_targeted());
    }

    #[test]
    fn slews_toward_setpoint() {
        let mut d = FrequencyDrive::new(DriveVendor::Vacon, 1000.0);
        d.set_setpoint(1400.0);
        d.step(5.0); // 200 Hz max
        assert!((d.frequency_hz() - 1200.0).abs() < 1e-9);
        d.step(10.0);
        assert!(d.is_settled());
        assert_eq!(d.frequency_hz(), 1400.0);
    }

    #[test]
    fn slews_downward_too() {
        let mut d = FrequencyDrive::new(DriveVendor::FararoPaya, 1410.0);
        d.set_setpoint(2.0);
        d.step(10.0);
        assert!((d.frequency_hz() - 1010.0).abs() < 1e-9);
        for _ in 0..10 {
            d.step(10.0);
        }
        assert!(d.is_settled());
        assert_eq!(d.frequency_hz(), 2.0);
    }

    #[test]
    fn setpoint_is_clamped() {
        let mut d = FrequencyDrive::new(DriveVendor::Vacon, 0.0);
        d.set_setpoint(99_999.0);
        assert_eq!(d.setpoint_hz(), 2_000.0);
        d.set_setpoint(-5.0);
        assert_eq!(d.setpoint_hz(), 0.0);
    }
}
