//! Centrifuge rotor physics: stress accumulation and destruction.
//!
//! The paper describes the damage mechanism: the payload drives the rotors
//! far above their operating band (1410 Hz), then crashes them to 2 Hz, then
//! back to 1064 Hz; the overspeed expands the aluminium tubes and the
//! violent transitions force rotating parts into contact. We model that as
//! two damage terms: quadratic overspeed stress above the rated maximum, and
//! a fixed stress quantum per crossing of the low-frequency resonance band.

use serde::{Deserialize, Serialize};

/// Operating envelope constants (from the paper's trigger description).
pub mod envelope {
    /// Lower edge of the normal operating band the payload watches for.
    pub const NORMAL_MIN_HZ: f64 = 807.0;
    /// Upper edge of the normal operating band.
    pub const NORMAL_MAX_HZ: f64 = 1_210.0;
    /// Resonance band the rotor must not dwell in or cross violently.
    pub const RESONANCE_LOW_HZ: f64 = 40.0;
    /// Upper edge of the resonance band.
    pub const RESONANCE_HIGH_HZ: f64 = 250.0;
}

/// A single centrifuge rotor.
///
/// # Examples
///
/// ```
/// use malsim_scada::centrifuge::Centrifuge;
///
/// let mut c = Centrifuge::new();
/// c.step(1064.0, 3600.0); // an hour at normal speed
/// assert!(c.is_intact());
/// assert!(c.enrichment_output() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Centrifuge {
    damage: f64,
    enrichment: f64,
    last_freq_hz: Option<f64>,
    resonance_crossings: u32,
}

impl Default for Centrifuge {
    fn default() -> Self {
        Centrifuge::new()
    }
}

impl Centrifuge {
    /// Overspeed damage coefficient: calibrated so ~1410 Hz destroys a rotor
    /// in a few minutes of dwell.
    const OVERSPEED_K: f64 = 1.0 / 40_000.0;
    /// Damage per resonance-band crossing.
    const CROSSING_DAMAGE: f64 = 0.12;
    /// Enrichment output units per second in the normal band.
    const ENRICH_RATE: f64 = 1.0 / 3_600.0;

    /// Creates an intact rotor.
    pub fn new() -> Self {
        Centrifuge { damage: 0.0, enrichment: 0.0, last_freq_hz: None, resonance_crossings: 0 }
    }

    /// Advances the rotor `dt_s` seconds at the given drive frequency.
    /// Destroyed rotors ignore further input.
    pub fn step(&mut self, freq_hz: f64, dt_s: f64) {
        if self.is_destroyed() {
            return;
        }
        // Overspeed stress: quadratic in the excess above the rated maximum.
        if freq_hz > envelope::NORMAL_MAX_HZ {
            let excess = freq_hz - envelope::NORMAL_MAX_HZ;
            self.damage += excess * excess * Self::OVERSPEED_K * dt_s / 60.0;
        }
        // Resonance crossings: entering or leaving the band from the far
        // side counts as one violent traversal.
        if let Some(prev) = self.last_freq_hz {
            let crossed_down = prev > envelope::RESONANCE_HIGH_HZ && freq_hz < envelope::RESONANCE_LOW_HZ;
            let crossed_up = prev < envelope::RESONANCE_LOW_HZ && freq_hz > envelope::RESONANCE_HIGH_HZ;
            if crossed_down || crossed_up {
                self.resonance_crossings += 1;
                self.damage += Self::CROSSING_DAMAGE;
            }
        }
        self.last_freq_hz = Some(freq_hz);
        // Productive output only inside the normal band.
        if self.is_intact() && (envelope::NORMAL_MIN_HZ..=envelope::NORMAL_MAX_HZ).contains(&freq_hz) {
            self.enrichment += Self::ENRICH_RATE * dt_s;
        }
        if self.damage >= 1.0 {
            self.damage = 1.0;
        }
    }

    /// Accumulated damage in `[0, 1]`.
    pub fn damage(&self) -> f64 {
        self.damage
    }

    /// Whether the rotor still works.
    pub fn is_intact(&self) -> bool {
        self.damage < 1.0
    }

    /// Whether the rotor has failed.
    pub fn is_destroyed(&self) -> bool {
        self.damage >= 1.0
    }

    /// Cumulative enrichment output (arbitrary units).
    pub fn enrichment_output(&self) -> f64 {
        self.enrichment
    }

    /// How many times the rotor violently traversed the resonance band.
    pub fn resonance_crossings(&self) -> u32 {
        self.resonance_crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_operation_is_harmless_and_productive() {
        let mut c = Centrifuge::new();
        for _ in 0..24 {
            c.step(1064.0, 3_600.0);
        }
        assert!(c.is_intact());
        assert_eq!(c.damage(), 0.0);
        assert!((c.enrichment_output() - 24.0).abs() < 1e-6);
    }

    #[test]
    fn overspeed_destroys_within_minutes() {
        let mut c = Centrifuge::new();
        let mut seconds = 0.0;
        while c.is_intact() && seconds < 3_600.0 {
            c.step(1_410.0, 1.0);
            seconds += 1.0;
        }
        assert!(c.is_destroyed(), "1410 Hz should destroy the rotor");
        assert!(seconds < 1_200.0, "destruction took {seconds}s — too slow");
        assert!(seconds > 30.0, "destruction took {seconds}s — implausibly fast");
    }

    #[test]
    fn resonance_crossings_accumulate() {
        let mut c = Centrifuge::new();
        // Oscillate 1064 → 2 → 1064 five times (violent traversals).
        for _ in 0..5 {
            c.step(1_064.0, 1.0);
            c.step(2.0, 1.0);
        }
        assert_eq!(c.resonance_crossings(), 9); // 5 down + 4 up
        assert!(c.damage() > 0.9);
    }

    #[test]
    fn attack_sequence_1410_2_1064_kills() {
        // The paper's payload: dwell at 1410, crash to 2, return to 1064.
        let mut c = Centrifuge::new();
        for _ in 0..300 {
            c.step(1_410.0, 1.0);
        }
        for _ in 0..60 {
            c.step(2.0, 1.0);
        }
        for _ in 0..300 {
            c.step(1_064.0, 1.0);
        }
        assert!(c.is_destroyed());
    }

    #[test]
    fn destroyed_rotor_stops_responding() {
        let mut c = Centrifuge::new();
        while c.is_intact() {
            c.step(1_500.0, 10.0);
        }
        let out = c.enrichment_output();
        c.step(1_064.0, 3_600.0);
        assert_eq!(c.enrichment_output(), out, "no output after destruction");
        assert_eq!(c.damage(), 1.0);
    }

    #[test]
    fn slow_ramps_through_resonance_do_not_count() {
        let mut c = Centrifuge::new();
        // A slow controlled ramp passes *through* the band across steps
        // (e.g. 300 → 150 → 30): never jumping over it entirely.
        for f in [300.0, 150.0, 30.0, 150.0, 300.0, 600.0, 1_000.0] {
            c.step(f, 5.0);
        }
        assert_eq!(c.resonance_crossings(), 0);
        assert!(c.is_intact());
    }
}
