//! # malsim-scada
//!
//! Industrial-control substrate for the `malsim` workspace: the Step 7 /
//! PLC / centrifuge-plant stack that the paper's Stuxnet dissection (§II)
//! operates on.
//!
//! - [`drive`] — vendor-tagged frequency converter drives with bounded slew
//!   (vendor identity is the payload's targeting predicate);
//! - [`centrifuge`] — rotor physics: quadratic overspeed stress above the
//!   rated band plus a damage quantum per violent resonance-band crossing,
//!   calibrated so the published 1410 Hz → 2 Hz → 1064 Hz sequence destroys
//!   a rotor in minutes while normal operation is harmless;
//! - [`plc`] — code blocks, the Profibus comm processor, attached drives,
//!   and the target-configuration predicate;
//! - [`step7`] — the engineering software and its communication library
//!   (`s7otbxdx.dll` model): the compromised variant hides attacker blocks
//!   and silently drops repair writes (the PLC rootkit);
//! - [`hmi`] — telemetry record/replay ([`hmi::TelemetryTap`]) and its
//!   consumers: the digital safety system and the operator view, both of
//!   which the replay blinds;
//! - [`cascade`] — the plant: one rotor per drive, with intact counts and
//!   enrichment output as the measured quantities.
//!
//! # Examples
//!
//! ```
//! use malsim_scada::prelude::*;
//!
//! // A Natanz-like plant: Profibus PLC driving targeted-vendor drives.
//! let mut plc = Plc::new(CommProcessor::Profibus);
//! for _ in 0..8 {
//!     plc.attach_drive(FrequencyDrive::new(DriveVendor::FararoPaya, 1_064.0));
//! }
//! assert!(plc.is_stuxnet_target_configuration());
//!
//! let mut cascade = Cascade::for_plc(&plc);
//! for _ in 0..3_600 {
//!     cascade.step(&mut plc, 1.0);
//! }
//! assert_eq!(cascade.intact_count(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod centrifuge;
pub mod drive;
pub mod hmi;
pub mod plc;
pub mod step7;

/// Commonly used items.
pub mod prelude {
    pub use crate::cascade::Cascade;
    pub use crate::centrifuge::{envelope, Centrifuge};
    pub use crate::drive::{DriveVendor, FrequencyDrive};
    pub use crate::hmi::{OperatorView, SafetySystem, TapMode, TelemetryTap};
    pub use crate::plc::{CodeBlock, CommProcessor, Plc, PlcId};
    pub use crate::step7::{BlockView, CommLibrary, Step7, Step7Project, GENUINE_LIB, RENAMED_LIB};
}
