//! Property tests for the SCADA substrate: physics invariants, targeting
//! predicates, and rootkit consistency.

use malsim_scada::prelude::*;
use proptest::prelude::*;

fn vendor_strategy() -> impl Strategy<Value = DriveVendor> {
    prop_oneof![
        Just(DriveVendor::Vacon),
        Just(DriveVendor::FararoPaya),
        "[A-Z][a-z]{2,8}".prop_map(DriveVendor::Other),
    ]
}

proptest! {
    #[test]
    fn damage_is_monotone_and_bounded(freqs in proptest::collection::vec(0.0f64..2_000.0, 1..200)) {
        let mut c = Centrifuge::new();
        let mut last = 0.0;
        for f in freqs {
            c.step(f, 10.0);
            prop_assert!(c.damage() >= last, "damage decreased");
            prop_assert!(c.damage() <= 1.0);
            last = c.damage();
        }
    }

    #[test]
    fn normal_band_operation_never_damages(
        freqs in proptest::collection::vec(envelope::NORMAL_MIN_HZ..envelope::NORMAL_MAX_HZ, 1..100)
    ) {
        let mut c = Centrifuge::new();
        for f in &freqs {
            c.step(*f, 60.0);
        }
        prop_assert_eq!(c.damage(), 0.0);
        prop_assert!(c.enrichment_output() > 0.0);
    }

    #[test]
    fn enrichment_never_decreases(freqs in proptest::collection::vec(0.0f64..2_000.0, 1..100)) {
        let mut c = Centrifuge::new();
        let mut last = 0.0;
        for f in freqs {
            c.step(f, 30.0);
            prop_assert!(c.enrichment_output() >= last);
            last = c.enrichment_output();
        }
    }

    #[test]
    fn drive_always_converges_to_setpoint(
        start in 0.0f64..2_000.0,
        target in 0.0f64..2_000.0,
    ) {
        let mut d = FrequencyDrive::new(DriveVendor::Vacon, start);
        d.set_setpoint(target);
        // Worst case: 2000 Hz at 40 Hz/s = 50 s; give 100 steps of 1 s.
        for _ in 0..100 {
            d.step(1.0);
        }
        prop_assert!(d.is_settled(), "start={start} target={target} at {}", d.frequency_hz());
        prop_assert!((d.frequency_hz() - target).abs() < 1e-9);
    }

    #[test]
    fn drive_never_overshoots(start in 0.0f64..2_000.0, target in 0.0f64..2_000.0) {
        let mut d = FrequencyDrive::new(DriveVendor::Vacon, start);
        d.set_setpoint(target);
        let (lo, hi) = if start <= target { (start, target) } else { (target, start) };
        for _ in 0..200 {
            d.step(0.7);
            prop_assert!(d.frequency_hz() >= lo - 1e-9 && d.frequency_hz() <= hi + 1e-9);
        }
    }

    #[test]
    fn targeting_predicate_matches_definition(
        comm in prop_oneof![Just(CommProcessor::Profibus), Just(CommProcessor::Ethernet), Just(CommProcessor::Other)],
        vendors in proptest::collection::vec(vendor_strategy(), 0..6),
    ) {
        let mut plc = Plc::new(comm);
        for v in &vendors {
            plc.attach_drive(FrequencyDrive::new(v.clone(), 1_000.0));
        }
        let expected = comm == CommProcessor::Profibus
            && !vendors.is_empty()
            && vendors.iter().all(DriveVendor::is_targeted);
        prop_assert_eq!(plc.is_stuxnet_target_configuration(), expected);
    }

    #[test]
    fn compromised_library_view_is_exactly_the_clean_blocks(
        names in proptest::collection::btree_set("[A-Z]{2}[0-9]{1,3}", 1..10),
        attacker_mask in proptest::collection::vec(any::<bool>(), 1..10),
    ) {
        let mut plc = Plc::new(CommProcessor::Profibus);
        let names: Vec<String> = names.into_iter().collect();
        for (i, name) in names.iter().enumerate() {
            plc.write_block(CodeBlock {
                name: name.clone(),
                body: vec![i as u8],
                attacker_written: attacker_mask.get(i).copied().unwrap_or(false),
            });
        }
        let hidden_view = CommLibrary::Compromised.list_blocks(&plc);
        let full_view = CommLibrary::Genuine.list_blocks(&plc);
        prop_assert!(hidden_view.len() <= full_view.len());
        for name in &full_view {
            let attacker = plc.read_block_raw(name).unwrap().attacker_written;
            prop_assert_eq!(hidden_view.contains(name), !attacker, "block {}", name);
            // Reads agree with listings.
            let via_rootkit = CommLibrary::Compromised.read_block(&plc, name);
            prop_assert_eq!(matches!(via_rootkit, BlockView::NotFound), attacker);
        }
    }

    #[test]
    fn replay_serves_only_recorded_frames(
        normal_freq in envelope::NORMAL_MIN_HZ..envelope::NORMAL_MAX_HZ,
        attack_freq in 1_300.0f64..2_000.0,
        frames in 1usize..20,
    ) {
        let mut plc = Plc::new(CommProcessor::Profibus);
        plc.attach_drive(FrequencyDrive::new(DriveVendor::Vacon, normal_freq));
        let mut tap = TelemetryTap::new();
        tap.set_mode(TapMode::Record);
        for _ in 0..frames {
            tap.observe(&plc);
        }
        tap.set_mode(TapMode::Replay);
        plc.drives_mut()[0].set_setpoint(attack_freq);
        for _ in 0..100 {
            plc.step_drives(1.0);
        }
        let mut safety = SafetySystem::new();
        for _ in 0..frames * 3 {
            let seen = tap.observe(&plc);
            prop_assert_eq!(seen.clone(), vec![normal_freq], "replay leaked a live value");
            safety.evaluate(&seen);
        }
        prop_assert!(!safety.is_tripped());
    }
}
