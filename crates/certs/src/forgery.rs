//! The certificate-leveraging forgery (paper Figure 3).
//!
//! Given any *legitimately issued* signature made on the weak-hash path, an
//! attacker can mint content of their choosing that carries a valid
//! signature — without ever holding a private key. The steps, mirrored from
//! the paper's account of the Flame attack:
//!
//! 1. An enterprise activates Terminal Services licensing and receives a
//!    limited-use certificate chained to the platform vendor's root, issued
//!    with the legacy weak-hash algorithm
//!    ([`crate::authority::CertificateAuthority::activate_terminal_services_licensing`]).
//! 2. The attacker, in possession of that licensing key pair (they are a
//!    licensed enterprise themselves — no theft needed), signs a harmless
//!    license blob, producing a signature over its *weak* digest.
//! 3. For any malicious payload, the attacker computes a collision suffix so
//!    the padded payload's weak digest equals the blob's, then transplants
//!    the signature ([`forge_signed_content`]).
//! 4. Verifiers on the legacy policy accept the result as vendor-rooted
//!    signed code; the strict post-advisory policy rejects it.

use crate::hash::{forge_collision_suffix, HashAlgorithm};
use crate::key::KeyPair;
use crate::store::CodeSignature;

/// Output of a forgery: the padded content and the transplanted signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForgedCode {
    /// The malicious content, padded with the collision suffix. Starts with
    /// the attacker's chosen bytes.
    pub content: Vec<u8>,
    /// A signature that verifies over `content` on weak-hash-accepting
    /// policies.
    pub signature: CodeSignature,
}

/// Forges signed content by weak-hash collision.
///
/// `licensed_key` and the certificate inside `benign_signature` are the
/// attacker's *own, legitimately obtained* licensing credential;
/// `benign_content` is whatever that credential legitimately signed; and
/// `malicious_content` is the payload to smuggle (e.g. a fake Windows Update
/// binary).
///
/// Returns `None` if the signature was not made on the weak-hash path — the
/// attack has no purchase against a collision-resistant digest.
pub fn forge_signed_content(
    benign_content: &[u8],
    benign_signature: &CodeSignature,
    malicious_content: &[u8],
) -> Option<ForgedCode> {
    if benign_signature.content_hash_alg != HashAlgorithm::WeakXor32 {
        return None;
    }
    let target = HashAlgorithm::WeakXor32.digest(benign_content);
    let suffix = forge_collision_suffix(malicious_content, target);
    let mut content = malicious_content.to_vec();
    content.extend_from_slice(&suffix);
    debug_assert_eq!(HashAlgorithm::WeakXor32.digest(&content), target);
    Some(ForgedCode { content, signature: benign_signature.clone() })
}

/// Convenience wrapper for the full Figure-3 flow: sign a benign license
/// blob with the licensing credential, then forge a signature over
/// `malicious_content`.
pub fn leverage_licensing_credential(
    licensing_key: &KeyPair,
    licensing_cert: crate::cert::Certificate,
    malicious_content: &[u8],
) -> ForgedCode {
    let benign = b"terminal services client access license";
    let sig = CodeSignature::sign(licensing_key, licensing_cert, HashAlgorithm::WeakXor32, benign);
    forge_signed_content(benign, &sig, malicious_content)
        .expect("licensing signatures use the weak-hash path")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::cert::Eku;
    use crate::store::{TrustStore, VerifyPolicy};
    use malsim_kernel::time::SimTime;

    fn far() -> SimTime {
        SimTime::from_utc(2030, 1, 1, 0, 0, 0)
    }

    fn microsoft_like_setup() -> (TrustStore, CertificateAuthority) {
        let ca = CertificateAuthority::new_root("Platform Vendor Root", 11, SimTime::EPOCH, far());
        let mut store = TrustStore::new();
        store.add_root(ca.root_certificate().clone());
        (store, ca)
    }

    #[test]
    fn forged_update_verifies_on_legacy_policy() {
        let (store, ca) = microsoft_like_setup();
        let (key, cert) = ca.activate_terminal_services_licensing("Attacker Org", 5, SimTime::EPOCH, far());
        let forged = leverage_licensing_credential(&key, cert, b"fake windows update payload");
        assert!(forged.content.starts_with(b"fake windows update payload"));
        store
            .verify_code(
                &forged.content,
                &forged.signature,
                SimTime::from_millis(10),
                Eku::CodeSigning,
                VerifyPolicy::legacy(),
            )
            .expect("legacy policy accepts the forgery — the Flame flaw");
    }

    #[test]
    fn forged_update_rejected_on_strict_policy() {
        let (store, ca) = microsoft_like_setup();
        let (key, cert) = ca.activate_terminal_services_licensing("Attacker Org", 5, SimTime::EPOCH, far());
        let forged = leverage_licensing_credential(&key, cert, b"fake windows update payload");
        assert!(store
            .verify_code(
                &forged.content,
                &forged.signature,
                SimTime::from_millis(10),
                Eku::CodeSigning,
                VerifyPolicy::strict(),
            )
            .is_err());
    }

    #[test]
    fn advisory_distrust_also_kills_forgery_under_legacy_policy() {
        // MS advisory 2718704 moved the certificates to the untrusted store —
        // effective even for verifiers still running the legacy policy.
        let (mut store, ca) = microsoft_like_setup();
        let (key, cert) = ca.activate_terminal_services_licensing("Attacker Org", 5, SimTime::EPOCH, far());
        let serial = cert.serial;
        let forged = leverage_licensing_credential(&key, cert, b"payload");
        store.distrust(serial);
        assert!(store
            .verify_code(
                &forged.content,
                &forged.signature,
                SimTime::from_millis(10),
                Eku::CodeSigning,
                VerifyPolicy::legacy(),
            )
            .is_err());
    }

    #[test]
    fn strong_hash_signatures_cannot_be_leveraged() {
        let (_store, ca) = microsoft_like_setup();
        let key = KeyPair::from_seed(8);
        let cert = ca.issue(
            "Legit Vendor",
            key.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"benign");
        assert_eq!(forge_signed_content(b"benign", &sig, b"evil"), None);
    }
}
