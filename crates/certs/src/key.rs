//! Toy signing keys.
//!
//! A [`KeyPair`] holds a private scalar; [`PublicKey`] is derived from it.
//! Signatures are *structurally* secure: the only way to produce a valid
//! [`SignatureTag`] over a digest is to call [`KeyPair::sign_digest`], which
//! requires possession of the `KeyPair` value — and the verifier's
//! [`PublicKey::verify_digest`] recomputes the tag from the public key alone,
//! so within the simulation any holder of the public key can check a
//! signature. "Certificate theft" (Stuxnet's JMicron/Realtek driver
//! signing) is therefore modelled as an attacker obtaining the `KeyPair`
//! object, and "forgery" is only possible through the weak-hash collision
//! path in [`crate::hash`].

use serde::{Deserialize, Serialize};

use crate::hash::Digest;

/// Public half of a key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(u64);

/// A signature tag over a digest, bound to a public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignatureTag(u64);

/// A private signing key with its derived public key.
///
/// # Examples
///
/// ```
/// use malsim_certs::hash::HashAlgorithm;
/// use malsim_certs::key::KeyPair;
///
/// let kp = KeyPair::from_seed(7);
/// let digest = HashAlgorithm::Strong64.digest(b"driver image");
/// let tag = kp.sign_digest(digest);
/// assert!(kp.public().verify_digest(digest, tag));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    secret: u64,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const KEY_SALT: u64 = 0x6d61_6c73_696d_6b65; // "malsimke"
const SIG_SALT: u64 = 0x7369_676e_6174_7572; // "signatur"

impl KeyPair {
    /// Derives a key pair from seed material (deterministic; scenarios draw
    /// the seed from the simulation rng).
    pub fn from_seed(seed: u64) -> Self {
        KeyPair { secret: splitmix(seed ^ KEY_SALT) }
    }

    /// The public key.
    pub fn public(&self) -> PublicKey {
        PublicKey(splitmix(self.secret))
    }

    /// Signs a digest.
    ///
    /// The tag is a function of the *public* key and the digest, so verifiers
    /// can recompute it; unforgeability is enforced by API visibility, not
    /// mathematics (see module docs).
    pub fn sign_digest(&self, digest: Digest) -> SignatureTag {
        self.public().expected_tag(digest)
    }
}

impl SignatureTag {
    /// Raw bits, for the crate's internal wire encodings only.
    pub(crate) fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a tag from raw bits, for the crate's internal wire decoders
    /// only — exposing this publicly would let simulation code mint tags
    /// without holding a key.
    pub(crate) fn from_bits(bits: u64) -> Self {
        SignatureTag(bits)
    }
}

impl PublicKey {
    fn expected_tag(self, digest: Digest) -> SignatureTag {
        SignatureTag(splitmix(self.0 ^ digest.0.rotate_left(13) ^ SIG_SALT))
    }

    /// Checks a signature tag over a digest.
    pub fn verify_digest(self, digest: Digest, tag: SignatureTag) -> bool {
        self.expected_tag(digest) == tag
    }

    /// The raw key value (stable identity for stores and reports).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a public key from raw bits, for the crate's internal wire
    /// decoders only. Public keys are not secrets, but keeping this
    /// `pub(crate)` keeps the construction surface small.
    pub(crate) fn from_bits(bits: u64) -> Self {
        PublicKey(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashAlgorithm;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(42);
        let d = HashAlgorithm::Strong64.digest(b"content");
        let tag = kp.sign_digest(d);
        assert!(kp.public().verify_digest(d, tag));
    }

    #[test]
    fn wrong_digest_fails() {
        let kp = KeyPair::from_seed(42);
        let d1 = HashAlgorithm::Strong64.digest(b"content");
        let d2 = HashAlgorithm::Strong64.digest(b"tampered");
        let tag = kp.sign_digest(d1);
        assert!(!kp.public().verify_digest(d2, tag));
    }

    #[test]
    fn wrong_key_fails() {
        let a = KeyPair::from_seed(1);
        let b = KeyPair::from_seed(2);
        let d = HashAlgorithm::Strong64.digest(b"content");
        let tag = a.sign_digest(d);
        assert!(!b.public().verify_digest(d, tag));
    }

    #[test]
    fn same_seed_same_keys() {
        assert_eq!(KeyPair::from_seed(9).public(), KeyPair::from_seed(9).public());
        assert_ne!(KeyPair::from_seed(9).public(), KeyPair::from_seed(10).public());
    }

    #[test]
    fn collision_on_weak_digest_transfers_signature() {
        // The core of the Flame forgery: a signature binds to a digest value,
        // so two messages with the same (weak) digest share valid signatures.
        let kp = KeyPair::from_seed(3);
        let legit = b"licensing blob";
        let d = HashAlgorithm::WeakXor32.digest(legit);
        let tag = kp.sign_digest(d);
        let suffix = crate::hash::forge_collision_suffix(b"malicious", d);
        let mut forged = b"malicious".to_vec();
        forged.extend_from_slice(&suffix);
        let d2 = HashAlgorithm::WeakXor32.digest(&forged);
        assert_eq!(d, d2);
        assert!(kp.public().verify_digest(d2, tag));
    }
}
