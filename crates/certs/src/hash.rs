//! Digest algorithms for the toy PKI.
//!
//! Two algorithms exist, modelling the real-world split the Flame forgery
//! exploited (a legacy MD5 signing path versus modern hashes):
//!
//! - [`HashAlgorithm::WeakXor32`] — an XOR fold over 4-byte words. Collisions
//!   are *computable by construction* ([`forge_collision_suffix`]), which is
//!   the in-model analogue of the chosen-prefix collision used to leverage a
//!   Terminal Services licensing certificate into a code-signing forgery.
//! - [`HashAlgorithm::Strong64`] — FNV-1a/64. The crate exposes no inversion
//!   or collision API for it, and the simulation treats it as
//!   collision-resistant.
//!
//! Neither is real cryptography; signatures in this workspace are secure
//! *structurally* (by Rust API visibility), not cryptographically. See the
//! crate docs for the threat-model note.

use serde::{Deserialize, Serialize};

/// A digest value. Width depends on the algorithm; stored widened to 64 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digest(pub u64);

/// Supported digest algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashAlgorithm {
    /// Legacy, collision-broken 32-bit XOR fold (the "flawed signing
    /// algorithm" of the paper's Figure 3 narrative).
    WeakXor32,
    /// Modern 64-bit FNV-1a, treated as collision-resistant in-model.
    Strong64,
}

impl HashAlgorithm {
    /// Computes the digest of `data` under this algorithm.
    pub fn digest(self, data: &[u8]) -> Digest {
        match self {
            HashAlgorithm::WeakXor32 => Digest(u64::from(weak_xor32(data))),
            HashAlgorithm::Strong64 => Digest(fnv64(data)),
        }
    }

    /// Whether this algorithm has known (in-model) collision attacks.
    pub fn is_broken(self) -> bool {
        matches!(self, HashAlgorithm::WeakXor32)
    }
}

fn weak_xor32(data: &[u8]) -> u32 {
    let mut acc: u32 = 0x5EED_CAFE;
    for chunk in data.chunks(4) {
        let mut word = [0u8; 4];
        word[..chunk.len()].copy_from_slice(chunk);
        acc ^= u32::from_le_bytes(word);
    }
    // Mix in the word count so plain zero-padding isn't free; the forgery
    // below accounts for this.
    acc ^ (data.len().div_ceil(4) as u32).rotate_left(16)
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Computes a suffix such that `prefix ++ suffix` has the given target digest
/// under [`HashAlgorithm::WeakXor32`].
///
/// This is the crate's model of a chosen-prefix collision: the attacker picks
/// arbitrary `prefix` content (the malicious update binary) and appends an
/// opaque blob that steers the weak digest onto the value an existing,
/// legitimately issued signature covers.
///
/// The prefix is padded to a 4-byte boundary before the correcting word is
/// appended, so the returned suffix includes that padding.
pub fn forge_collision_suffix(prefix: &[u8], target: Digest) -> Vec<u8> {
    let pad = (4 - prefix.len() % 4) % 4;
    let mut suffix = vec![0u8; pad];
    // After padding, appending one word changes the word count by 1 and XORs
    // the word in. Solve for the word.
    let padded_len_words = (prefix.len() + pad) / 4;
    let acc_with_pad = {
        let mut v = prefix.to_vec();
        v.extend_from_slice(&suffix);
        weak_xor32(&v) ^ (padded_len_words as u32).rotate_left(16)
    };
    let final_words = (padded_len_words + 1) as u32;
    let target32 = target.0 as u32;
    let word = acc_with_pad ^ target32 ^ final_words.rotate_left(16);
    suffix.extend_from_slice(&word.to_le_bytes());
    suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic() {
        for alg in [HashAlgorithm::WeakXor32, HashAlgorithm::Strong64] {
            assert_eq!(alg.digest(b"hello"), alg.digest(b"hello"));
            assert_ne!(alg.digest(b"hello"), alg.digest(b"hellp"));
        }
    }

    #[test]
    fn weak_is_broken_strong_is_not() {
        assert!(HashAlgorithm::WeakXor32.is_broken());
        assert!(!HashAlgorithm::Strong64.is_broken());
    }

    #[test]
    fn forged_suffix_hits_target() {
        let legit = b"terminal services license blob, weak-signed by vendor root";
        let target = HashAlgorithm::WeakXor32.digest(legit);
        for prefix in
            [&b"evil update binary"[..], b"", b"xyz", b"0123", b"a much longer malicious payload...."]
        {
            let suffix = forge_collision_suffix(prefix, target);
            let mut forged = prefix.to_vec();
            forged.extend_from_slice(&suffix);
            assert_eq!(HashAlgorithm::WeakXor32.digest(&forged), target, "prefix {prefix:?}");
            if !prefix.is_empty() {
                assert!(forged.starts_with(prefix));
            }
        }
    }

    #[test]
    fn forgery_does_not_transfer_to_strong() {
        let legit = b"license blob";
        let weak_target = HashAlgorithm::WeakXor32.digest(legit);
        let suffix = forge_collision_suffix(b"evil", weak_target);
        let mut forged = b"evil".to_vec();
        forged.extend_from_slice(&suffix);
        assert_ne!(HashAlgorithm::Strong64.digest(&forged), HashAlgorithm::Strong64.digest(legit));
    }

    #[test]
    fn zero_padding_is_not_a_free_collision() {
        let a = HashAlgorithm::WeakXor32.digest(b"abcd");
        let b = HashAlgorithm::WeakXor32.digest(b"abcd\0\0\0\0");
        assert_ne!(a, b);
    }
}
