//! Trust stores, verification policy, and code signatures.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use malsim_kernel::time::SimTime;

use crate::cert::{Certificate, Eku};
use crate::error::VerifyCertError;
use crate::hash::HashAlgorithm;
use crate::key::{KeyPair, SignatureTag};

/// A signature over content, carrying the signing certificate and the chain
/// back toward a root. This is what goes into an executable's signature slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeSignature {
    /// The end-entity certificate whose key signed the content.
    pub signer: Certificate,
    /// Intermediate certificates, leaf-to-root order (roots themselves live
    /// in the verifier's store, not the chain).
    pub chain: Vec<Certificate>,
    /// Digest algorithm used over the content.
    pub content_hash_alg: HashAlgorithm,
    /// The signature tag over the content digest.
    pub tag: SignatureTag,
}

impl CodeSignature {
    /// Signs `content` with `key`, presenting `signer` as the credential.
    ///
    /// No check is made here that `key` matches `signer` — presenting a
    /// mismatched pair is exactly what verification must catch.
    pub fn sign(key: &KeyPair, signer: Certificate, content_hash_alg: HashAlgorithm, content: &[u8]) -> Self {
        let digest = content_hash_alg.digest(content);
        CodeSignature { signer, chain: Vec::new(), content_hash_alg, tag: key.sign_digest(digest) }
    }

    /// Compact binary encoding for embedding in an image signature slot.
    pub fn to_bytes(&self) -> Vec<u8> {
        // serde-free, stable encoding: serial + subject + tag are enough for
        // the parser below because full certs are re-encoded via tbs bytes.
        let mut out = Vec::new();
        encode_cert(&mut out, &self.signer);
        out.push(self.chain.len() as u8);
        for c in &self.chain {
            encode_cert(&mut out, c);
        }
        out.push(match self.content_hash_alg {
            HashAlgorithm::WeakXor32 => 1,
            HashAlgorithm::Strong64 => 2,
        });
        out.extend_from_slice(&self.tag.bits().to_le_bytes());
        out
    }

    /// Parses the encoding produced by [`CodeSignature::to_bytes`].
    ///
    /// Returns `None` on any malformation (truncation, bad enum codes).
    pub fn parse(bytes: &[u8]) -> Option<CodeSignature> {
        let mut pos = 0usize;
        let signer = decode_cert(bytes, &mut pos)?;
        let n = *bytes.get(pos)? as usize;
        pos += 1;
        let mut chain = Vec::with_capacity(n);
        for _ in 0..n {
            chain.push(decode_cert(bytes, &mut pos)?);
        }
        let alg = match *bytes.get(pos)? {
            1 => HashAlgorithm::WeakXor32,
            2 => HashAlgorithm::Strong64,
            _ => return None,
        };
        pos += 1;
        let raw: [u8; 8] = bytes.get(pos..pos + 8)?.try_into().ok()?;
        let tag = SignatureTag::from_bits(u64::from_le_bytes(raw));
        Some(CodeSignature { signer, chain, content_hash_alg: alg, tag })
    }
}

fn encode_cert(out: &mut Vec<u8>, cert: &Certificate) {
    let tbs = cert.tbs_bytes();
    out.extend_from_slice(&(tbs.len() as u32).to_le_bytes());
    out.extend_from_slice(&tbs);
    out.extend_from_slice(&cert.issuer_sig.bits().to_le_bytes());
}

fn decode_cert(bytes: &[u8], pos: &mut usize) -> Option<Certificate> {
    let len: [u8; 4] = bytes.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    let len = u32::from_le_bytes(len) as usize;
    let tbs = bytes.get(*pos..*pos + len)?.to_vec();
    *pos += len;
    let sig: [u8; 8] = bytes.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Certificate::from_tbs_bytes(&tbs, SignatureTag::from_bits(u64::from_le_bytes(sig)))
}

/// How strictly a verifier applies policy. Captures the historical states the
/// paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyPolicy {
    /// Accept signatures whose content digest uses a broken hash. The
    /// pre-advisory Windows Update path effectively did.
    pub accept_weak_hash: bool,
    /// Require the signer certificate to carry the EKU matching the
    /// operation. The flawed legacy path did not.
    pub enforce_eku: bool,
}

impl VerifyPolicy {
    /// The permissive legacy policy that made the Flame forgery viable.
    pub fn legacy() -> Self {
        VerifyPolicy { accept_weak_hash: true, enforce_eku: false }
    }

    /// The post-advisory strict policy.
    pub fn strict() -> Self {
        VerifyPolicy { accept_weak_hash: false, enforce_eku: true }
    }
}

/// A verifier's view of the PKI: trusted roots plus an explicit untrusted
/// (revoked) list — the mechanism of Microsoft advisory 2718704.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrustStore {
    roots: BTreeMap<u64, Certificate>,
    untrusted: BTreeSet<u64>,
}

impl TrustStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TrustStore::default()
    }

    /// Adds a trusted root certificate.
    ///
    /// # Panics
    ///
    /// Panics if the certificate is not self-signed.
    pub fn add_root(&mut self, cert: Certificate) {
        assert!(cert.is_root(), "only self-signed certificates can be roots");
        self.roots.insert(cert.serial, cert);
    }

    /// Moves a certificate serial to the untrusted store. Any chain that
    /// includes it (as signer, intermediate, or root) then fails.
    pub fn distrust(&mut self, serial: u64) {
        self.untrusted.insert(serial);
    }

    /// Whether a serial has been explicitly distrusted.
    pub fn is_distrusted(&self, serial: u64) -> bool {
        self.untrusted.contains(&serial)
    }

    /// Number of trusted roots.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Verifies a certificate chain at time `now` for an operation requiring
    /// `required_eku` (checked on the end-entity only, when policy enforces
    /// EKU).
    ///
    /// # Errors
    ///
    /// Returns the first policy violation found, walking leaf to root.
    pub fn verify_chain(
        &self,
        signer: &Certificate,
        chain: &[Certificate],
        now: SimTime,
        required_eku: Eku,
        policy: VerifyPolicy,
    ) -> Result<(), VerifyCertError> {
        if policy.enforce_eku && !signer.has_eku(required_eku) {
            return Err(VerifyCertError::MissingEku { serial: signer.serial, required: required_eku });
        }
        let mut current = signer;
        let mut walked: Vec<&Certificate> = vec![signer];
        walked.extend(chain.iter());
        for cert in &walked {
            if self.untrusted.contains(&cert.serial) {
                return Err(VerifyCertError::Distrusted { serial: cert.serial });
            }
            if !cert.is_valid_at(now) {
                return Err(VerifyCertError::Expired { serial: cert.serial });
            }
            if !policy.accept_weak_hash && cert.hash_alg.is_broken() {
                return Err(VerifyCertError::WeakHashRejected { serial: cert.serial });
            }
        }
        for next in chain {
            if current.issuer_serial != next.serial {
                return Err(VerifyCertError::ChainBroken { serial: current.serial });
            }
            if !next.has_eku(Eku::CertificateAuthority) {
                return Err(VerifyCertError::MissingEku {
                    serial: next.serial,
                    required: Eku::CertificateAuthority,
                });
            }
            if !next.public_key.verify_digest(current.tbs_digest(), current.issuer_sig) {
                return Err(VerifyCertError::BadSignature { serial: current.serial });
            }
            current = next;
        }
        let root = self
            .roots
            .get(&current.issuer_serial)
            .ok_or(VerifyCertError::UntrustedRoot { serial: current.issuer_serial })?;
        if self.untrusted.contains(&root.serial) {
            return Err(VerifyCertError::Distrusted { serial: root.serial });
        }
        if !root.is_valid_at(now) {
            return Err(VerifyCertError::Expired { serial: root.serial });
        }
        if !root.public_key.verify_digest(current.tbs_digest(), current.issuer_sig) {
            return Err(VerifyCertError::BadSignature { serial: current.serial });
        }
        Ok(())
    }

    /// Verifies a [`CodeSignature`] over `content` for an operation requiring
    /// `required_eku`.
    ///
    /// # Errors
    ///
    /// Chain errors as in [`TrustStore::verify_chain`], plus
    /// [`VerifyCertError::BadSignature`] when the content tag does not verify
    /// and [`VerifyCertError::WeakHashRejected`] when the content digest uses
    /// a broken hash under a strict policy.
    pub fn verify_code(
        &self,
        content: &[u8],
        sig: &CodeSignature,
        now: SimTime,
        required_eku: Eku,
        policy: VerifyPolicy,
    ) -> Result<(), VerifyCertError> {
        if !policy.accept_weak_hash && sig.content_hash_alg.is_broken() {
            return Err(VerifyCertError::WeakHashRejected { serial: sig.signer.serial });
        }
        self.verify_chain(&sig.signer, &sig.chain, now, required_eku, policy)?;
        let digest = sig.content_hash_alg.digest(content);
        if !sig.signer.public_key.verify_digest(digest, sig.tag) {
            return Err(VerifyCertError::BadSignature { serial: sig.signer.serial });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::key::KeyPair;

    fn far() -> SimTime {
        SimTime::from_utc(2030, 1, 1, 0, 0, 0)
    }

    fn setup() -> (TrustStore, CertificateAuthority, KeyPair, Certificate) {
        let ca = CertificateAuthority::new_root("Root CA", 1, SimTime::EPOCH, far());
        let mut store = TrustStore::new();
        store.add_root(ca.root_certificate().clone());
        let key = KeyPair::from_seed(50);
        let cert = ca.issue(
            "Vendor",
            key.public(),
            vec![Eku::CodeSigning, Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        (store, ca, key, cert)
    }

    #[test]
    fn valid_code_signature_verifies() {
        let (store, _ca, key, cert) = setup();
        let content = b"driver bytes";
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, content);
        store
            .verify_code(content, &sig, SimTime::from_millis(5), Eku::DriverSigning, VerifyPolicy::strict())
            .unwrap();
    }

    #[test]
    fn tampered_content_fails() {
        let (store, _ca, key, cert) = setup();
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"original");
        let err = store
            .verify_code(b"tampered", &sig, SimTime::from_millis(5), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::BadSignature { .. }));
    }

    #[test]
    fn mismatched_key_and_cert_fails() {
        let (store, _ca, _key, cert) = setup();
        let other = KeyPair::from_seed(999);
        let sig = CodeSignature::sign(&other, cert, HashAlgorithm::Strong64, b"content");
        let err = store
            .verify_code(b"content", &sig, SimTime::from_millis(5), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::BadSignature { .. }));
    }

    #[test]
    fn unknown_root_fails() {
        let (_, _ca, key, cert) = setup();
        let empty = TrustStore::new();
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"x");
        let err = empty
            .verify_code(b"x", &sig, SimTime::from_millis(5), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::UntrustedRoot { .. }));
    }

    #[test]
    fn distrust_kills_chain() {
        let (mut store, _ca, key, cert) = setup();
        let serial = cert.serial;
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"x");
        store
            .verify_code(b"x", &sig, SimTime::from_millis(5), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap();
        store.distrust(serial);
        assert!(store.is_distrusted(serial));
        let err = store
            .verify_code(b"x", &sig, SimTime::from_millis(5), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::Distrusted { .. }));
    }

    #[test]
    fn expiry_is_enforced() {
        let (mut store, _, _, _) = setup();
        let ca = CertificateAuthority::new_root("Root2", 2, SimTime::EPOCH, far());
        store.add_root(ca.root_certificate().clone());
        let key = KeyPair::from_seed(5);
        let cert = ca.issue(
            "Short lived",
            key.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            SimTime::from_millis(100),
        );
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"x");
        let err = store
            .verify_code(b"x", &sig, SimTime::from_millis(200), Eku::CodeSigning, VerifyPolicy::strict())
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::Expired { .. }));
    }

    #[test]
    fn eku_enforcement_depends_on_policy() {
        let (mut store, _, _, _) = setup();
        let ca = CertificateAuthority::new_root("MS Root", 7, SimTime::EPOCH, far());
        store.add_root(ca.root_certificate().clone());
        let (key, lic_cert) = ca.activate_terminal_services_licensing("Org", 9, SimTime::EPOCH, far());
        let sig = CodeSignature::sign(&key, lic_cert, HashAlgorithm::WeakXor32, b"update.exe");
        // Legacy path: licensing cert signs code successfully — the Flame flaw.
        store
            .verify_code(
                b"update.exe",
                &sig,
                SimTime::from_millis(5),
                Eku::CodeSigning,
                VerifyPolicy::legacy(),
            )
            .unwrap();
        // Strict path: rejected for EKU (or weak hash, whichever fires first).
        let err = store
            .verify_code(
                b"update.exe",
                &sig,
                SimTime::from_millis(5),
                Eku::CodeSigning,
                VerifyPolicy::strict(),
            )
            .unwrap_err();
        assert!(matches!(err, VerifyCertError::MissingEku { .. } | VerifyCertError::WeakHashRejected { .. }));
    }

    #[test]
    fn code_signature_bytes_roundtrip() {
        let (_, _ca, key, cert) = setup();
        let sig = CodeSignature::sign(&key, cert, HashAlgorithm::Strong64, b"content");
        let bytes = sig.to_bytes();
        let back = CodeSignature::parse(&bytes).unwrap();
        assert_eq!(back, sig);
        assert_eq!(CodeSignature::parse(&bytes[..bytes.len() - 1]), None);
        assert_eq!(CodeSignature::parse(&[]), None);
    }
}
