//! Certificate authorities and the Terminal Services licensing flow.

use malsim_kernel::time::SimTime;

use crate::cert::{Certificate, Eku};
use crate::hash::HashAlgorithm;
use crate::key::{KeyPair, PublicKey};

/// A certificate authority: a root (or intermediate) key that can issue
/// certificates.
///
/// # Examples
///
/// ```
/// use malsim_certs::authority::CertificateAuthority;
/// use malsim_certs::cert::Eku;
/// use malsim_certs::hash::HashAlgorithm;
/// use malsim_certs::key::KeyPair;
/// use malsim_kernel::time::SimTime;
///
/// let far = SimTime::from_utc(2030, 1, 1, 0, 0, 0);
/// let ca = CertificateAuthority::new_root("Microsoft Root", 1, SimTime::EPOCH, far);
/// let vendor = KeyPair::from_seed(9);
/// let cert = ca.issue(
///     "Realtek Semiconductor Corp",
///     vendor.public(),
///     vec![Eku::DriverSigning],
///     HashAlgorithm::Strong64,
///     SimTime::EPOCH,
///     far,
/// );
/// assert_eq!(cert.issuer_serial, ca.root_certificate().serial);
/// ```
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    key: KeyPair,
    root: Certificate,
    next_serial: std::cell::Cell<u64>,
}

impl CertificateAuthority {
    /// Creates a self-signed root CA.
    ///
    /// `seed` derives the CA key; the root certificate gets serial
    /// `seed * 1_000_000 + 1` so multiple CAs in one scenario don't collide
    /// as long as their seeds differ.
    pub fn new_root(subject: impl Into<String>, seed: u64, not_before: SimTime, not_after: SimTime) -> Self {
        let key = KeyPair::from_seed(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
        let serial = seed * 1_000_000 + 1;
        let mut root = Certificate {
            serial,
            subject: subject.into(),
            issuer_serial: serial,
            public_key: key.public(),
            ekus: vec![Eku::CertificateAuthority],
            hash_alg: HashAlgorithm::Strong64,
            not_before,
            not_after,
            issuer_sig: key.sign_digest(HashAlgorithm::Strong64.digest(&[])),
        };
        root.issuer_sig = key.sign_digest(root.tbs_digest());
        CertificateAuthority { key, root, next_serial: std::cell::Cell::new(serial + 1) }
    }

    /// The CA's self-signed certificate.
    pub fn root_certificate(&self) -> &Certificate {
        &self.root
    }

    /// Issues a certificate binding `subject_key` to `subject`.
    pub fn issue(
        &self,
        subject: impl Into<String>,
        subject_key: PublicKey,
        ekus: Vec<Eku>,
        hash_alg: HashAlgorithm,
        not_before: SimTime,
        not_after: SimTime,
    ) -> Certificate {
        let serial = self.next_serial.get();
        self.next_serial.set(serial + 1);
        let mut cert = Certificate {
            serial,
            subject: subject.into(),
            issuer_serial: self.root.serial,
            public_key: subject_key,
            ekus,
            hash_alg,
            not_before,
            not_after,
            issuer_sig: self.key.sign_digest(HashAlgorithm::Strong64.digest(&[])),
        };
        cert.issuer_sig = self.key.sign_digest(cert.tbs_digest());
        cert
    }

    /// The Terminal Services licensing flow from the paper's Figure 3: an
    /// enterprise activates a Terminal Services Licensing Server with the
    /// vendor, and receives a **limited-use** certificate meant only to
    /// verify license ownership — but issued on the **legacy weak-hash
    /// signing path**. Returns the enterprise's key pair and its licensing
    /// certificate.
    pub fn activate_terminal_services_licensing(
        &self,
        enterprise: impl Into<String>,
        enterprise_seed: u64,
        not_before: SimTime,
        not_after: SimTime,
    ) -> (KeyPair, Certificate) {
        let key = KeyPair::from_seed(enterprise_seed);
        let cert = self.issue(
            enterprise,
            key.public(),
            vec![Eku::LicenseVerification],
            HashAlgorithm::WeakXor32,
            not_before,
            not_after,
        );
        (key, cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far() -> SimTime {
        SimTime::from_utc(2030, 1, 1, 0, 0, 0)
    }

    #[test]
    fn root_is_self_signed_and_verifies() {
        let ca = CertificateAuthority::new_root("Root", 3, SimTime::EPOCH, far());
        let root = ca.root_certificate();
        assert!(root.is_root());
        assert!(root.public_key.verify_digest(root.tbs_digest(), root.issuer_sig));
    }

    #[test]
    fn issued_cert_verifies_against_root_key() {
        let ca = CertificateAuthority::new_root("Root", 3, SimTime::EPOCH, far());
        let subj = KeyPair::from_seed(77);
        let cert = ca.issue(
            "JMicron Technology Corp",
            subj.public(),
            vec![Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        assert!(ca.root_certificate().public_key.verify_digest(cert.tbs_digest(), cert.issuer_sig));
        assert_eq!(cert.issuer_serial, ca.root_certificate().serial);
    }

    #[test]
    fn serials_are_unique() {
        let ca = CertificateAuthority::new_root("Root", 3, SimTime::EPOCH, far());
        let k = KeyPair::from_seed(1);
        let a = ca.issue("A", k.public(), vec![], HashAlgorithm::Strong64, SimTime::EPOCH, far());
        let b = ca.issue("B", k.public(), vec![], HashAlgorithm::Strong64, SimTime::EPOCH, far());
        assert_ne!(a.serial, b.serial);
        assert_ne!(a.serial, ca.root_certificate().serial);
    }

    #[test]
    fn ts_licensing_cert_is_weak_and_limited() {
        let ca = CertificateAuthority::new_root("Microsoft Root", 3, SimTime::EPOCH, far());
        let (key, cert) = ca.activate_terminal_services_licensing("Contoso Ltd", 42, SimTime::EPOCH, far());
        assert_eq!(cert.hash_alg, HashAlgorithm::WeakXor32);
        assert!(cert.has_eku(Eku::LicenseVerification));
        assert!(!cert.has_eku(Eku::CodeSigning));
        assert_eq!(cert.public_key, key.public());
    }
}
