//! Certificates: subjects, extended key usage, validity, issuer signatures.

use serde::{Deserialize, Serialize};

use malsim_kernel::time::SimTime;

use crate::hash::{Digest, HashAlgorithm};
use crate::key::{PublicKey, SignatureTag};

/// Extended key usage: what a certificate is *allowed* to vouch for.
///
/// The Flame forgery story (paper Fig. 3) is precisely an EKU story: a
/// certificate issued for *license verification* ended up accepted on a
/// *code-signing* path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Eku {
    /// Signing user-mode executables.
    CodeSigning,
    /// Signing kernel-mode drivers (what Stuxnet's stolen certs enabled).
    DriverSigning,
    /// TLS-style server identity (C&C servers posing as web servers).
    ServerAuth,
    /// Verifying Terminal Services license ownership only.
    LicenseVerification,
    /// Issuing further certificates (CA).
    CertificateAuthority,
}

/// A certificate: a public key bound to a subject by an issuer's signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Unique serial within the simulation.
    pub serial: u64,
    /// Human-readable subject, e.g. `"Realtek Semiconductor Corp"`.
    pub subject: String,
    /// Serial of the issuing certificate (equal to `serial` for roots).
    pub issuer_serial: u64,
    /// The key this certificate binds.
    pub public_key: PublicKey,
    /// What the key may vouch for.
    pub ekus: Vec<Eku>,
    /// Digest algorithm the issuer used to sign this certificate — also the
    /// algorithm *this* certificate's key is presumed to sign with on legacy
    /// paths (the flaw).
    pub hash_alg: HashAlgorithm,
    /// Start of validity.
    pub not_before: SimTime,
    /// End of validity.
    pub not_after: SimTime,
    /// Issuer's signature over [`Certificate::tbs_bytes`].
    pub issuer_sig: SignatureTag,
}

impl Certificate {
    /// The to-be-signed byte encoding: everything except the issuer
    /// signature, in a canonical order.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.subject.len());
        out.extend_from_slice(&self.serial.to_le_bytes());
        out.extend_from_slice(&(self.subject.len() as u32).to_le_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&self.issuer_serial.to_le_bytes());
        out.extend_from_slice(&self.public_key.as_u64().to_le_bytes());
        out.push(self.ekus.len() as u8);
        for eku in &self.ekus {
            out.push(match eku {
                Eku::CodeSigning => 1,
                Eku::DriverSigning => 2,
                Eku::ServerAuth => 3,
                Eku::LicenseVerification => 4,
                Eku::CertificateAuthority => 5,
            });
        }
        out.push(match self.hash_alg {
            HashAlgorithm::WeakXor32 => 1,
            HashAlgorithm::Strong64 => 2,
        });
        out.extend_from_slice(&self.not_before.as_millis().to_le_bytes());
        out.extend_from_slice(&self.not_after.as_millis().to_le_bytes());
        out
    }

    /// Digest of the TBS bytes under this certificate's hash algorithm.
    pub fn tbs_digest(&self) -> Digest {
        self.hash_alg.digest(&self.tbs_bytes())
    }

    /// Rebuilds a certificate from its TBS encoding plus the issuer
    /// signature. Returns `None` on any malformation. Inverse of
    /// [`Certificate::tbs_bytes`].
    pub(crate) fn from_tbs_bytes(tbs: &[u8], issuer_sig: SignatureTag) -> Option<Certificate> {
        let mut pos = 0usize;
        fn take<'a>(b: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
            let out = b.get(*pos..*pos + n)?;
            *pos += n;
            Some(out)
        }
        let serial = u64::from_le_bytes(take(tbs, &mut pos, 8)?.try_into().ok()?);
        let subj_len = u32::from_le_bytes(take(tbs, &mut pos, 4)?.try_into().ok()?) as usize;
        let subject = String::from_utf8(take(tbs, &mut pos, subj_len)?.to_vec()).ok()?;
        let issuer_serial = u64::from_le_bytes(take(tbs, &mut pos, 8)?.try_into().ok()?);
        let public_key =
            crate::key::PublicKey::from_bits(u64::from_le_bytes(take(tbs, &mut pos, 8)?.try_into().ok()?));
        let n_ekus = *take(tbs, &mut pos, 1)?.first()? as usize;
        let mut ekus = Vec::with_capacity(n_ekus);
        for _ in 0..n_ekus {
            ekus.push(match *take(tbs, &mut pos, 1)?.first()? {
                1 => Eku::CodeSigning,
                2 => Eku::DriverSigning,
                3 => Eku::ServerAuth,
                4 => Eku::LicenseVerification,
                5 => Eku::CertificateAuthority,
                _ => return None,
            });
        }
        let hash_alg = match *take(tbs, &mut pos, 1)?.first()? {
            1 => HashAlgorithm::WeakXor32,
            2 => HashAlgorithm::Strong64,
            _ => return None,
        };
        let not_before = SimTime::from_millis(u64::from_le_bytes(take(tbs, &mut pos, 8)?.try_into().ok()?));
        let not_after = SimTime::from_millis(u64::from_le_bytes(take(tbs, &mut pos, 8)?.try_into().ok()?));
        if pos != tbs.len() {
            return None;
        }
        Some(Certificate {
            serial,
            subject,
            issuer_serial,
            public_key,
            ekus,
            hash_alg,
            not_before,
            not_after,
            issuer_sig,
        })
    }

    /// Whether the certificate is self-signed (a root).
    pub fn is_root(&self) -> bool {
        self.issuer_serial == self.serial
    }

    /// Whether `now` falls inside the validity window.
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// Whether the certificate carries the given usage.
    pub fn has_eku(&self, eku: Eku) -> bool {
        self.ekus.contains(&eku)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;

    #[test]
    fn tbs_changes_with_fields() {
        let ca =
            CertificateAuthority::new_root("Root", 1, SimTime::EPOCH, SimTime::from_millis(u64::MAX / 2));
        let kp = crate::key::KeyPair::from_seed(5);
        let c1 = ca.issue(
            "Subject A",
            kp.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            SimTime::from_millis(1_000_000),
        );
        let mut c2 = c1.clone();
        c2.subject = "Subject B".into();
        assert_ne!(c1.tbs_bytes(), c2.tbs_bytes());
        assert_ne!(c1.tbs_digest(), c2.tbs_digest());
    }

    #[test]
    fn validity_window() {
        let ca =
            CertificateAuthority::new_root("Root", 1, SimTime::EPOCH, SimTime::from_millis(u64::MAX / 2));
        let kp = crate::key::KeyPair::from_seed(5);
        let c = ca.issue(
            "S",
            kp.public(),
            vec![Eku::ServerAuth],
            HashAlgorithm::Strong64,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        );
        assert!(!c.is_valid_at(SimTime::from_millis(99)));
        assert!(c.is_valid_at(SimTime::from_millis(100)));
        assert!(c.is_valid_at(SimTime::from_millis(200)));
        assert!(!c.is_valid_at(SimTime::from_millis(201)));
    }

    #[test]
    fn eku_query() {
        let ca =
            CertificateAuthority::new_root("Root", 1, SimTime::EPOCH, SimTime::from_millis(u64::MAX / 2));
        let kp = crate::key::KeyPair::from_seed(5);
        let c = ca.issue(
            "S",
            kp.public(),
            vec![Eku::LicenseVerification],
            HashAlgorithm::WeakXor32,
            SimTime::EPOCH,
            SimTime::from_millis(1_000),
        );
        assert!(c.has_eku(Eku::LicenseVerification));
        assert!(!c.has_eku(Eku::CodeSigning));
        assert!(!c.is_root());
        assert!(ca.root_certificate().is_root());
    }
}
