//! Verification errors.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cert::Eku;

/// Why a certificate chain or code signature failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerifyCertError {
    /// The chain does not terminate at a trusted root.
    UntrustedRoot {
        /// Serial of the missing issuer.
        serial: u64,
    },
    /// A certificate in the chain is in the untrusted store.
    Distrusted {
        /// The distrusted serial.
        serial: u64,
    },
    /// A certificate is outside its validity window.
    Expired {
        /// The expired serial.
        serial: u64,
    },
    /// A signature (issuer-over-cert or key-over-content) does not verify.
    BadSignature {
        /// Serial of the certificate whose signature failed.
        serial: u64,
    },
    /// The end-entity lacks the extended key usage the operation requires.
    MissingEku {
        /// Serial of the offending certificate.
        serial: u64,
        /// The usage that was required.
        required: Eku,
    },
    /// Policy rejects signatures made with a broken hash algorithm.
    WeakHashRejected {
        /// Serial of the offending certificate.
        serial: u64,
    },
    /// An intermediate does not chain to the next certificate.
    ChainBroken {
        /// Serial of the certificate whose issuer was not found next.
        serial: u64,
    },
}

impl fmt::Display for VerifyCertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyCertError::UntrustedRoot { serial } => {
                write!(f, "chain terminates at unknown issuer {serial}")
            }
            VerifyCertError::Distrusted { serial } => {
                write!(f, "certificate {serial} is explicitly distrusted")
            }
            VerifyCertError::Expired { serial } => write!(f, "certificate {serial} is expired"),
            VerifyCertError::BadSignature { serial } => {
                write!(f, "signature on certificate {serial} does not verify")
            }
            VerifyCertError::MissingEku { serial, required } => {
                write!(f, "certificate {serial} lacks required usage {required:?}")
            }
            VerifyCertError::WeakHashRejected { serial } => {
                write!(f, "certificate {serial} uses a rejected weak hash algorithm")
            }
            VerifyCertError::ChainBroken { serial } => {
                write!(f, "issuer of certificate {serial} not adjacent in chain")
            }
        }
    }
}

impl Error for VerifyCertError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_serials() {
        assert!(VerifyCertError::Expired { serial: 9 }.to_string().contains('9'));
        assert!(VerifyCertError::MissingEku { serial: 4, required: Eku::CodeSigning }
            .to_string()
            .contains("CodeSigning"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>(_: E) {}
        assert_err(VerifyCertError::ChainBroken { serial: 1 });
    }
}
