//! # malsim-certs
//!
//! Toy public-key infrastructure for the `malsim` simulation workspace.
//!
//! The paper's three campaigns are, among other things, three abuses of the
//! code-signing ecosystem: Stuxnet loaded kernel drivers under certificates
//! stolen from JMicron and Realtek; Flame leveraged a limited-use Terminal
//! Services licensing certificate into a code-signing forgery via a flawed
//! (weak-hash) signing algorithm; Shamoon reused a legitimately signed
//! third-party disk driver. This crate provides the policy machinery those
//! stories run on:
//!
//! - [`key`] — key pairs and signature tags;
//! - [`hash`] — a deliberately collision-broken legacy algorithm next to a
//!   collision-resistant one;
//! - [`cert`] / [`authority`] — certificates with EKU purposes, validity,
//!   and issuing CAs (including the Terminal Services licensing flow);
//! - [`store`] — trust/untrusted stores, verification policies
//!   ([`store::VerifyPolicy::legacy`] vs [`store::VerifyPolicy::strict`]),
//!   and [`store::CodeSignature`] blobs for executable images;
//! - [`forgery`] — the Figure-3 collision attack, end to end.
//!
//! ## Threat-model note
//!
//! Nothing here is real cryptography. Signatures are *structurally* secure:
//! within the simulation, minting a valid tag requires holding the
//! [`key::KeyPair`] value, and the only forgery path is the deliberately
//! modelled weak-hash collision. This is sufficient — and honest — for a
//! behavioural simulation, and useless for any real-world signing purpose.
//!
//! # Examples
//!
//! ```
//! use malsim_certs::prelude::*;
//! use malsim_kernel::time::SimTime;
//!
//! let far = SimTime::from_utc(2030, 1, 1, 0, 0, 0);
//! let ca = CertificateAuthority::new_root("Vendor Root", 1, SimTime::EPOCH, far);
//! let mut store = TrustStore::new();
//! store.add_root(ca.root_certificate().clone());
//!
//! // A vendor signs a driver; the OS verifies it for driver loading.
//! let vendor = KeyPair::from_seed(7);
//! let cert = ca.issue("Realtek", vendor.public(), vec![Eku::DriverSigning],
//!                     HashAlgorithm::Strong64, SimTime::EPOCH, far);
//! let sig = CodeSignature::sign(&vendor, cert, HashAlgorithm::Strong64, b"driver");
//! store.verify_code(b"driver", &sig, SimTime::EPOCH, Eku::DriverSigning,
//!                   VerifyPolicy::strict())?;
//! # Ok::<(), malsim_certs::error::VerifyCertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod cert;
pub mod error;
pub mod forgery;
pub mod hash;
pub mod key;
pub mod store;

/// Commonly used items.
pub mod prelude {
    pub use crate::authority::CertificateAuthority;
    pub use crate::cert::{Certificate, Eku};
    pub use crate::error::VerifyCertError;
    pub use crate::forgery::{forge_signed_content, leverage_licensing_credential, ForgedCode};
    pub use crate::hash::{Digest, HashAlgorithm};
    pub use crate::key::{KeyPair, PublicKey, SignatureTag};
    pub use crate::store::{CodeSignature, TrustStore, VerifyPolicy};
}
