//! Property tests for the toy PKI: forgery always lands on the weak digest,
//! never on the strong one; chain verification is sound under random inputs;
//! the CodeSignature wire encoding round-trips.

use malsim_certs::prelude::*;
use malsim_kernel::time::SimTime;
use proptest::prelude::*;

fn far() -> SimTime {
    SimTime::from_utc(2035, 1, 1, 0, 0, 0)
}

proptest! {
    #[test]
    fn weak_collision_always_lands(
        benign in proptest::collection::vec(any::<u8>(), 0..300),
        evil in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let target = HashAlgorithm::WeakXor32.digest(&benign);
        let suffix = malsim_certs::hash::forge_collision_suffix(&evil, target);
        let mut forged = evil.clone();
        forged.extend_from_slice(&suffix);
        prop_assert_eq!(HashAlgorithm::WeakXor32.digest(&forged), target);
        prop_assert!(forged.starts_with(&evil));
        // Strong digests of distinct contents stay distinct.
        if forged != benign {
            prop_assert_ne!(
                HashAlgorithm::Strong64.digest(&forged),
                HashAlgorithm::Strong64.digest(&benign)
            );
        }
    }

    #[test]
    fn sign_verify_consistency(seed in any::<u64>(), content in proptest::collection::vec(any::<u8>(), 0..200)) {
        let kp = KeyPair::from_seed(seed);
        let d = HashAlgorithm::Strong64.digest(&content);
        let tag = kp.sign_digest(d);
        prop_assert!(kp.public().verify_digest(d, tag));
        let other = KeyPair::from_seed(seed.wrapping_add(1));
        prop_assert!(!other.public().verify_digest(d, tag));
    }

    #[test]
    fn issued_certs_verify_and_tamper_fails(
        seed in any::<u64>(),
        subject in "[a-zA-Z ]{1,40}",
        mutate_subject in any::<bool>(),
    ) {
        let ca = CertificateAuthority::new_root("Root", seed % 1000, SimTime::EPOCH, far());
        let kp = KeyPair::from_seed(seed);
        let cert = ca.issue(
            subject,
            kp.public(),
            vec![Eku::CodeSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        let root_key = ca.root_certificate().public_key;
        prop_assert!(root_key.verify_digest(cert.tbs_digest(), cert.issuer_sig));
        if mutate_subject {
            let mut bad = cert.clone();
            bad.subject.push('!');
            prop_assert!(!root_key.verify_digest(bad.tbs_digest(), bad.issuer_sig));
        }
    }

    #[test]
    fn code_signature_roundtrip(
        seed in any::<u64>(),
        content in proptest::collection::vec(any::<u8>(), 0..200),
        weak in any::<bool>(),
    ) {
        let ca = CertificateAuthority::new_root("Root", 3, SimTime::EPOCH, far());
        let kp = KeyPair::from_seed(seed);
        let alg = if weak { HashAlgorithm::WeakXor32 } else { HashAlgorithm::Strong64 };
        let cert = ca.issue("Subj", kp.public(), vec![Eku::CodeSigning], alg, SimTime::EPOCH, far());
        let sig = CodeSignature::sign(&kp, cert, alg, &content);
        let bytes = sig.to_bytes();
        prop_assert_eq!(CodeSignature::parse(&bytes), Some(sig));
    }

    #[test]
    fn code_signature_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = CodeSignature::parse(&bytes);
    }

    #[test]
    fn store_end_to_end(seed in any::<u64>(), distrust in any::<bool>()) {
        let ca = CertificateAuthority::new_root("Root", 9, SimTime::EPOCH, far());
        let mut store = TrustStore::new();
        store.add_root(ca.root_certificate().clone());
        let kp = KeyPair::from_seed(seed);
        let cert = ca.issue(
            "V",
            kp.public(),
            vec![Eku::DriverSigning],
            HashAlgorithm::Strong64,
            SimTime::EPOCH,
            far(),
        );
        let serial = cert.serial;
        let sig = CodeSignature::sign(&kp, cert, HashAlgorithm::Strong64, b"driver");
        let now = SimTime::from_millis(100);
        prop_assert!(store.verify_code(b"driver", &sig, now, Eku::DriverSigning, VerifyPolicy::strict()).is_ok());
        if distrust {
            store.distrust(serial);
            prop_assert!(store.verify_code(b"driver", &sig, now, Eku::DriverSigning, VerifyPolicy::strict()).is_err());
        }
    }
}
