//! Causal spans: the "why" behind the trace.
//!
//! A [`TraceLog`](crate::trace::TraceLog) records *what* happened; spans
//! record *why*. Every span carries an optional parent link, so a finished
//! run holds a forest whose roots are initial causes (a seeded USB stick, a
//! phishing email) and whose leaves are consequences (an exfiltrated
//! document, a destroyed centrifuge). Walking the parent chain of an
//! `Exfiltration` span answers the DFIR question the flat log cannot: which
//! beacon carried it, and which compromise that beacon belongs to.
//!
//! Span ids are allocated from a per-simulation counter in creation order.
//! A simulation run is single-threaded by construction, and parallel sweeps
//! key every point's randomness on the point identity, so span ids — like
//! the trace itself — are byte-identical at every worker-thread count.
//!
//! # Examples
//!
//! ```
//! use malsim_kernel::span::SpanLog;
//! use malsim_kernel::time::SimTime;
//! use malsim_kernel::trace::TraceCategory;
//!
//! let mut log = SpanLog::new();
//! let root = log.open(SimTime::EPOCH, TraceCategory::Infection, "host:a", "usb-lnk", None);
//! let beacon = log.open(SimTime::EPOCH, TraceCategory::CommandControl, "host:a", "beacon", Some(root));
//! let exfil =
//!     log.open(SimTime::EPOCH, TraceCategory::Exfiltration, "host:a", "upload", Some(beacon));
//! assert_eq!(log.root_of(exfil), Some(root));
//! assert!(log.has_ancestor_category(exfil, TraceCategory::Infection));
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;
use crate::trace::TraceCategory;

/// Identifier of one span, unique within a simulation run.
///
/// Ids start at 1 and increase in allocation order; `SpanId` ordering is
/// therefore creation ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id value (1-based).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// One causal span: a named interval of simulated time with a category, an
/// acting entity, an optional parent, and key-value attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The span this one is causally downstream of, if any.
    pub parent: Option<SpanId>,
    /// Filtering category (shared vocabulary with the trace).
    pub category: TraceCategory,
    /// The acting entity, e.g. `"host:eng-station"` or `"plant:natanz-a26"`.
    pub actor: String,
    /// Short machine-friendly name, e.g. `"infection"` or `"beacon"`.
    pub name: String,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed; `None` while still open.
    pub end: Option<SimTime>,
    /// Key-value attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Attribute value by key, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// The span store of one simulation run.
///
/// Spans are kept in id (= creation) order. Id allocation happens even when
/// the log is disabled, so code that stashes span ids in campaign state
/// behaves identically whether or not spans are retained — only the storage
/// is skipped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanLog {
    spans: Vec<Span>,
    next_id: u64,
    enabled: bool,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// Creates an empty, enabled log.
    pub fn new() -> Self {
        SpanLog { spans: Vec::new(), next_id: 1, enabled: true }
    }

    /// Creates a log that allocates ids but retains nothing (for large
    /// benchmark sweeps).
    pub fn disabled() -> Self {
        SpanLog { spans: Vec::new(), next_id: 1, enabled: false }
    }

    /// Whether spans are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span at `time`. Returns its id; the id is allocated (and
    /// deterministic) even when the log is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is an id this log never allocated.
    pub fn open(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        actor: impl Into<String>,
        name: impl Into<String>,
        parent: Option<SpanId>,
    ) -> SpanId {
        if let Some(p) = parent {
            assert!(p.0 < self.next_id, "parent {p} was never allocated");
        }
        let id = SpanId(self.next_id);
        self.next_id += 1;
        if self.enabled {
            self.spans.push(Span {
                id,
                parent,
                category,
                actor: actor.into(),
                name: name.into(),
                start: time,
                end: None,
                attrs: Vec::new(),
            });
        }
        id
    }

    /// Closes a span at `time`. Closing an unknown or already-closed span is
    /// a no-op (the id may belong to a disabled period).
    pub fn close(&mut self, id: SpanId, time: SimTime) {
        if let Some(i) = self.index_of(id) {
            let span = &mut self.spans[i];
            if span.end.is_none() {
                span.end = Some(time.max(span.start));
            }
        }
    }

    /// Appends a key-value attribute to a span (no-op for unknown ids).
    pub fn set_attr(&mut self, id: SpanId, key: impl Into<String>, value: impl Into<String>) {
        if let Some(i) = self.index_of(id) {
            self.spans[i].attrs.push((key.into(), value.into()));
        }
    }

    fn index_of(&self, id: SpanId) -> Option<usize> {
        self.spans.binary_search_by_key(&id, |s| s.id).ok()
    }

    /// Span by id, if retained.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.index_of(id).map(|i| &self.spans[i])
    }

    /// All spans in id (= creation) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans from retained-index `index` onward (creation order). Used by
    /// incremental consumers — e.g. the invariant checker — that examine
    /// each span exactly once; an out-of-range index yields an empty slice.
    pub fn spans_from(&self, index: usize) -> &[Span] {
        &self.spans[index.min(self.spans.len())..]
    }

    /// Spans of one category.
    pub fn of(&self, category: TraceCategory) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.category == category)
    }

    /// Direct children of a span.
    pub fn children_of(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// The chain from `id` up to its root, leaf first. Empty for unknown ids.
    pub fn chain(&self, id: SpanId) -> Vec<&Span> {
        let mut out = Vec::new();
        let mut cur = self.get(id);
        // Parent ids are strictly smaller than child ids (allocation order),
        // so the walk is bounded and cycle-free by construction; the budget
        // guards against a corrupted store anyway.
        let mut budget = self.spans.len() + 1;
        while let Some(span) = cur {
            out.push(span);
            if budget == 0 {
                break;
            }
            budget -= 1;
            cur = span.parent.and_then(|p| self.get(p));
        }
        out
    }

    /// The root ancestor of a span (itself, if parentless).
    pub fn root_of(&self, id: SpanId) -> Option<SpanId> {
        self.chain(id).last().map(|s| s.id)
    }

    /// Whether the span or any of its ancestors has the given category.
    pub fn has_ancestor_category(&self, id: SpanId, category: TraceCategory) -> bool {
        self.chain(id).iter().any(|s| s.category == category)
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the span forest as an indented tree, roots in id order.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.spans.iter().filter(|s| s.parent.is_none()) {
            self.render_subtree(root, 0, &mut out);
        }
        out
    }

    fn render_subtree(&self, span: &Span, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "[{}] {} {} {} ({})\n",
            span.start, span.id, span.category, span.name, span.actor
        ));
        for child in self.children_of(span.id) {
            self.render_subtree(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let mut log = SpanLog::new();
        let a = log.open(t(0), TraceCategory::Infection, "h", "a", None);
        let b = log.open(t(1), TraceCategory::Net, "h", "b", None);
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.as_u64(), 2);
        assert!(a < b);
    }

    #[test]
    fn parent_child_chain_and_root() {
        let mut log = SpanLog::new();
        let root = log.open(t(0), TraceCategory::Infection, "host:a", "infection", None);
        let c2 = log.open(t(5), TraceCategory::CommandControl, "host:a", "beacon", Some(root));
        let ex = log.open(t(6), TraceCategory::Exfiltration, "host:a", "upload", Some(c2));
        let chain: Vec<u64> = log.chain(ex).iter().map(|s| s.id.as_u64()).collect();
        assert_eq!(chain, vec![3, 2, 1], "leaf first, root last");
        assert_eq!(log.root_of(ex), Some(root));
        assert!(log.has_ancestor_category(ex, TraceCategory::Infection));
        assert!(!log.has_ancestor_category(ex, TraceCategory::Destruction));
        assert_eq!(log.children_of(root).count(), 1);
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn unknown_parent_panics() {
        let mut log = SpanLog::new();
        log.open(t(0), TraceCategory::Os, "h", "x", Some(SpanId(9)));
    }

    #[test]
    fn close_sets_end_once_and_never_before_start() {
        let mut log = SpanLog::new();
        let s = log.open(t(10), TraceCategory::Os, "h", "x", None);
        log.close(s, t(5));
        assert_eq!(log.get(s).unwrap().end, Some(t(10)), "end clamps to start");
        log.close(s, t(99));
        assert_eq!(log.get(s).unwrap().end, Some(t(10)), "second close is a no-op");
    }

    #[test]
    fn attrs_append_in_order() {
        let mut log = SpanLog::new();
        let s = log.open(t(0), TraceCategory::Scada, "plant:p", "implant", None);
        log.set_attr(s, "blocks", "2");
        log.set_attr(s, "bus", "profibus");
        let span = log.get(s).unwrap();
        assert_eq!(span.attr("blocks"), Some("2"));
        assert_eq!(span.attr("bus"), Some("profibus"));
        assert_eq!(span.attr("absent"), None);
    }

    #[test]
    fn disabled_log_still_allocates_deterministic_ids() {
        let mut log = SpanLog::disabled();
        let a = log.open(t(0), TraceCategory::Infection, "h", "a", None);
        let b = log.open(t(0), TraceCategory::Infection, "h", "b", Some(a));
        assert_eq!(a.as_u64(), 1);
        assert_eq!(b.as_u64(), 2);
        assert!(log.is_empty());
        assert_eq!(log.get(a), None);
        // Close/attr on unretained spans are harmless.
        log.close(b, t(1));
        log.set_attr(b, "k", "v");
    }

    #[test]
    fn spans_from_slices_incrementally() {
        let mut log = SpanLog::new();
        let a = log.open(t(0), TraceCategory::Infection, "h", "a", None);
        log.open(t(1), TraceCategory::Net, "h", "b", Some(a));
        assert_eq!(log.spans_from(0).len(), 2);
        assert_eq!(log.spans_from(1).len(), 1);
        assert_eq!(log.spans_from(1)[0].name, "b");
        assert!(log.spans_from(2).is_empty());
        assert!(log.spans_from(99).is_empty(), "out-of-range index is safe");
    }

    #[test]
    fn render_tree_indents_children() {
        let mut log = SpanLog::new();
        let root = log.open(t(0), TraceCategory::Infection, "host:a", "infection", None);
        log.open(t(1), TraceCategory::CommandControl, "host:a", "beacon", Some(root));
        let s = log.render_tree();
        assert!(s.contains("infection"));
        assert!(s.contains("  [") && s.contains("beacon"), "child line is indented: {s}");
    }
}
