//! Typed integer identifiers.
//!
//! Domain crates identify hosts, networks, certificates, PLCs, etc. with
//! small integer handles into arena-style tables. [`crate::define_id!`] stamps out a
//! newtype per entity kind so the compiler rejects cross-kind mix-ups
//! (C-NEWTYPE).

/// Defines a `u32`-backed identifier newtype.
///
/// The generated type provides `new`, `index`, `as_u32`, ordering, hashing,
/// `Display` (`prefix#n`), and serde support.
///
/// # Examples
///
/// ```
/// malsim_kernel::define_id!(
///     /// Identifies a widget.
///     pub struct WidgetId("widget")
/// );
///
/// let w = WidgetId::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(w.to_string(), "widget#3");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident($prefix:literal)) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        $vis struct $name(u32);

        impl $name {
            /// Creates an id from an arena index.
            $vis const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// The arena index this id denotes.
            $vis const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw numeric value.
            $vis const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }
    };
}

/// A typed arena: push-only storage addressed by a [`crate::define_id!`] id.
///
/// # Examples
///
/// ```
/// use malsim_kernel::ids::Arena;
///
/// malsim_kernel::define_id!(pub struct ThingId("thing"));
/// malsim_kernel::impl_arena_id!(ThingId);
///
/// let mut arena: Arena<ThingId, String> = Arena::new();
/// let id = arena.push("hello".to_owned());
/// assert_eq!(arena[id], "hello");
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Arena<I, T> {
    items: Vec<T>,
    _marker: std::marker::PhantomData<I>,
}

/// Minimal interface [`Arena`] needs from an id type; implemented
/// automatically for every [`crate::define_id!`] type via `new`/`index`.
pub trait ArenaId: Copy {
    /// Builds the id for an index.
    fn from_index(index: usize) -> Self;
    /// The index the id denotes.
    fn to_index(self) -> usize;
}

/// Implements [`ArenaId`] for one or more [`crate::define_id!`] types.
#[macro_export]
macro_rules! impl_arena_id {
    ($($name:ident),+ $(,)?) => {
        $(
            impl $crate::ids::ArenaId for $name {
                fn from_index(index: usize) -> Self {
                    Self::new(index)
                }
                fn to_index(self) -> usize {
                    self.index()
                }
            }
        )+
    };
}

impl<I: ArenaId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena { items: Vec::new(), _marker: std::marker::PhantomData }
    }

    /// Appends an item, returning its id.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Shared access by id, if in range.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.to_index())
    }

    /// Mutable access by id, if in range.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.to_index())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the arena holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(id, &item)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates `(id, &mut item)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items.iter_mut().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.items.len()).map(I::from_index)
    }
}

impl<I: ArenaId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<I: ArenaId, T> std::ops::Index<I> for Arena<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.to_index()]
    }
}

impl<I: ArenaId, T> std::ops::IndexMut<I> for Arena<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.to_index()]
    }
}

/// Stable reference into a [`GenSlab`]: a slot index plus the generation the
/// slot had when the value was inserted.
///
/// Removing a value bumps the slot's generation, so a `SlotRef` held past the
/// value's lifetime goes stale instead of silently aliasing whatever reuses
/// the slot — lookups and removals through a stale ref return `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef {
    index: u32,
    generation: u32,
}

impl SlotRef {
    /// The slot index this ref denotes.
    pub const fn index(self) -> usize {
        self.index as usize
    }

    /// The generation the slot had at insertion.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Entry<T> {
    Free { next_free: u32 },
    Occupied(T),
}

#[derive(Debug, Clone)]
struct GenSlot<T> {
    generation: u32,
    entry: Entry<T>,
}

/// A generational slab: slot-reusing storage with O(1) insert/lookup/remove
/// and stale-handle detection.
///
/// Freed slots go on an intrusive free list and are reused LIFO; each free
/// bumps the slot's generation so outstanding [`SlotRef`]s to the previous
/// occupant stop resolving. This is the backing store for the scheduler's
/// event queue ([`crate::calq::CalQueue`]), where it makes cancellation an
/// O(1) generation check instead of a set-membership probe.
///
/// # Examples
///
/// ```
/// use malsim_kernel::ids::GenSlab;
///
/// let mut slab: GenSlab<&str> = GenSlab::new();
/// let a = slab.insert("a");
/// assert_eq!(slab.remove(a), Some("a"));
/// let b = slab.insert("b"); // reuses the slot...
/// assert_eq!(b.index(), a.index());
/// assert_ne!(b.generation(), a.generation());
/// assert_eq!(slab.get(a), None, "...but the stale ref stays dead");
/// assert_eq!(slab.get(b), Some(&"b"));
/// ```
#[derive(Debug, Clone)]
pub struct GenSlab<T> {
    slots: Vec<GenSlot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        GenSlab { slots: Vec::new(), free_head: NIL, len: 0 }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotRef {
        self.len += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            let Entry::Free { next_free } = slot.entry else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next_free;
            slot.entry = Entry::Occupied(value);
            return SlotRef { index, generation: slot.generation };
        }
        let index = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32 indices");
        assert!(index != NIL, "slab capacity exceeds u32 indices");
        self.slots.push(GenSlot { generation: 0, entry: Entry::Occupied(value) });
        SlotRef { index, generation: 0 }
    }

    /// Shared access through a ref; `None` when stale or out of range.
    pub fn get(&self, r: SlotRef) -> Option<&T> {
        match self.slots.get(r.index()) {
            Some(GenSlot { generation, entry: Entry::Occupied(v) }) if *generation == r.generation => Some(v),
            _ => None,
        }
    }

    /// Mutable access through a ref; `None` when stale or out of range.
    pub fn get_mut(&mut self, r: SlotRef) -> Option<&mut T> {
        match self.slots.get_mut(r.index()) {
            Some(GenSlot { generation, entry: Entry::Occupied(v) }) if *generation == r.generation => Some(v),
            _ => None,
        }
    }

    /// Whether the ref still resolves to its original value.
    pub fn contains(&self, r: SlotRef) -> bool {
        self.get(r).is_some()
    }

    /// Removes the value behind a ref, bumping the slot generation so the ref
    /// (and any copy of it) goes stale. `None` when already stale.
    pub fn remove(&mut self, r: SlotRef) -> Option<T> {
        if !self.contains(r) {
            return None;
        }
        self.remove_at(r.index())
    }

    /// Shared access by raw index, ignoring generations. For intrusive
    /// structures that store `u32` links between occupied slots.
    pub fn get_index(&self, index: usize) -> Option<&T> {
        match self.slots.get(index) {
            Some(GenSlot { entry: Entry::Occupied(v), .. }) => Some(v),
            _ => None,
        }
    }

    /// Mutable access by raw index, ignoring generations.
    pub fn get_index_mut(&mut self, index: usize) -> Option<&mut T> {
        match self.slots.get_mut(index) {
            Some(GenSlot { entry: Entry::Occupied(v), .. }) => Some(v),
            _ => None,
        }
    }

    /// The current ref for an occupied slot, by raw index.
    pub fn ref_at(&self, index: usize) -> Option<SlotRef> {
        match self.slots.get(index) {
            Some(GenSlot { generation, entry: Entry::Occupied(_) }) => {
                Some(SlotRef { index: index as u32, generation: *generation })
            }
            _ => None,
        }
    }

    /// Removes the value in a slot by raw index, bumping the generation.
    pub fn remove_at(&mut self, index: usize) -> Option<T> {
        let slot = self.slots.get_mut(index)?;
        if matches!(slot.entry, Entry::Free { .. }) {
            return None;
        }
        let entry = std::mem::replace(&mut slot.entry, Entry::Free { next_free: self.free_head });
        slot.generation = slot.generation.wrapping_add(1);
        self.free_head = index as u32;
        self.len -= 1;
        match entry {
            Entry::Occupied(v) => Some(v),
            Entry::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Iterates `(ref, &value)` over occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotRef, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| match &slot.entry {
            Entry::Occupied(v) => Some((SlotRef { index: i as u32, generation: slot.generation }, v)),
            Entry::Free { .. } => None,
        })
    }
}

impl<T> Default for GenSlab<T> {
    fn default() -> Self {
        GenSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::define_id!(pub struct TestId("test"));
    crate::impl_arena_id!(TestId);

    #[test]
    fn id_basics() {
        let a = TestId::new(0);
        let b = TestId::new(1);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(b.to_string(), "test#1");
        assert_eq!(b.index(), 1);
        assert_eq!(b.as_u32(), 1);
    }

    #[test]
    fn arena_push_get_index() {
        let mut arena: Arena<TestId, &str> = Arena::new();
        assert!(arena.is_empty());
        let a = arena.push("a");
        let b = arena.push("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena[a], "a");
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.get(TestId::new(5)), None);
        arena[a] = "z";
        assert_eq!(arena[a], "z");
    }

    #[test]
    fn arena_iteration() {
        let mut arena: Arena<TestId, u32> = Arena::new();
        for v in [10, 20, 30] {
            arena.push(v);
        }
        let pairs: Vec<(usize, u32)> = arena.iter().map(|(i, v)| (i.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
        for (_, v) in arena.iter_mut() {
            *v += 1;
        }
        assert_eq!(arena[TestId::new(2)], 31);
        assert_eq!(arena.ids().count(), 3);
    }
}
