//! Typed integer identifiers.
//!
//! Domain crates identify hosts, networks, certificates, PLCs, etc. with
//! small integer handles into arena-style tables. [`crate::define_id!`] stamps out a
//! newtype per entity kind so the compiler rejects cross-kind mix-ups
//! (C-NEWTYPE).

/// Defines a `u32`-backed identifier newtype.
///
/// The generated type provides `new`, `index`, `as_u32`, ordering, hashing,
/// `Display` (`prefix#n`), and serde support.
///
/// # Examples
///
/// ```
/// malsim_kernel::define_id!(
///     /// Identifies a widget.
///     pub struct WidgetId("widget")
/// );
///
/// let w = WidgetId::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(w.to_string(), "widget#3");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident($prefix:literal)) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        $vis struct $name(u32);

        impl $name {
            /// Creates an id from an arena index.
            $vis const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// The arena index this id denotes.
            $vis const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw numeric value.
            $vis const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }
    };
}

/// A typed arena: push-only storage addressed by a [`crate::define_id!`] id.
///
/// # Examples
///
/// ```
/// use malsim_kernel::ids::Arena;
///
/// malsim_kernel::define_id!(pub struct ThingId("thing"));
/// malsim_kernel::impl_arena_id!(ThingId);
///
/// let mut arena: Arena<ThingId, String> = Arena::new();
/// let id = arena.push("hello".to_owned());
/// assert_eq!(arena[id], "hello");
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Arena<I, T> {
    items: Vec<T>,
    _marker: std::marker::PhantomData<I>,
}

/// Minimal interface [`Arena`] needs from an id type; implemented
/// automatically for every [`crate::define_id!`] type via `new`/`index`.
pub trait ArenaId: Copy {
    /// Builds the id for an index.
    fn from_index(index: usize) -> Self;
    /// The index the id denotes.
    fn to_index(self) -> usize;
}

/// Implements [`ArenaId`] for one or more [`crate::define_id!`] types.
#[macro_export]
macro_rules! impl_arena_id {
    ($($name:ident),+ $(,)?) => {
        $(
            impl $crate::ids::ArenaId for $name {
                fn from_index(index: usize) -> Self {
                    Self::new(index)
                }
                fn to_index(self) -> usize {
                    self.index()
                }
            }
        )+
    };
}

impl<I: ArenaId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena { items: Vec::new(), _marker: std::marker::PhantomData }
    }

    /// Appends an item, returning its id.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from_index(self.items.len());
        self.items.push(item);
        id
    }

    /// Shared access by id, if in range.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.to_index())
    }

    /// Mutable access by id, if in range.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.to_index())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the arena holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(id, &item)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates `(id, &mut item)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items.iter_mut().enumerate().map(|(i, t)| (I::from_index(i), t))
    }

    /// Iterates all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.items.len()).map(I::from_index)
    }
}

impl<I: ArenaId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<I: ArenaId, T> std::ops::Index<I> for Arena<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.to_index()]
    }
}

impl<I: ArenaId, T> std::ops::IndexMut<I> for Arena<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.to_index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::define_id!(pub struct TestId("test"));
    crate::impl_arena_id!(TestId);

    #[test]
    fn id_basics() {
        let a = TestId::new(0);
        let b = TestId::new(1);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(b.to_string(), "test#1");
        assert_eq!(b.index(), 1);
        assert_eq!(b.as_u32(), 1);
    }

    #[test]
    fn arena_push_get_index() {
        let mut arena: Arena<TestId, &str> = Arena::new();
        assert!(arena.is_empty());
        let a = arena.push("a");
        let b = arena.push("b");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena[a], "a");
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.get(TestId::new(5)), None);
        arena[a] = "z";
        assert_eq!(arena[a], "z");
    }

    #[test]
    fn arena_iteration() {
        let mut arena: Arena<TestId, u32> = Arena::new();
        for v in [10, 20, 30] {
            arena.push(v);
        }
        let pairs: Vec<(usize, u32)> = arena.iter().map(|(i, v)| (i.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
        for (_, v) in arena.iter_mut() {
            *v += 1;
        }
        assert_eq!(arena[TestId::new(2)], 31);
        assert_eq!(arena.ids().count(), 3);
    }
}
