//! Runtime invariant checker: cross-subsystem conservation laws, verified
//! after every dispatch.
//!
//! Long sweeps amplify small model bugs: a stale host id in an infection
//! registry or an exfiltration span with no infection root silently corrupts
//! thousands of downstream grid points before any headline number looks
//! wrong. The checker makes those laws *executable*. It is opt-in exactly
//! like the scheduler profiler — [`Sim::enable_invariants`]
//! (crate::sched::Sim::enable_invariants) arms it, and the unarmed dispatch
//! path pays a single `Option` branch.
//!
//! Violations are collected as structured [`InvariantViolation`] values (or,
//! in strict mode, raised as panics the supervised sweep runner quarantines),
//! never as `debug_assert!`s: a release-mode soak run reports the same
//! breaches a debug run would.
//!
//! Kernel-level laws come built in and run incrementally (each span and
//! fault window is examined exactly once, at the first dispatch after its
//! creation):
//!
//! - **monotonic-time** — the clock observed after a dispatch never runs
//!   backwards.
//! - **span-causality** — every `Exfiltration` or `Destruction` span reaches
//!   an `Infection` root through its parent chain
//!   ([`SpanLog::has_ancestor_category`]). Vacuous when the span log is
//!   disabled (large benchmark sweeps retain nothing to check).
//! - **fault-windows** — every scheduled [`FaultWindow`]
//!   (crate::fault::FaultWindow) is well-formed per
//!   [`FaultWindow::validate`](crate::fault::FaultWindow::validate).
//!
//! World-level laws (e.g. *infected ⊆ hosts*) are registered by the layer
//! that knows the world type, via
//! [`Sim::add_invariant`](crate::sched::Sim::add_invariant).

use std::fmt;

use crate::fault::FaultPlane;
use crate::span::SpanLog;
use crate::time::SimTime;
use crate::trace::TraceCategory;

/// One observed breach of a named law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The law that failed, e.g. `"span-causality"`.
    pub law: &'static str,
    /// Simulation time of the dispatch that exposed the breach.
    pub at: SimTime,
    /// Human-readable account of what was wrong.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant '{}' violated at {}: {}", self.law, self.at, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Read-only kernel context handed to every world law.
pub struct LawCx<'a> {
    /// Simulation time of the just-finished dispatch.
    pub now: SimTime,
    /// The causal span store.
    pub spans: &'a SpanLog,
    /// The fault schedule.
    pub faults: &'a FaultPlane,
}

/// A registered world law: inspects the world plus the kernel context and
/// returns a violation detail on breach.
pub type WorldLaw<W> = Box<dyn Fn(&W, &LawCx<'_>) -> Result<(), String>>;

/// Retention cap on collected violations; a hopelessly broken run reports
/// the first breaches and a drop count instead of ballooning.
const MAX_VIOLATIONS: usize = 64;

/// The armed checker owned by [`Sim`](crate::sched::Sim).
///
/// # Examples
///
/// ```
/// use malsim_kernel::invariant::InvariantChecker;
/// use malsim_kernel::sched::Sim;
/// use malsim_kernel::time::{SimDuration, SimTime};
/// use malsim_kernel::trace::TraceCategory;
///
/// let mut sim: Sim<u32> = Sim::new(SimTime::EPOCH, 1);
/// sim.enable_invariants(false);
/// sim.schedule_in(SimDuration::from_secs(1), |_w, sim| {
///     // A destruction with no infection root: the checker flags it.
///     sim.open_span(TraceCategory::Destruction, "host:a", "wipe");
/// });
/// sim.run(&mut 0);
/// let violations = sim.take_violations();
/// assert_eq!(violations.len(), 1);
/// assert_eq!(violations[0].law, "span-causality");
/// ```
pub struct InvariantChecker<W> {
    world_laws: Vec<(&'static str, WorldLaw<W>)>,
    strict: bool,
    last_now: Option<SimTime>,
    spans_checked: usize,
    windows_checked: usize,
    violations: Vec<InvariantViolation>,
    dropped: usize,
}

impl<W> fmt::Debug for InvariantChecker<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvariantChecker")
            .field("world_laws", &self.world_laws.len())
            .field("strict", &self.strict)
            .field("violations", &self.violations.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl<W> InvariantChecker<W> {
    /// Creates a checker with only the built-in kernel laws. In strict mode
    /// the first violation panics (so a supervised sweep quarantines the
    /// point); otherwise violations accumulate for [`take_violations`]
    /// (Self::take_violations).
    pub fn new(strict: bool) -> Self {
        InvariantChecker {
            world_laws: Vec::new(),
            strict,
            last_now: None,
            spans_checked: 0,
            windows_checked: 0,
            violations: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether the checker panics on the first violation.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Registers a world-level law, run after every dispatch.
    pub fn add_law(
        &mut self,
        name: &'static str,
        law: impl Fn(&W, &LawCx<'_>) -> Result<(), String> + 'static,
    ) {
        self.world_laws.push((name, Box::new(law)));
    }

    /// Runs every law against the post-dispatch state. Called by
    /// [`Sim::step`](crate::sched::Sim::step) when armed.
    pub fn check(&mut self, world: &W, cx: &LawCx<'_>) {
        if let Some(prev) = self.last_now {
            if cx.now < prev {
                self.report("monotonic-time", cx.now, format!("clock ran backwards: {prev} -> {}", cx.now));
            }
        }
        self.last_now = Some(cx.now);

        // Each span is examined exactly once, at the first dispatch after its
        // creation. Parents have strictly smaller ids and spans are never
        // reparented, so a span's ancestry is final when it first appears.
        let spans = cx.spans.spans_from(self.spans_checked);
        for span in spans {
            let terminal = matches!(span.category, TraceCategory::Exfiltration | TraceCategory::Destruction);
            if terminal && !cx.spans.has_ancestor_category(span.id, TraceCategory::Infection) {
                self.report(
                    "span-causality",
                    cx.now,
                    format!(
                        "{} span {} '{}' ({}) has no Infection root",
                        span.category, span.id, span.name, span.actor
                    ),
                );
            }
        }
        self.spans_checked = cx.spans.len();

        let windows = &cx.faults.windows()[self.windows_checked.min(cx.faults.len())..];
        for window in windows {
            if let Err(e) = window.validate() {
                self.report("fault-windows", cx.now, e.to_string());
            }
        }
        self.windows_checked = cx.faults.len();

        for i in 0..self.world_laws.len() {
            if let Err(detail) = (self.world_laws[i].1)(world, cx) {
                let law = self.world_laws[i].0;
                self.report(law, cx.now, detail);
            }
        }
    }

    fn report(&mut self, law: &'static str, at: SimTime, detail: String) {
        let violation = InvariantViolation { law, at, detail };
        if self.strict {
            panic!("{violation}");
        }
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(violation);
        } else {
            self.dropped += 1;
        }
    }

    /// Violations collected so far (strict mode never accumulates any).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Number of violations dropped past the retention cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Drains the collected violations, leaving the checker armed.
    pub fn take_violations(&mut self) -> Vec<InvariantViolation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    fn cx<'a>(now: SimTime, spans: &'a SpanLog, faults: &'a FaultPlane) -> LawCx<'a> {
        LawCx { now, spans, faults }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn clean_state_reports_nothing() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        let mut spans = SpanLog::new();
        let root = spans.open(t(0), TraceCategory::Infection, "h", "infect", None);
        spans.open(t(1), TraceCategory::Exfiltration, "h", "upload", Some(root));
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        checker.check(&0, &cx(t(1), &spans, &faults));
        assert!(checker.violations().is_empty());
    }

    #[test]
    fn orphan_terminal_span_is_flagged_once() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        let mut spans = SpanLog::new();
        spans.open(t(0), TraceCategory::Destruction, "plant:x", "wipe", None);
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        checker.check(&0, &cx(t(0), &spans, &faults));
        checker.check(&0, &cx(t(1), &spans, &faults));
        let violations = checker.take_violations();
        assert_eq!(violations.len(), 1, "incremental cursor re-checks nothing");
        assert_eq!(violations[0].law, "span-causality");
        assert!(violations[0].detail.contains("no Infection root"), "{}", violations[0].detail);
    }

    #[test]
    fn inverted_fault_window_is_flagged() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        let spans = SpanLog::new();
        let mut faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        faults.schedule(crate::fault::FaultWindow {
            target: "zone:a".into(),
            kind: crate::fault::FaultKind::LinkDown,
            start: t(10),
            end: t(5),
        });
        checker.check(&0, &cx(t(0), &spans, &faults));
        let violations = checker.take_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].law, "fault-windows");
    }

    #[test]
    fn clock_regression_is_flagged() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        let spans = SpanLog::new();
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        checker.check(&0, &cx(t(10), &spans, &faults));
        checker.check(&0, &cx(t(5), &spans, &faults));
        let violations = checker.take_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].law, "monotonic-time");
    }

    #[test]
    fn world_laws_see_the_world() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        checker.add_law("non-negative", |w, _| if *w > 5 { Err(format!("{w} > 5")) } else { Ok(()) });
        let spans = SpanLog::new();
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        checker.check(&3, &cx(t(0), &spans, &faults));
        assert!(checker.violations().is_empty());
        checker.check(&9, &cx(t(1), &spans, &faults));
        assert_eq!(checker.violations().len(), 1);
        assert_eq!(checker.violations()[0].law, "non-negative");
    }

    #[test]
    #[should_panic(expected = "span-causality")]
    fn strict_mode_panics_on_violation() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(true);
        let mut spans = SpanLog::new();
        spans.open(t(0), TraceCategory::Exfiltration, "h", "upload", None);
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        checker.check(&0, &cx(t(0), &spans, &faults));
    }

    #[test]
    fn violation_cap_counts_drops() {
        let mut checker: InvariantChecker<u32> = InvariantChecker::new(false);
        checker.add_law("always", |_, _| Err("broken".into()));
        let spans = SpanLog::new();
        let faults = FaultPlane::new(SimRng::seed_from(1).fork("fault-plane"));
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            checker.check(&0, &cx(t(i), &spans, &faults));
        }
        assert_eq!(checker.violations().len(), MAX_VIOLATIONS);
        assert_eq!(checker.dropped(), 10);
    }

    #[test]
    fn display_names_law_and_time() {
        let v = InvariantViolation {
            law: "span-causality",
            at: t(0) + SimDuration::from_secs(1),
            detail: "x".into(),
        };
        let s = v.to_string();
        assert!(s.contains("span-causality"), "{s}");
        assert!(s.contains("violated at"), "{s}");
        let _: &dyn std::error::Error = &v;
    }
}
