//! A bucketed calendar queue over generational slab storage: the pending-event
//! structure behind [`crate::sched::Sim`].
//!
//! # Layout
//!
//! Events live in a [`GenSlab`]; the priority structure is a flat ring of
//! buckets, each an intrusive singly linked FIFO chained through the slab
//! (`Node::next`). An event at time `t` (milliseconds) hashes to virtual
//! bucket `t >> shift` — the bucket width is always a power of two — and to
//! physical bucket `(t >> shift) & (buckets.len() - 1)`. Within a bucket,
//! nodes are kept sorted by `time`; because sequence numbers are issued in
//! insertion order and a new node is placed *after* every node with an equal
//! or earlier time, `(time, seq)` order is a structural property of the chain
//! rather than something a comparator must re-derive on every heap sift.
//!
//! Dequeue walks a cursor over virtual buckets. All events of one timestamp
//! sit contiguously at the head of one bucket, so a same-timestamp batch
//! drains with one O(1) head-unlink per event and no re-touching of the
//! priority structure. When a full lap of the ring finds nothing due (a
//! sparse region of the schedule), the cursor jumps straight to the earliest
//! chained node instead of milling through empty buckets.
//!
//! # Cancellation
//!
//! [`CalQueue::cancel`] is an O(1) slot invalidation: the payload is dropped
//! immediately and the node becomes a tombstone that the dequeue cursor reaps
//! in passing. Handles are generation-checked [`SlotRef`]s, so a handle kept
//! past its event's lifetime goes stale rather than aliasing whatever event
//! reuses the slot.
//!
//! # Sizing
//!
//! The ring resizes when the live population outgrows (or far undershoots)
//! the bucket count, and the width is re-derived from the median gap between
//! distinct event times sampled across the queue — wide enough that a cluster
//! of events lands in few buckets, narrow enough that one bucket rarely holds
//! many distinct times. All of this is deterministic: layout depends only on
//! the sequence of operations, and dispatch order is independent of layout.

use crate::ids::{GenSlab, SlotRef};
use crate::time::SimTime;

const NIL: u32 = u32::MAX;
/// Initial and minimum ring size; kept a power of two.
const MIN_BUCKETS: usize = 16;
/// Ring size ceiling: beyond this, buckets just get denser.
const MAX_BUCKETS: usize = 1 << 21;
/// Bucket width before the first resize has sampled the schedule: 2^10 ms.
const DEFAULT_SHIFT: u32 = 10;
/// Widest allowed bucket: 2^40 ms (~35 years).
const MAX_SHIFT: u32 = 40;

#[derive(Debug, Clone, Copy)]
struct List {
    head: u32,
    tail: u32,
}

impl List {
    const EMPTY: List = List { head: NIL, tail: NIL };
}

/// What a slot currently holds. `Reserved*` states exist for pinned
/// (repeating) events: between a pop and the re-arm the slot stays allocated
/// under its original generation so the original handle keeps working.
enum NodeState<T> {
    /// Linked in a bucket, payload ready to fire.
    Queued(T),
    /// Linked in a bucket, cancelled; reaped when the cursor reaches it.
    Tombstone,
    /// Pinned slot mid-dispatch, awaiting [`CalQueue::rearm`] or
    /// [`CalQueue::release`].
    Reserved,
    /// Cancelled while reserved: the pending re-arm must not happen.
    ReservedCancelled,
}

struct Node<T> {
    time: u64,
    seq: u64,
    next: u32,
    /// Pinned slots survive pops (for repeating events); unpinned slots are
    /// freed as they fire.
    pinned: bool,
    state: NodeState<T>,
}

/// Bucketed calendar queue with O(1) amortized insert/pop/cancel and
/// structural `(time, insertion)` ordering. See the module docs for layout.
///
/// # Examples
///
/// ```
/// use malsim_kernel::calq::CalQueue;
/// use malsim_kernel::time::SimTime;
///
/// let mut q: CalQueue<&str> = CalQueue::new();
/// q.insert(SimTime::from_millis(20), "late");
/// let h = q.insert(SimTime::from_millis(10), "early");
/// q.insert(SimTime::from_millis(10), "early-too");
/// assert!(q.cancel(h));
/// assert!(!q.cancel(h), "cancel is idempotent");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "early-too")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalQueue<T> {
    slab: GenSlab<Node<T>>,
    buckets: Vec<List>,
    /// log2 of the bucket width in milliseconds.
    shift: u32,
    /// Virtual bucket index the dequeue scan has reached.
    cursor: u64,
    /// Nodes chained in buckets, including not-yet-reaped tombstones.
    linked: usize,
    /// Chained nodes that still hold a payload.
    live: usize,
    next_seq: u64,
    resizes: u64,
    tombstone_reaps: u64,
    cursor_pullbacks: u64,
}

/// Always-on structural counters of one [`CalQueue`], all deterministic:
/// they depend only on the sequence of operations, never on wall time or
/// thread interleaving. Snapshot via [`CalQueue::stats`] (or
/// [`Sim::queue_stats`](crate::sched::Sim::queue_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Ring rebuilds (growth, shrink, or width re-derivation).
    pub resizes: u64,
    /// Cancelled nodes unchained and freed — lazily by the dequeue cursor,
    /// in bulk when the queue drains, or during a rebuild.
    pub tombstone_reaps: u64,
    /// Inserts that landed behind a scanned-ahead cursor and pulled it back
    /// (the price of peeking far into a sparse schedule).
    pub cursor_pullbacks: u64,
}

impl<T> Default for CalQueue<T> {
    fn default() -> Self {
        CalQueue::new()
    }
}

impl<T> std::fmt::Debug for CalQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalQueue")
            .field("live", &self.live)
            .field("linked", &self.linked)
            .field("buckets", &self.buckets.len())
            .field("width_ms", &(1u64 << self.shift))
            .field("resizes", &self.resizes)
            .field("tombstone_reaps", &self.tombstone_reaps)
            .field("cursor_pullbacks", &self.cursor_pullbacks)
            .finish()
    }
}

impl<T> CalQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalQueue {
            slab: GenSlab::new(),
            buckets: vec![List::EMPTY; MIN_BUCKETS],
            shift: DEFAULT_SHIFT,
            cursor: 0,
            linked: 0,
            live: 0,
            next_seq: 0,
            resizes: 0,
            tombstone_reaps: 0,
            cursor_pullbacks: 0,
        }
    }

    /// Chained events, including cancelled ones not yet reaped in passing.
    pub fn len(&self) -> usize {
        self.linked
    }

    /// True when no event is left to fire.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Events that would still fire (cancelled ones excluded).
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// How many times the ring has been rebuilt.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Cancelled nodes reaped so far (see [`QueueStats::tombstone_reaps`]).
    pub fn tombstone_reaps(&self) -> u64 {
        self.tombstone_reaps
    }

    /// Cursor pull-backs so far (see [`QueueStats::cursor_pullbacks`]).
    pub fn cursor_pullbacks(&self) -> u64 {
        self.cursor_pullbacks
    }

    /// Snapshot of the queue's structural counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            resizes: self.resizes,
            tombstone_reaps: self.tombstone_reaps,
            cursor_pullbacks: self.cursor_pullbacks,
        }
    }

    /// Current bucket width in milliseconds (always a power of two).
    pub fn bucket_width_ms(&self) -> u64 {
        1u64 << self.shift
    }

    /// Schedules `payload` at `time`. Events sharing a timestamp fire in
    /// insertion order.
    pub fn insert(&mut self, time: SimTime, payload: T) -> SlotRef {
        let seq = self.next_seq;
        self.next_seq += 1;
        let r = self.slab.insert(Node {
            time: time.as_millis(),
            seq,
            next: NIL,
            pinned: false,
            state: NodeState::Queued(payload),
        });
        self.link(r.index() as u32);
        self.live += 1;
        self.linked += 1;
        self.maybe_grow();
        r
    }

    /// Allocates a pinned slot without scheduling anything yet. The returned
    /// handle stays valid across every [`CalQueue::rearm`] of the slot, which
    /// is how a repeating event stays cancellable across periods.
    pub fn reserve(&mut self) -> SlotRef {
        self.slab.insert(Node { time: 0, seq: 0, next: NIL, pinned: true, state: NodeState::Reserved })
    }

    /// Arms (or re-arms) a reserved pinned slot at `time`.
    ///
    /// Returns `false` — dropping `payload` and freeing the slot — when the
    /// slot was cancelled while reserved, i.e. someone cancelled the
    /// repeating event from inside its own dispatch.
    pub fn rearm(&mut self, r: SlotRef, time: SimTime, payload: T) -> bool {
        let Some(node) = self.slab.get_mut(r) else {
            debug_assert!(false, "rearm on a dead slot");
            return false;
        };
        match node.state {
            NodeState::Reserved => {
                node.time = time.as_millis();
                node.seq = self.next_seq;
                node.next = NIL;
                node.state = NodeState::Queued(payload);
                self.next_seq += 1;
                self.link(r.index() as u32);
                self.live += 1;
                self.linked += 1;
                self.maybe_grow();
                true
            }
            NodeState::ReservedCancelled => {
                self.slab.remove(r);
                false
            }
            _ => {
                debug_assert!(false, "rearm on a slot that is not reserved");
                false
            }
        }
    }

    /// Frees a reserved pinned slot: the repeating event ended on its own.
    pub fn release(&mut self, r: SlotRef) {
        match self.slab.get(r) {
            Some(node) => {
                debug_assert!(
                    matches!(node.state, NodeState::Reserved | NodeState::ReservedCancelled),
                    "release on a slot that is not reserved"
                );
                self.slab.remove(r);
            }
            None => debug_assert!(false, "release on a dead slot"),
        }
    }

    /// Cancels a pending event: O(1), no search.
    ///
    /// Returns `true` exactly when this call stopped a future firing — the
    /// event was queued, or is a repeating event (including mid-dispatch,
    /// where the pending re-arm is suppressed). A stale handle (already
    /// fired, already cancelled, or from a reused slot) returns `false`.
    pub fn cancel(&mut self, r: SlotRef) -> bool {
        let Some(node) = self.slab.get_mut(r) else { return false };
        match node.state {
            NodeState::Queued(_) => {
                node.state = NodeState::Tombstone;
                self.live -= 1;
                true
            }
            NodeState::Reserved => {
                node.state = NodeState::ReservedCancelled;
                true
            }
            NodeState::Tombstone | NodeState::ReservedCancelled => false,
        }
    }

    /// The time of the next event to fire, reaping tombstones in passing.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let (_, idx) = self.settle()?;
        let node = self.slab.get_index(idx as usize).expect("settled head is occupied");
        Some(SimTime::from_millis(node.time))
    }

    /// Removes and returns the earliest `(time, insertion)` event.
    ///
    /// For a pinned (repeating) event the slot is left reserved under its
    /// original generation, awaiting [`CalQueue::rearm`] or
    /// [`CalQueue::release`]; otherwise the slot is freed for reuse.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let (bucket, idx) = self.settle()?;
        self.unlink_head(bucket);
        self.linked -= 1;
        self.live -= 1;
        let node = self.slab.get_index_mut(idx as usize).expect("settled head is occupied");
        let time = node.time;
        let pinned = node.pinned;
        let state = std::mem::replace(&mut node.state, NodeState::Reserved);
        let NodeState::Queued(payload) = state else { unreachable!("settled head is queued") };
        if !pinned {
            self.slab.remove_at(idx as usize);
        }
        self.maybe_shrink();
        Some((SimTime::from_millis(time), payload))
    }

    /// Advances the cursor to the earliest queued node, reaping tombstones,
    /// and returns `(physical bucket, slot index)` of that node — still
    /// linked. `None` when nothing live remains (after purging leftover
    /// tombstones so `len()` settles back to zero).
    fn settle(&mut self) -> Option<(usize, u32)> {
        if self.live == 0 {
            if self.linked > 0 {
                self.purge_tombstones();
            }
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        let mask = nbuckets - 1;
        let mut scanned = 0u64;
        loop {
            let b = (self.cursor & mask) as usize;
            loop {
                let head = self.buckets[b].head;
                if head == NIL {
                    break;
                }
                let node = self.slab.get_index(head as usize).expect("chained slot is occupied");
                // Live nodes are never behind the cursor, so `<=` only ever
                // admits stale tombstones early — and reaps them.
                if node.time >> self.shift > self.cursor {
                    break;
                }
                match node.state {
                    NodeState::Queued(_) => return Some((b, head)),
                    NodeState::Tombstone => {
                        self.unlink_head(b);
                        self.linked -= 1;
                        self.slab.remove_at(head as usize);
                        self.tombstone_reaps += 1;
                    }
                    NodeState::Reserved | NodeState::ReservedCancelled => {
                        unreachable!("reserved slots are never chained")
                    }
                }
            }
            self.cursor += 1;
            scanned += 1;
            if scanned >= nbuckets {
                // A full lap found nothing due: the schedule is sparse here.
                // Jump straight to the earliest chained node.
                self.cursor = self.earliest_chained_vbucket().expect("live > 0 implies a chained node");
                scanned = 0;
            }
        }
    }

    /// Minimum `time >> shift` over all bucket heads. Heads suffice: each
    /// bucket chain is time-sorted, so its head is its earliest node.
    fn earliest_chained_vbucket(&self) -> Option<u64> {
        self.buckets
            .iter()
            .filter(|list| list.head != NIL)
            .map(|list| {
                let node = self.slab.get_index(list.head as usize).expect("chained slot is occupied");
                node.time >> self.shift
            })
            .min()
    }

    /// Unchains and frees every remaining tombstone (called once the last
    /// live event has fired, so lazy reaping cannot get to them).
    fn purge_tombstones(&mut self) {
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b].head;
            while cur != NIL {
                let node = self.slab.get_index(cur as usize).expect("chained slot is occupied");
                debug_assert!(matches!(node.state, NodeState::Tombstone));
                let next = node.next;
                self.slab.remove_at(cur as usize);
                self.tombstone_reaps += 1;
                cur = next;
            }
            self.buckets[b] = List::EMPTY;
        }
        self.linked = 0;
    }

    /// Chains an occupied slot into its bucket at the position that keeps the
    /// chain time-sorted. New nodes go *after* existing nodes of the same
    /// time, so FIFO-per-timestamp holds structurally. Appending at the tail
    /// (monotone schedules, same-timestamp fan-out) is O(1).
    fn link(&mut self, idx: u32) {
        let node = self.slab.get_index(idx as usize).expect("linking an occupied slot");
        let time = node.time;
        let vbucket = time >> self.shift;
        // The cursor may have scanned ahead of this time (e.g. a peek walked
        // to a far-future event); pull it back so the scan can't skip the new
        // node's bucket and break `(time, seq)` order.
        if vbucket < self.cursor {
            self.cursor = vbucket;
            self.cursor_pullbacks += 1;
        }
        let mask = self.buckets.len() as u64 - 1;
        let b = (vbucket & mask) as usize;
        let list = self.buckets[b];
        if list.tail == NIL {
            self.buckets[b] = List { head: idx, tail: idx };
            return;
        }
        let tail_time = self.slab.get_index(list.tail as usize).expect("chained slot is occupied").time;
        if tail_time <= time {
            self.slab.get_index_mut(list.tail as usize).expect("chained slot is occupied").next = idx;
            self.buckets[b].tail = idx;
            return;
        }
        // Walk to the first node strictly later than `time`; insert before it.
        let mut prev = NIL;
        let mut cur = list.head;
        loop {
            debug_assert!(cur != NIL, "tail check guarantees a later node exists");
            let cur_time = self.slab.get_index(cur as usize).expect("chained slot is occupied").time;
            if cur_time > time {
                break;
            }
            prev = cur;
            cur = self.slab.get_index(cur as usize).expect("chained slot is occupied").next;
        }
        self.slab.get_index_mut(idx as usize).expect("linking an occupied slot").next = cur;
        if prev == NIL {
            self.buckets[b].head = idx;
        } else {
            self.slab.get_index_mut(prev as usize).expect("chained slot is occupied").next = idx;
        }
    }

    fn unlink_head(&mut self, b: usize) {
        let head = self.buckets[b].head;
        debug_assert!(head != NIL, "unlink_head on an empty bucket");
        let node = self.slab.get_index_mut(head as usize).expect("chained slot is occupied");
        let next = std::mem::replace(&mut node.next, NIL);
        self.buckets[b].head = next;
        if next == NIL {
            self.buckets[b].tail = NIL;
        }
    }

    fn maybe_grow(&mut self) {
        if self.live > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.live < self.buckets.len() / 8 {
            self.rebuild();
        }
    }

    /// Rebuilds the ring sized and widthed for the current population:
    /// unchains everything (dropping tombstones), re-derives the bucket width
    /// from the median gap between sampled distinct event times, and relinks
    /// in `(time, seq)` order so every relink is a tail append.
    fn rebuild(&mut self) {
        self.resizes += 1;
        let mut order: Vec<(u64, u64, u32)> = Vec::with_capacity(self.live);
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b].head;
            while cur != NIL {
                let node = self.slab.get_index_mut(cur as usize).expect("chained slot is occupied");
                let next = std::mem::replace(&mut node.next, NIL);
                match node.state {
                    NodeState::Queued(_) => order.push((node.time, node.seq, cur)),
                    NodeState::Tombstone => {
                        self.slab.remove_at(cur as usize);
                        self.tombstone_reaps += 1;
                    }
                    NodeState::Reserved | NodeState::ReservedCancelled => {
                        unreachable!("reserved slots are never chained")
                    }
                }
                cur = next;
            }
        }
        debug_assert_eq!(order.len(), self.live);
        self.linked = order.len();
        order.sort_unstable();
        self.shift = choose_shift(&order);
        let target = (order.len() * 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.buckets = vec![List::EMPTY; target];
        self.cursor = order.first().map_or(0, |(t, _, _)| t >> self.shift);
        for &(_, _, idx) in &order {
            self.link(idx);
        }
    }
}

/// Picks `log2(bucket width)` for a population sorted by `(time, seq)`: the
/// median positive gap between up to 64 sampled consecutive times, so one
/// bucket typically spans about one distinct timestamp of the local cluster.
/// All-equal times degrade to the narrowest width, which is fine — they all
/// share one bucket regardless.
fn choose_shift(order: &[(u64, u64, u32)]) -> u32 {
    if order.len() < 2 {
        return DEFAULT_SHIFT;
    }
    let step = (order.len() / 64).max(1);
    let mut gaps: Vec<u64> = Vec::with_capacity(64);
    let mut prev = order[0].0;
    let mut i = step;
    while i < order.len() {
        let t = order[i].0;
        if t > prev {
            gaps.push(t - prev);
        }
        prev = t;
        i += step;
    }
    if gaps.is_empty() {
        return 0;
    }
    gaps.sort_unstable();
    let median = gaps[gaps.len() / 2];
    (63 - median.leading_zeros()).min(MAX_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(t: u64) -> SimTime {
        SimTime::from_millis(t)
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q: CalQueue<u32> = CalQueue::new();
        q.insert(ms(50), 1);
        q.insert(ms(10), 2);
        q.insert(ms(50), 3);
        q.insert(ms(10), 4);
        let fired: Vec<(u64, u32)> =
            std::iter::from_fn(|| q.pop()).map(|(t, v)| (t.as_millis(), v)).collect();
        assert_eq!(fired, vec![(10, 2), (10, 4), (50, 1), (50, 3)]);
    }

    #[test]
    fn cancel_is_o1_invalidation_and_idempotent() {
        let mut q: CalQueue<u32> = CalQueue::new();
        let a = q.insert(ms(10), 1);
        q.insert(ms(10), 2);
        assert_eq!(q.live_len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.live_len(), 1);
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((ms(10), 2)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0, "tombstones are gone once the queue drains");
    }

    #[test]
    fn stale_handle_from_reused_slot_stays_dead() {
        let mut q: CalQueue<u32> = CalQueue::new();
        let a = q.insert(ms(10), 1);
        assert_eq!(q.pop(), Some((ms(10), 1)));
        let b = q.insert(ms(20), 2);
        assert_eq!(b.index(), a.index(), "slot is reused");
        assert!(!q.cancel(a), "fired handle must not cancel the new occupant");
        assert_eq!(q.pop(), Some((ms(20), 2)));
        assert!(!q.cancel(b), "fired handle reports false");
    }

    #[test]
    fn far_future_and_near_events_coexist() {
        let mut q: CalQueue<u32> = CalQueue::new();
        q.insert(ms(1 << 35), 99); // ~1 year out
        for i in 0..100u32 {
            q.insert(ms(u64::from(i)), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((ms(u64::from(i)), i)));
        }
        assert_eq!(q.pop(), Some((ms(1 << 35), 99)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn growth_resizes_preserve_order() {
        let mut q: CalQueue<u64> = CalQueue::new();
        // Interleave two phases so inserts are non-monotone.
        for i in (0..2000u64).step_by(2) {
            q.insert(ms(i * 7), i);
        }
        for i in (1..2000u64).step_by(2) {
            q.insert(ms(i * 7), i);
        }
        assert!(q.resizes() > 0, "2000 events must outgrow {MIN_BUCKETS} buckets");
        let mut last = (0u64, 0u64);
        let mut n = 0;
        while let Some((t, v)) = q.pop() {
            assert!((t.as_millis(), v) >= last, "order broke at {n}");
            last = (t.as_millis(), v);
            n += 1;
        }
        assert_eq!(n, 2000);
    }

    #[test]
    fn reserved_slot_rearm_cycle() {
        let mut q: CalQueue<u32> = CalQueue::new();
        let slot = q.reserve();
        assert!(q.rearm(slot, ms(10), 1));
        assert_eq!(q.pop(), Some((ms(10), 1)));
        // Slot survives the pop under the same generation.
        assert!(q.rearm(slot, ms(20), 2));
        assert!(q.cancel(slot), "still cancellable after a re-arm");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_mid_dispatch_suppresses_rearm() {
        let mut q: CalQueue<u32> = CalQueue::new();
        let slot = q.reserve();
        assert!(q.rearm(slot, ms(10), 1));
        let _ = q.pop();
        assert!(q.cancel(slot), "cancel between pop and rearm stops the repetition");
        assert!(!q.rearm(slot, ms(20), 2), "rearm after cancel reports false and frees");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn release_frees_a_reserved_slot() {
        let mut q: CalQueue<u32> = CalQueue::new();
        let slot = q.reserve();
        assert!(q.rearm(slot, ms(5), 1));
        let _ = q.pop();
        q.release(slot);
        assert!(!q.cancel(slot), "released slot is stale");
    }

    #[test]
    fn same_timestamp_batch_drains_fifo() {
        let mut q: CalQueue<u32> = CalQueue::new();
        for i in 0..500u32 {
            q.insert(ms(1000), i);
        }
        for i in 0..500u32 {
            assert_eq!(q.pop(), Some((ms(1000), i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q: CalQueue<u32> = CalQueue::new();
        q.insert(ms(30), 1);
        q.insert(ms(20), 2);
        assert_eq!(q.peek_time(), Some(ms(20)));
        assert_eq!(q.pop(), Some((ms(20), 2)));
        assert_eq!(q.peek_time(), Some(ms(30)));
        let h = q.insert(ms(25), 3);
        assert_eq!(q.peek_time(), Some(ms(25)));
        assert!(q.cancel(h));
        assert_eq!(q.peek_time(), Some(ms(30)), "peek reaps the tombstone");
        assert_eq!(q.pop(), Some((ms(30), 1)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn insert_behind_a_scanned_ahead_cursor_keeps_order() {
        let mut q: CalQueue<u32> = CalQueue::new();
        q.insert(ms(1 << 30), 9); // far future
        assert_eq!(q.peek_time(), Some(ms(1 << 30)), "peek walks the cursor ahead");
        // Both land behind the cursor, in different physical buckets.
        q.insert(ms(5000), 1);
        q.insert(ms(100), 0);
        assert_eq!(q.pop(), Some((ms(100), 0)));
        assert_eq!(q.pop(), Some((ms(5000), 1)));
        assert_eq!(q.pop(), Some((ms(1 << 30), 9)));
    }

    #[test]
    fn structural_counters_track_reaps_and_pullbacks() {
        let mut q: CalQueue<u32> = CalQueue::new();
        assert_eq!(q.stats(), QueueStats::default());

        // A cancel is not a reap: the tombstone is only counted when the
        // cursor (or a drain, or a rebuild) actually unchains it.
        let a = q.insert(ms(10), 1);
        q.insert(ms(20), 2);
        assert!(q.cancel(a));
        assert_eq!(q.tombstone_reaps(), 0);
        assert_eq!(q.pop(), Some((ms(20), 2)));
        assert_eq!(q.tombstone_reaps(), 1, "the cursor reaped the tombstone in passing");

        // Draining with only tombstones left purges (and counts) the rest.
        let b = q.insert(ms(30), 3);
        let c = q.insert(ms(40), 4);
        assert!(q.cancel(b));
        assert!(q.cancel(c));
        assert_eq!(q.pop(), None);
        assert_eq!(q.tombstone_reaps(), 3);

        // A peek that walks far ahead, then an insert behind the cursor.
        q.insert(ms(1 << 30), 9);
        assert_eq!(q.peek_time(), Some(ms(1 << 30)));
        assert_eq!(q.cursor_pullbacks(), 0);
        q.insert(ms(100), 0);
        assert_eq!(q.cursor_pullbacks(), 1, "the insert pulled the cursor back");
        assert_eq!(q.stats().cursor_pullbacks, 1);
    }

    #[test]
    fn rebuild_counts_tombstones_it_drops() {
        let mut q: CalQueue<u64> = CalQueue::new();
        let handles: Vec<_> = (0..100u64).map(|i| q.insert(ms(i * 7), i)).collect();
        for h in handles.iter().step_by(2) {
            assert!(q.cancel(*h));
        }
        let reaped_before = q.tombstone_reaps();
        // Grow past the resize threshold; the rebuild must drop (and count)
        // every tombstone still chained.
        for i in 100..2000u64 {
            q.insert(ms(i * 7), i);
        }
        assert!(q.resizes() > 0);
        assert_eq!(q.tombstone_reaps(), reaped_before + 50, "rebuild reaped the cancelled half");
        assert_eq!(q.len(), q.live_len(), "no tombstones survive a rebuild");
    }

    #[test]
    fn max_time_events_are_representable() {
        let mut q: CalQueue<u32> = CalQueue::new();
        q.insert(SimTime::MAX, 1);
        q.insert(ms(0), 2);
        assert_eq!(q.pop(), Some((ms(0), 2)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 1)));
    }
}
