//! Simple metric primitives: counters, gauges, histograms, and time series.
//!
//! Experiments read these after a run to produce the rows/series in
//! `EXPERIMENTS.md`. Everything is plain data — no atomics — because a
//! simulation run is single-threaded by construction.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A named-metric registry.
///
/// # Examples
///
/// ```
/// use malsim_kernel::metrics::Metrics;
/// use malsim_kernel::time::SimTime;
///
/// let mut m = Metrics::new();
/// m.incr("hosts_infected");
/// m.incr_by("bytes_exfiltrated", 1024);
/// m.observe("wipe_latency_ms", 250.0);
/// m.series_push("infected", SimTime::EPOCH, 1.0);
/// assert_eq!(m.counter("hosts_infected"), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

/// Streaming summary of observed values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
    sorted_cache: Option<Vec<f64>>,
}

/// An ordered `(time, value)` sequence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds 1 to a counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn incr_by(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Current counter value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to a value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// Histogram by name, if any observation was made.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Appends a point to a time series.
    pub fn series_push(&mut self, name: &str, time: SimTime, value: f64) {
        self.series.entry(name.to_owned()).or_default().push(time, value);
    }

    /// Time series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all counters, in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Merges another registry into this one (counters add, gauges overwrite,
    /// histograms and series concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for v in &h.values {
                dst.observe(*v);
            }
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k.clone()).or_default();
            for (t, v) in &s.points {
                dst.push(*t, *v);
            }
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge   {k} = {v:.3}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "hist    {k}: n={} mean={:.3} min={:.3} max={:.3} p50={:.3} p99={:.3}",
                h.count(),
                h.mean(),
                h.min(),
                h.max(),
                h.percentile(50.0),
                h.percentile(99.0)
            )?;
        }
        for (k, s) in &self.series {
            writeln!(f, "series  {k}: {} points, last={:?}", s.len(), s.last())?;
        }
        Ok(())
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.values.push(value);
        self.sorted_cache = None;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 100]` (0.0 when empty).
    ///
    /// Sorts a fresh copy on every call; prefer [`Histogram::quantile`] when
    /// the histogram is mutable and queried repeatedly.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        match &self.sorted_cache {
            Some(sorted) => Self::rank_of(sorted, p / 100.0),
            None => {
                let mut sorted = self.values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                Self::rank_of(&sorted, p / 100.0)
            }
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]` (0.0 when empty).
    ///
    /// The sorted order is computed on first call and cached until the next
    /// [`Histogram::observe`], so p50/p95/p99 sequences sort once.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted_cache.get_or_insert_with(|| {
            let mut sorted = self.values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            sorted
        });
        Self::rank_of(sorted, q)
    }

    fn rank_of(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

impl TimeSeries {
    /// Appends a point. Points are expected in nondecreasing time order and
    /// this is enforced.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last appended point.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time series points must be appended in order");
        }
        self.points.push((time, value));
    }

    /// All points in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Value at or before `time` (step interpolation).
    pub fn value_at(&self, time: SimTime) -> Option<f64> {
        self.points.iter().rev().find(|(t, _)| *t <= time).map(|(_, v)| *v)
    }

    /// First time the value reached at least `threshold`.
    pub fn first_reaching(&self, threshold: f64) -> Option<SimTime> {
        self.points.iter().find(|(_, v)| *v >= threshold).map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.incr_by("x", 4);
        assert_eq!(m.counter("x"), 5);
        m.set_gauge("g", 1.5);
        assert_eq!(m.gauge("g"), Some(1.5));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_agrees_with_percentile() {
        let mut h = Histogram::default();
        for v in [9.0, 7.0, 5.0, 3.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
            h.observe(v);
        }
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            let via_percentile = h.percentile(p);
            assert_eq!(h.quantile(p / 100.0), via_percentile, "p={p}");
        }
        assert_eq!(h.quantile(0.5), 6.0, "nearest rank rounds 4.5 up");
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn quantile_cache_invalidates_on_observe() {
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(3.0);
        assert_eq!(h.quantile(1.0), 3.0);
        h.observe(2.0);
        assert_eq!(h.quantile(0.5), 2.0, "new observation re-sorts");
        assert_eq!(h.quantile(1.0), 3.0);
    }

    #[test]
    fn time_series_queries() {
        let mut s = TimeSeries::default();
        let t0 = SimTime::EPOCH;
        s.push(t0, 0.0);
        s.push(t0 + SimDuration::from_secs(10), 5.0);
        s.push(t0 + SimDuration::from_secs(20), 12.0);
        assert_eq!(s.value_at(t0 + SimDuration::from_secs(15)), Some(5.0));
        assert_eq!(s.first_reaching(10.0), Some(t0 + SimDuration::from_secs(20)));
        assert_eq!(s.first_reaching(100.0), None);
        assert_eq!(s.last(), Some((t0 + SimDuration::from_secs(20), 12.0)));
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_series_panics() {
        let mut s = TimeSeries::default();
        s.push(SimTime::from_millis(10), 1.0);
        s.push(SimTime::from_millis(5), 2.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.incr_by("c", 2);
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.incr_by("c", 3);
        b.observe("h", 3.0);
        b.set_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn display_lists_metrics() {
        let mut m = Metrics::new();
        m.incr("infections");
        m.observe("lat", 2.0);
        let s = m.to_string();
        assert!(s.contains("counter infections = 1"));
        assert!(s.contains("hist    lat"));
    }
}
