//! # malsim-kernel
//!
//! Deterministic discrete-event simulation core for the `malsim` workspace.
//!
//! The kernel is domain-agnostic: it knows nothing about hosts, networks, or
//! malware. It provides:
//!
//! - [`time::SimTime`] / [`time::SimDuration`] — calendar-anchored millisecond
//!   clock, so scenarios can express wall-clock triggers.
//! - [`sched::Sim`] — the event queue and scheduler. Events are closures over
//!   a caller-owned world; ordering is total and deterministic.
//! - [`calq::CalQueue`] — the pending-event store behind the scheduler: a
//!   bucketed calendar queue over generational slab storage with O(1)
//!   amortized insert/pop/cancel and structural `(time, seq)` ordering.
//! - [`rng::SimRng`] — a seeded, forkable ChaCha8 random source; the same
//!   `(scenario, seed)` pair always yields the same trace.
//! - [`fault::FaultPlane`] — a deterministic fault-injection schedule (link
//!   outages, packet loss, DNS outages, takedowns, host crashes) with its own
//!   forked random stream, so an empty schedule never perturbs a run.
//! - [`trace::TraceLog`] — the structured forensic record of a run, with
//!   optional per-category retention caps ([`trace::TraceConfig`]).
//! - [`span::SpanLog`] — causal spans linking consequences (exfil, wiping)
//!   back to their root compromise via parent chains.
//! - [`metrics::Metrics`] — counters, histograms, and time series that
//!   experiments read back out.
//! - [`sched::ProfileSummary`] — opt-in scheduler profiling (per-category
//!   dispatch counts, host-clock time, queue depth), zero-cost when off.
//! - [`invariant::InvariantChecker`] — opt-in runtime invariant checking
//!   (time monotonicity, span causality, fault-window well-formedness, plus
//!   caller-registered world laws), zero-cost when off.
//! - [`sched::Watchdog`] — per-run limits (deterministic event budget,
//!   host-clock deadline) with graceful truncation via
//!   [`sched::Sim::run_until_watched`].
//! - [`telemetry::TelemetryHook`] — a process-wide observer interface a host
//!   layer can install once; armed simulations feed it per-dispatch
//!   callbacks, unarmed ones pay a single branch.
//! - [`crate::define_id!`] / [`ids::Arena`] — typed handles for entity tables.
//!
//! # Examples
//!
//! ```
//! use malsim_kernel::prelude::*;
//!
//! #[derive(Default)]
//! struct World {
//!     infected: u32,
//! }
//!
//! let mut sim: Sim<World> = Sim::new(SimTime::from_utc(2012, 8, 1, 0, 0, 0), 7);
//! let mut world = World::default();
//! sim.schedule_in(SimDuration::from_hours(1), |w: &mut World, sim| {
//!     w.infected += 1;
//!     sim.record(TraceCategory::Infection, "host:0", "patient zero");
//! });
//! sim.run(&mut world);
//! assert_eq!(world.infected, 1);
//! assert_eq!(sim.trace.count(TraceCategory::Infection), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calq;
pub mod fault;
pub mod ids;
pub mod invariant;
pub mod metrics;
pub mod rng;
pub mod sched;
pub mod span;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Convenient glob-import of the kernel's commonly used items.
pub mod prelude {
    pub use crate::calq::{CalQueue, QueueStats};
    pub use crate::fault::{FaultConfigError, FaultKind, FaultPlane, FaultWindow};
    pub use crate::ids::{GenSlab, SlotRef};
    pub use crate::invariant::{InvariantChecker, InvariantViolation, LawCx};
    pub use crate::metrics::Metrics;
    pub use crate::rng::SimRng;
    pub use crate::sched::{EventHandle, ProfileRow, ProfileSummary, Sim, StopReason, Watchdog, WatchedRun};
    pub use crate::span::{Span, SpanId, SpanLog};
    pub use crate::telemetry::TelemetryHook;
    pub use crate::time::{SimDuration, SimTime, TimeError};
    pub use crate::trace::{TraceCategory, TraceConfig, TraceEvent, TraceLog};
}
