//! Simulation time.
//!
//! Simulation time is a monotone counter of **milliseconds** since the Unix
//! epoch. Using a calendar-anchored epoch (rather than "ms since simulation
//! start") lets scenarios express wall-clock triggers the way the modelled
//! campaigns did — e.g. the Shamoon wiper arming itself at a hard-coded UTC
//! date — while still being a plain integer that orders totally.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in milliseconds since the Unix epoch (UTC).
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_utc(2012, 8, 15, 8, 8, 0);
/// let later = t + SimDuration::from_hours(2);
/// assert!(later > t);
/// assert_eq!(later - t, SimDuration::from_hours(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s, in milliseconds.
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(90), SimDuration::from_mins(1) + SimDuration::from_secs(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

/// Typed error for time arithmetic that cannot be represented.
///
/// Returned by the `checked_*` operations on [`SimTime`] and
/// [`SimDuration`]; the plain operators saturate instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The result exceeds the representable range.
    Overflow,
    /// Subtraction would produce a negative time or duration.
    Underflow,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::Overflow => write!(f, "time arithmetic overflowed"),
            TimeError::Underflow => write!(f, "time arithmetic underflowed"),
        }
    }
}

impl std::error::Error for TimeError {}

impl SimTime {
    /// The zero point (Unix epoch, 1970-01-01T00:00:00Z).
    pub const EPOCH: SimTime = SimTime(0);

    /// The last representable instant; used as the open end of permanent
    /// fault windows ("forever").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw milliseconds since the Unix epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a time from a UTC calendar date and time of day.
    ///
    /// # Panics
    ///
    /// Panics if the date is not a valid calendar date at or after 1970,
    /// or if the time of day is out of range.
    pub fn from_utc(year: u32, month: u32, day: u32, hour: u32, minute: u32, second: u32) -> Self {
        assert!(year >= 1970, "year {year} precedes the epoch");
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        assert!(hour < 24 && minute < 60 && second < 60, "time of day out of range");
        let days = days_from_epoch(year, month, day);
        let secs = days * 86_400 + u64::from(hour) * 3_600 + u64::from(minute) * 60 + u64::from(second);
        SimTime(secs * 1_000)
    }

    /// Raw milliseconds since the Unix epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the Unix epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Breaks this time into `(year, month, day, hour, minute, second)` UTC.
    ///
    /// # Examples
    ///
    /// ```
    /// use malsim_kernel::time::SimTime;
    ///
    /// let t = SimTime::from_utc(2012, 8, 15, 8, 8, 0);
    /// assert_eq!(t.to_utc(), (2012, 8, 15, 8, 8, 0));
    /// ```
    pub fn to_utc(self) -> (u32, u32, u32, u32, u32, u32) {
        let secs = self.as_secs();
        let day_secs = (secs % 86_400) as u32;
        let mut days = secs / 86_400;
        let (hour, minute, second) = (day_secs / 3_600, day_secs % 3_600 / 60, day_secs % 60);
        let mut year = 1970u32;
        loop {
            let len = if is_leap(year) { 366 } else { 365 };
            if days < len {
                break;
            }
            days -= len;
            year += 1;
        }
        let mut month = 1u32;
        loop {
            let len = u64::from(days_in_month(year, month));
            if days < len {
                break;
            }
            days -= len;
            month += 1;
        }
        (year, month, days as u32 + 1, hour, minute, second)
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Duration since an earlier time, or zero if `earlier` is later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; [`TimeError::Overflow`] past [`SimTime::MAX`].
    pub const fn checked_add(self, rhs: SimDuration) -> Result<SimTime, TimeError> {
        match self.0.checked_add(rhs.0) {
            Some(ms) => Ok(SimTime(ms)),
            None => Err(TimeError::Overflow),
        }
    }

    /// Checked duration since an earlier time; [`TimeError::Underflow`] if
    /// `earlier` is actually later.
    pub const fn checked_since(self, earlier: SimTime) -> Result<SimDuration, TimeError> {
        match self.0.checked_sub(earlier.0) {
            Some(ms) => Ok(SimDuration(ms)),
            None => Err(TimeError::Underflow),
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Checked addition; [`TimeError::Overflow`] if the sum is unrepresentable.
    pub const fn checked_add(self, rhs: SimDuration) -> Result<SimDuration, TimeError> {
        match self.0.checked_add(rhs.0) {
            Some(ms) => Ok(SimDuration(ms)),
            None => Err(TimeError::Overflow),
        }
    }

    /// Checked subtraction; [`TimeError::Underflow`] if `rhs` is longer.
    pub const fn checked_sub(self, rhs: SimDuration) -> Result<SimDuration, TimeError> {
        match self.0.checked_sub(rhs.0) {
            Some(ms) => Ok(SimDuration(ms)),
            None => Err(TimeError::Underflow),
        }
    }

    /// Checked multiplication by an integer factor.
    pub const fn checked_mul(self, factor: u64) -> Result<SimDuration, TimeError> {
        match self.0.checked_mul(factor) {
            Some(ms) => Ok(SimDuration(ms)),
            None => Err(TimeError::Overflow),
        }
    }

    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

// The operators saturate rather than panic: simulation arithmetic near the
// edges of the representable range (e.g. `SimTime::MAX` fault windows) must
// never abort a run. Code that needs to *detect* the edge uses the
// `checked_*` methods and handles `TimeError` explicitly.

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_utc();
        let ms = self.0 % 1_000;
        if ms == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
        } else {
            write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}Z")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms < 1_000 {
            write!(f, "{ms}ms")
        } else if ms < 60_000 {
            write!(f, "{:.3}s", ms as f64 / 1_000.0)
        } else if ms < 3_600_000 {
            write!(f, "{:.2}min", ms as f64 / 60_000.0)
        } else if ms < 86_400_000 {
            write!(f, "{:.2}h", ms as f64 / 3_600_000.0)
        } else {
            write!(f, "{:.2}d", ms as f64 / 86_400_000.0)
        }
    }
}

const fn is_leap(year: u32) -> bool {
    year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400))
}

const fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn days_from_epoch(year: u32, month: u32, day: u32) -> u64 {
    let mut days = 0u64;
    for y in 1970..year {
        days += if is_leap(y) { 366 } else { 365 };
    }
    for m in 1..month {
        days += u64::from(days_in_month(year, m));
    }
    days + u64::from(day - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::from_utc(1970, 1, 1, 0, 0, 0), SimTime::EPOCH);
    }

    #[test]
    fn known_date_round_trips() {
        // The Shamoon trigger date from the paper.
        let t = SimTime::from_utc(2012, 8, 15, 8, 8, 0);
        assert_eq!(t.to_utc(), (2012, 8, 15, 8, 8, 0));
        // Cross-checked against `date -d @1345018080`.
        assert_eq!(t.as_secs(), 1_345_018_080);
    }

    #[test]
    fn leap_year_handling() {
        let t = SimTime::from_utc(2012, 2, 29, 12, 0, 0);
        assert_eq!(t.to_utc(), (2012, 2, 29, 12, 0, 0));
        assert_eq!(
            SimTime::from_utc(2012, 3, 1, 0, 0, 0) - SimTime::from_utc(2012, 2, 28, 0, 0, 0),
            SimDuration::from_days(2)
        );
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_utc(2010, 7, 13, 9, 30, 5);
        assert_eq!(t.to_string(), "2010-07-13T09:30:05Z");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.50min");
        assert_eq!(SimDuration::from_days(3).to_string(), "3.00d");
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(1_000);
        assert_eq!((t + SimDuration::from_secs(2)).as_millis(), 3_000);
        assert_eq!(t.saturating_since(SimTime::from_millis(5_000)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_mins(2).saturating_mul(30), SimDuration::from_hours(1));
    }

    #[test]
    fn checked_arithmetic_reports_edges() {
        let t = SimTime::from_millis(1_000);
        assert_eq!(t.checked_add(SimDuration::from_secs(2)), Ok(SimTime::from_millis(3_000)));
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_millis(1)), Err(TimeError::Overflow));
        assert_eq!(t.checked_since(SimTime::from_millis(5_000)), Err(TimeError::Underflow));
        assert_eq!(t.checked_since(SimTime::from_millis(400)), Ok(SimDuration::from_millis(600)));
        assert_eq!(SimDuration::MAX.checked_add(SimDuration::from_millis(1)), Err(TimeError::Overflow));
        assert_eq!(
            SimDuration::from_secs(1).checked_sub(SimDuration::from_secs(2)),
            Err(TimeError::Underflow)
        );
        assert_eq!(SimDuration::MAX.checked_mul(2), Err(TimeError::Overflow));
        assert_eq!(SimDuration::from_mins(2).checked_mul(30), Ok(SimDuration::from_hours(1)));
        assert_eq!(TimeError::Overflow.to_string(), "time arithmetic overflowed");
    }

    #[test]
    fn operators_saturate_at_the_edges() {
        assert_eq!(SimTime::MAX + SimDuration::from_days(1), SimTime::MAX);
        assert_eq!(SimTime::EPOCH - SimTime::MAX, SimDuration::ZERO);
        assert_eq!(SimDuration::MAX + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(1) - SimDuration::from_secs(5), SimDuration::ZERO);
        let mut t = SimTime::MAX;
        t += SimDuration::from_hours(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "day 31 out of range")]
    fn invalid_date_panics() {
        let _ = SimTime::from_utc(2012, 4, 31, 0, 0, 0);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = SimTime::from_utc(2010, 6, 1, 0, 0, 0);
        let b = SimTime::from_utc(2012, 5, 28, 0, 0, 0);
        assert!(a < b);
        assert!((b - a).as_hours_f64() > 17_000.0);
    }
}
