//! Process-wide telemetry hook: the kernel's half of the metrics plane.
//!
//! The kernel stays dependency-free — it neither owns a metrics registry nor
//! knows how metrics are exported. Instead, a host layer (in this workspace,
//! `malsim::telemetry`) implements [`TelemetryHook`] and installs one
//! `'static` instance process-wide via [`install`]. Every [`Sim`] created
//! *after* installation captures the hook at construction and feeds it one
//! callback per dispatched event; a `Sim` created before installation — or in
//! a process that never installs — carries `None` and pays nothing beyond a
//! single branch per dispatch, the same opt-in idiom as the profiler and the
//! invariant checker.
//!
//! Installation is deliberately one-way (a [`OnceLock`]): the hook is meant
//! to be armed once at process start, before any simulation exists, so that
//! observation never changes mid-run. Whether the registry behind the hook
//! is recording or discarding is the host layer's business — the kernel only
//! promises to call.
//!
//! [`Sim`]: crate::sched::Sim

use std::sync::OnceLock;

use crate::calq::QueueStats;
use crate::trace::TraceCategory;

/// Observer interface the kernel calls into when a hook is installed.
///
/// Implementations must be cheap and non-blocking — the callback runs on the
/// dispatch path of every armed simulation — and must not observe anything
/// back into the simulation: telemetry is strictly write-only from the
/// kernel's point of view, which is what keeps armed and unarmed runs
/// byte-identical.
pub trait TelemetryHook: Send + Sync {
    /// One event was dispatched: its trace-category attribution (the first
    /// category the event recorded, `None` for untraced events) and the
    /// pending-queue depth sampled immediately before the dispatch.
    fn dispatch(&self, category: Option<TraceCategory>, queue_depth: usize);

    /// A `run*` call on an observed [`Sim`] finished: the calendar queue's
    /// structural counters (resizes, tombstone reaps, cursor pull-backs)
    /// accumulated since the previous flush on that `Sim`. Deltas, so
    /// summing them across sims and runs yields process totals.
    fn queue_stats(&self, delta: QueueStats) {
        let _ = delta;
    }
}

static HOOK: OnceLock<&'static dyn TelemetryHook> = OnceLock::new();

/// Installs the process-wide hook. Returns `false` if one was already
/// installed (the first installation wins; there is no uninstall).
pub fn install(hook: &'static dyn TelemetryHook) -> bool {
    HOOK.set(hook).is_ok()
}

/// The installed hook, if any. Captured by [`Sim::new`](crate::sched::Sim::new).
pub fn installed() -> Option<&'static dyn TelemetryHook> {
    HOOK.get().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingHook {
        calls: AtomicU64,
    }

    impl TelemetryHook for CountingHook {
        fn dispatch(&self, _category: Option<TraceCategory>, _queue_depth: usize) {
            self.calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    // One test only: installation is process-global, so everything about the
    // installed hook has to be asserted in a single sequence.
    #[test]
    fn install_is_first_wins_and_sims_capture_it() {
        use crate::sched::Sim;
        use crate::time::{SimDuration, SimTime};

        assert!(installed().is_none(), "no hook before install");
        static HOOK_A: CountingHook = CountingHook { calls: AtomicU64::new(0) };
        static HOOK_B: CountingHook = CountingHook { calls: AtomicU64::new(0) };
        assert!(install(&HOOK_A));
        assert!(!install(&HOOK_B), "second install is rejected");

        let mut sim: Sim<Vec<u32>> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        sim.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<u32>, sim| {
            sim.record(TraceCategory::Net, "host:a", "probe");
            w.push(1);
        });
        sim.schedule_in(SimDuration::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2]);
        assert_eq!(HOOK_A.calls.load(Ordering::Relaxed), 2, "one callback per dispatch");
        assert_eq!(HOOK_B.calls.load(Ordering::Relaxed), 0, "the losing hook never fires");
    }
}
