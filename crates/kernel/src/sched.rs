//! The discrete-event scheduler.
//!
//! A [`Sim<W>`] owns the clock, the pending-event queue, the rng, the trace
//! log, and the metric registry. The *world* `W` (hosts, networks, PLCs, …)
//! is owned by the caller and threaded through every step, which keeps the
//! kernel generic and keeps borrows simple: when an event fires, its action
//! receives `(&mut W, &mut Sim<W>)` and may freely schedule follow-up events.
//!
//! Ordering is total and deterministic: events fire in `(time, sequence)`
//! order, where sequence is assignment order. Two events scheduled for the
//! same instant therefore fire in the order they were scheduled.
//!
//! The pending-event store is a bucketed calendar queue over generational
//! slab storage ([`crate::calq::CalQueue`]): insert, pop, and cancel are
//! O(1) amortized, `(time, seq)` order is structural rather than
//! comparator-driven, and a batch of same-timestamp events drains without
//! re-touching the priority structure.

use std::collections::BTreeMap;
use std::fmt;

use crate::calq::{CalQueue, QueueStats};
use crate::fault::FaultPlane;
use crate::ids::SlotRef;
use crate::invariant::{InvariantChecker, InvariantViolation, LawCx};
use crate::metrics::{Histogram, Metrics};
use crate::rng::SimRng;
use crate::span::{SpanId, SpanLog};
use crate::telemetry::{self, TelemetryHook};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceCategory, TraceLog};

/// An event action: invoked once with the world and the scheduler.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// Handle identifying a scheduled event, usable for cancellation.
///
/// A handle is a generational slot reference: once its event has fired or
/// been cancelled, the handle is stale, and [`Sim::cancel`] through it
/// returns `false` even after the underlying slot is reused by a later
/// event. A handle from [`Sim::schedule_every`] pins its slot and therefore
/// stays valid — and cancellable — across every re-arm of the repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(SlotRef);

/// Deterministic discrete-event simulation core.
///
/// # Examples
///
/// ```
/// use malsim_kernel::sched::Sim;
/// use malsim_kernel::time::{SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<&str>> = Sim::new(SimTime::EPOCH, 42);
/// let mut world = Vec::new();
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<&str>, _| w.push("one"));
/// sim.schedule_in(SimDuration::from_secs(2), |w: &mut Vec<&str>, _| w.push("two"));
/// sim.run(&mut world);
/// assert_eq!(world, vec!["one", "two"]);
/// ```
pub struct Sim<W> {
    now: SimTime,
    queue: CalQueue<Action<W>>,
    executed: u64,
    profiler: Option<Profiler>,
    checker: Option<Box<InvariantChecker<W>>>,
    /// The process-wide telemetry hook, captured at construction (see
    /// [`crate::telemetry`]); `None` in processes that never install one.
    telemetry: Option<&'static dyn TelemetryHook>,
    /// Queue-stats watermark of the last hook flush, so each `run*` call
    /// reports only the delta it produced.
    tele_flushed: QueueStats,
    dispatch_cat: Option<TraceCategory>,
    /// Deterministic random source for the run.
    pub rng: SimRng,
    /// Structured event trace.
    pub trace: TraceLog,
    /// Causal span store; ids are allocated in dispatch order, so they are
    /// deterministic for a given seed regardless of sweep thread count.
    pub spans: SpanLog,
    /// Metric registry.
    pub metrics: Metrics,
    /// Deterministic fault-injection schedule (empty by default).
    ///
    /// Draws stochastic faults from a stream forked off the run seed with
    /// the label `"fault-plane"`, so scheduling faults never perturbs
    /// [`Sim::rng`] and an empty schedule is observationally free.
    pub faults: FaultPlane,
}

impl<W> fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Sim<W> {
    /// Creates a scheduler starting at `start` with the given rng seed.
    pub fn new(start: SimTime, seed: u64) -> Self {
        Sim {
            now: start,
            queue: CalQueue::new(),
            executed: 0,
            profiler: None,
            checker: None,
            telemetry: telemetry::installed(),
            tele_flushed: QueueStats::default(),
            dispatch_cat: None,
            rng: SimRng::seed_from(seed),
            trace: TraceLog::new(),
            spans: SpanLog::new(),
            metrics: Metrics::new(),
            faults: FaultPlane::new(SimRng::seed_from(seed).fork("fault-plane")),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled, not yet reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to *now*: the event fires at the
    /// current instant, after already-queued events for that instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        let time = at.max(self.now);
        EventHandle(self.queue.insert(time, Box::new(action)))
    }

    /// Schedules `action` after a delay from now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a previously scheduled event: an O(1) generational slot
    /// invalidation, no queue search.
    ///
    /// Returns `true` exactly when this call stopped a future firing: the
    /// event was still pending, or it is a repeating event (whose handle
    /// stays live across re-arms — cancelling from inside its own action
    /// suppresses the pending re-arm and also returns `true`). A handle
    /// whose event already fired or was already cancelled returns `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle.0)
    }

    /// Schedules a repeating action every `period`, starting one period from
    /// now, until `action` returns `false`.
    ///
    /// The returned handle pins one queue slot for the whole repetition, so
    /// it cancels the repeating event no matter how many periods have
    /// elapsed.
    pub fn schedule_every<F>(&mut self, period: SimDuration, action: F) -> EventHandle
    where
        F: FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
    {
        assert!(!period.is_zero(), "repeating events require a non-zero period");
        fn rearm<W>(
            slot: SlotRef,
            period: SimDuration,
            mut action: impl FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
        ) -> Action<W> {
            Box::new(move |w, sim| {
                if action(w, sim) {
                    let next = rearm(slot, period, action);
                    let time = sim.now + period;
                    // No-op if the handle was cancelled during this dispatch.
                    sim.queue.rearm(slot, time, next);
                } else {
                    sim.queue.release(slot);
                }
            })
        }
        let slot = self.queue.reserve();
        let time = self.now + period;
        let armed = self.queue.rearm(slot, time, rearm(slot, period, action));
        debug_assert!(armed, "a fresh reservation cannot already be cancelled");
        EventHandle(slot)
    }

    /// Executes the next pending event, advancing the clock to it.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((time, action)) = self.queue.pop() else { return false };
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.executed += 1;
        if self.profiler.is_some() {
            self.dispatch_profiled(world, action);
        } else if let Some(hook) = self.telemetry {
            let depth = self.queue.len();
            self.dispatch_cat = None;
            action(world, self);
            hook.dispatch(self.dispatch_cat.take(), depth);
        } else {
            action(world, self);
        }
        if self.checker.is_some() {
            self.run_invariants(world);
        }
        true
    }

    /// Post-dispatch invariant sweep: the checker is moved out for the call
    /// so the laws can borrow the scheduler's spans and faults immutably.
    fn run_invariants(&mut self, world: &W) {
        let Some(mut checker) = self.checker.take() else { return };
        let cx = LawCx { now: self.now, spans: &self.spans, faults: &self.faults };
        checker.check(world, &cx);
        self.checker = Some(checker);
    }

    /// Dispatch with the probe armed: time the action on the host clock and
    /// attribute it to the first trace category it touches.
    fn dispatch_profiled(&mut self, world: &mut W, action: Action<W>) {
        let depth = self.queue.len();
        self.dispatch_cat = None;
        let started = std::time::Instant::now();
        action(world, self);
        let nanos = started.elapsed().as_nanos() as u64;
        let cat = self.dispatch_cat.take();
        if let Some(hook) = self.telemetry {
            hook.dispatch(cat, depth);
        }
        if let Some(p) = self.profiler.as_mut() {
            p.note(cat.map(TraceCategory::name), nanos, depth);
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
        self.flush_queue_stats();
    }

    /// Reports the queue's structural-counter delta since the last flush to
    /// the telemetry hook. Called at the end of every `run*` entry point;
    /// callers driving [`Sim::step`] by hand are not flushed (their counters
    /// are still readable via [`Sim::queue_stats`]).
    fn flush_queue_stats(&mut self) {
        if let Some(hook) = self.telemetry {
            let now = self.queue.stats();
            hook.queue_stats(QueueStats {
                resizes: now.resizes - self.tele_flushed.resizes,
                tombstone_reaps: now.tombstone_reaps - self.tele_flushed.tombstone_reaps,
                cursor_pullbacks: now.cursor_pullbacks - self.tele_flushed.cursor_pullbacks,
            });
            self.tele_flushed = now;
        }
    }

    /// Runs events with `time <= until`, then sets the clock to `until`.
    ///
    /// Later events remain queued, so the run can be resumed.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        self.run_until_watched(world, until, Watchdog::UNLIMITED);
    }

    /// [`Sim::run_until`] under a [`Watchdog`]: stops early once the event
    /// budget is spent or the host-clock deadline passes, reporting why.
    ///
    /// Cancellation is graceful: on truncation the clock stays at the last
    /// dispatched event and later events remain queued, so the caller can
    /// still read a (partial but consistent) world, emit a report tagged as
    /// truncated, or even resume. Only a `Completed` run advances the clock
    /// to `until`.
    ///
    /// The event budget is deterministic — the same `(seed, budget)` always
    /// truncates at the same event. The host deadline is wall-clock and
    /// therefore *not* deterministic; use it as a safety net, never in runs
    /// whose outputs are compared byte-for-byte.
    pub fn run_until_watched(&mut self, world: &mut W, until: SimTime, watchdog: Watchdog) -> WatchedRun {
        let budget = watchdog.max_events.unwrap_or(u64::MAX);
        let deadline =
            watchdog.deadline_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let mut executed = 0u64;
        loop {
            // `peek_time` reaps cancelled events in passing, so a tombstone
            // never counts against the budget.
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    // Limits are checked only once another event is actually
                    // due, so an exactly-drained queue still reads Completed.
                    if executed >= budget {
                        self.flush_queue_stats();
                        return WatchedRun { reason: StopReason::EventBudget, executed };
                    }
                    if let Some(d) = deadline {
                        // Sampled every 256 dispatches: cheap, and plenty for
                        // a deadline meant to catch runaway points, not to
                        // time them.
                        if executed.is_multiple_of(256) && std::time::Instant::now() >= d {
                            self.flush_queue_stats();
                            return WatchedRun { reason: StopReason::HostDeadline, executed };
                        }
                    }
                    self.step(world);
                    executed += 1;
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
        self.flush_queue_stats();
        WatchedRun { reason: StopReason::Completed, executed }
    }

    /// Runs at most `max_events` events; returns how many were executed.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        self.flush_queue_stats();
        n
    }

    /// Records a trace event stamped with the current time.
    pub fn record(&mut self, category: TraceCategory, actor: impl Into<String>, message: impl Into<String>) {
        self.note_dispatch(category);
        let now = self.now;
        self.trace.record(now, category, actor, message);
    }

    /// Records a trace event attached to a causal span.
    pub fn record_in(
        &mut self,
        span: SpanId,
        category: TraceCategory,
        actor: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.note_dispatch(category);
        let now = self.now;
        self.trace.record_in(now, category, actor, message, Some(span));
    }

    /// Opens a root causal span starting now.
    pub fn open_span(
        &mut self,
        category: TraceCategory,
        actor: impl Into<String>,
        name: impl Into<String>,
    ) -> SpanId {
        self.note_dispatch(category);
        let now = self.now;
        self.spans.open(now, category, actor, name, None)
    }

    /// Opens a causal span starting now, downstream of `parent`.
    pub fn open_child_span(
        &mut self,
        parent: SpanId,
        category: TraceCategory,
        actor: impl Into<String>,
        name: impl Into<String>,
    ) -> SpanId {
        self.note_dispatch(category);
        let now = self.now;
        self.spans.open(now, category, actor, name, Some(parent))
    }

    /// Closes a span at the current time.
    pub fn close_span(&mut self, span: SpanId) {
        let now = self.now;
        self.spans.close(span, now);
    }

    /// Attaches a key-value attribute to a span.
    pub fn span_attr(&mut self, span: SpanId, key: impl Into<String>, value: impl Into<String>) {
        self.spans.set_attr(span, key, value);
    }

    fn note_dispatch(&mut self, category: TraceCategory) {
        if self.dispatch_cat.is_none() && (self.profiler.is_some() || self.telemetry.is_some()) {
            self.dispatch_cat = Some(category);
        }
    }

    /// Snapshot of the pending-event queue's structural counters (ring
    /// resizes, tombstone reaps, cursor pull-backs). Always on — they are
    /// plain field increments — and fully deterministic.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Arms the scheduler profiling probe. Until [`Sim::finish_profile`] is
    /// called, every dispatched event is timed on the host clock, counted per
    /// trace category, and the pre-dispatch queue depth is sampled.
    ///
    /// The probe is entirely off by default: the unprofiled dispatch path
    /// performs no timing, no map lookups, and no extra branches beyond one
    /// `Option` check.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Profiler::default());
    }

    /// Whether the profiling probe is armed.
    pub fn is_profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Disarms the probe and returns the summary, also writing dispatch
    /// counters (`sched.dispatch.<category>`) and queue-depth gauges
    /// (`sched.queue_depth.p50/p95/p99`) into [`Sim::metrics`].
    ///
    /// Host-clock timings are wall-time measurements and therefore *not*
    /// deterministic; they live only in the summary and the metric gauges,
    /// never in the trace, spans, or exports.
    pub fn finish_profile(&mut self) -> Option<ProfileSummary> {
        let profiler = self.profiler.take()?;
        let mut rows = Vec::new();
        let mut total_events = 0u64;
        let mut total_nanos = 0u64;
        for (category, stat) in &profiler.per_cat {
            self.metrics.incr_by(&format!("sched.dispatch.{category}"), stat.count);
            rows.push(ProfileRow {
                category: category.to_string(),
                events: stat.count,
                host_ms: stat.nanos as f64 / 1e6,
            });
            total_events += stat.count;
            total_nanos += stat.nanos;
        }
        let mut queue_depth = profiler.queue_depth;
        let summary = ProfileSummary {
            rows,
            total_events,
            total_host_ms: total_nanos as f64 / 1e6,
            queue_p50: queue_depth.quantile(0.50),
            queue_p95: queue_depth.quantile(0.95),
            queue_p99: queue_depth.quantile(0.99),
            queue_max: queue_depth.max(),
        };
        self.metrics.set_gauge("sched.queue_depth.p50", summary.queue_p50);
        self.metrics.set_gauge("sched.queue_depth.p95", summary.queue_p95);
        self.metrics.set_gauge("sched.queue_depth.p99", summary.queue_p99);
        self.metrics.set_gauge("sched.queue_depth.max", summary.queue_max);
        Some(summary)
    }

    /// Arms the runtime invariant checker, replacing any previously armed one.
    ///
    /// After every dispatched event the checker asserts the kernel laws
    /// (sim-time monotonicity, span causality, fault-window well-formedness)
    /// plus any world laws registered via [`Sim::add_invariant`]. In `strict`
    /// mode the first violation panics with a rendered report; otherwise
    /// violations accumulate and are drained with [`Sim::take_violations`].
    ///
    /// Like profiling, the checker is entirely off by default: the unchecked
    /// dispatch path performs a single `Option` branch and nothing else.
    pub fn enable_invariants(&mut self, strict: bool) {
        self.checker = Some(Box::new(InvariantChecker::new(strict)));
    }

    /// Registers a world-level law on the armed checker.
    ///
    /// The law returns `Err(detail)` to flag a violation; `name` identifies
    /// it in reports. No-op unless [`Sim::enable_invariants`] was called.
    pub fn add_invariant<F>(&mut self, name: &'static str, law: F)
    where
        F: Fn(&W, &LawCx<'_>) -> Result<(), String> + 'static,
    {
        if let Some(checker) = self.checker.as_mut() {
            checker.add_law(name, law);
        }
    }

    /// Drains accumulated invariant violations, leaving the checker armed.
    ///
    /// Returns an empty vector when the checker is disarmed or clean.
    pub fn take_violations(&mut self) -> Vec<InvariantViolation> {
        self.checker.as_mut().map_or_else(Vec::new, |c| c.take_violations())
    }

    /// Whether the invariant checker is armed.
    pub fn is_checking_invariants(&self) -> bool {
        self.checker.is_some()
    }
}

/// The armed scheduler probe: per-category dispatch tallies plus a queue-depth
/// histogram, accumulated by [`Sim::step`].
#[derive(Debug, Clone, Default)]
struct Profiler {
    per_cat: BTreeMap<&'static str, CatStat>,
    queue_depth: Histogram,
}

#[derive(Debug, Clone, Copy, Default)]
struct CatStat {
    count: u64,
    nanos: u64,
}

impl Profiler {
    fn note(&mut self, category: Option<&'static str>, nanos: u64, depth: usize) {
        let stat = self.per_cat.entry(category.unwrap_or("(untraced)")).or_default();
        stat.count += 1;
        stat.nanos += nanos;
        self.queue_depth.observe(depth as f64);
    }
}

/// One row of a [`ProfileSummary`]: all dispatches attributed to a category.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Trace-category name, or `"(untraced)"` for events that recorded nothing.
    pub category: String,
    /// Number of dispatched events.
    pub events: u64,
    /// Total host wall-clock time spent inside those events, in milliseconds.
    pub host_ms: f64,
}

/// Scheduler profile of one run, produced by [`Sim::finish_profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Per-category rows, sorted by category name.
    pub rows: Vec<ProfileRow>,
    /// Total dispatched events.
    pub total_events: u64,
    /// Total host wall-clock milliseconds across all dispatches.
    pub total_host_ms: f64,
    /// Median pre-dispatch queue depth.
    pub queue_p50: f64,
    /// 95th-percentile pre-dispatch queue depth.
    pub queue_p95: f64,
    /// 99th-percentile pre-dispatch queue depth.
    pub queue_p99: f64,
    /// Largest observed queue depth.
    pub queue_max: f64,
}

impl ProfileSummary {
    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("category      events   host ms   avg µs\n");
        for row in &self.rows {
            let avg_us = if row.events == 0 { 0.0 } else { row.host_ms * 1e3 / row.events as f64 };
            out.push_str(&format!(
                "{:<12}  {:>6}  {:>8.2}  {:>7.2}\n",
                row.category, row.events, row.host_ms, avg_us
            ));
        }
        out.push_str(&format!("{:<12}  {:>6}  {:>8.2}\n", "total", self.total_events, self.total_host_ms));
        out.push_str(&format!(
            "queue depth: p50 {:.0}, p95 {:.0}, p99 {:.0}, max {:.0}\n",
            self.queue_p50, self.queue_p95, self.queue_p99, self.queue_max
        ));
        out
    }
}

/// Run limits enforced by [`Sim::run_until_watched`].
///
/// `max_events` is a deterministic sim-side budget: the run stops before
/// dispatching event `max_events + 1`. `deadline_ms` is a host wall-clock
/// deadline measured from the start of the call; it is a nondeterministic
/// safety net for runaway points and must not gate byte-compared outputs.
/// `None` disables the respective limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Watchdog {
    /// Maximum number of events to dispatch in this run, if any.
    pub max_events: Option<u64>,
    /// Host-clock deadline in milliseconds from the start of the run, if any.
    pub deadline_ms: Option<u64>,
}

impl Watchdog {
    /// No limits: [`Sim::run_until_watched`] behaves exactly like
    /// [`Sim::run_until`].
    pub const UNLIMITED: Watchdog = Watchdog { max_events: None, deadline_ms: None };

    /// A watchdog with only a deterministic event budget.
    pub const fn events(max_events: u64) -> Watchdog {
        Watchdog { max_events: Some(max_events), deadline_ms: None }
    }
}

/// Why a watched run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// All events up to `until` were dispatched; the clock advanced to `until`.
    Completed,
    /// The deterministic event budget was exhausted first.
    EventBudget,
    /// The host-clock deadline passed first.
    HostDeadline,
}

/// Outcome of one [`Sim::run_until_watched`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchedRun {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Events dispatched during this call.
    pub executed: u64,
}

impl WatchedRun {
    /// Whether the run finished without tripping a watchdog limit.
    pub fn completed(&self) -> bool {
        self.reason == StopReason::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<u32>;

    fn sim() -> Sim<World> {
        Sim::new(SimTime::EPOCH, 1)
    }

    #[test]
    fn fires_in_time_order() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(3), |w: &mut World, _| w.push(3));
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.push(2));
        s.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut s = sim();
        let mut w = Vec::new();
        let t = SimTime::EPOCH + SimDuration::from_secs(5);
        for i in 0..10 {
            s.schedule_at(t, move |w: &mut World, _| w.push(i));
        }
        s.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_works() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, sim| {
            w.push(1);
            sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(2));
        });
        s.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(2));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(10), |w: &mut World, sim| {
            w.push(1);
            sim.schedule_at(SimTime::EPOCH, |w: &mut World, _| w.push(2));
        });
        s.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(10));
    }

    #[test]
    fn cancellation() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.push(2));
        assert!(s.cancel(h));
        assert!(!s.cancel(h), "double-cancel reports false");
        s.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn fired_handle_does_not_cancel_a_slot_reuser() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.run(&mut w);
        assert!(!s.cancel(h), "fired handle reports false");
        // The next event reuses the freed slot; the stale handle must not
        // reach it through a bumped generation.
        let h2 = s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(2));
        assert!(!s.cancel(h), "stale handle stays dead after slot reuse");
        s.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert!(!s.cancel(h2));
    }

    #[test]
    fn repeating_handle_cancels_across_periods() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_every(SimDuration::from_secs(10), |w: &mut World, _| {
            w.push(w.len() as u32);
            true // would repeat forever
        });
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_secs(35));
        assert_eq!(w, vec![0, 1, 2], "three periods elapsed");
        assert!(s.cancel(h), "handle is still live after re-arms");
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_secs(200));
        assert_eq!(w, vec![0, 1, 2], "no firings after cancellation");
        assert!(!s.cancel(h), "cancel is idempotent on the repeating handle");
    }

    #[test]
    fn repeating_event_can_cancel_itself_mid_dispatch() {
        let mut s = sim();
        let mut w = Vec::new();
        let handle_cell = std::rc::Rc::new(std::cell::Cell::new(None::<EventHandle>));
        let cell = handle_cell.clone();
        let h = s.schedule_every(SimDuration::from_secs(1), move |w: &mut World, sim| {
            w.push(w.len() as u32);
            if w.len() == 2 {
                let own = cell.get().expect("handle stored before run");
                assert!(sim.cancel(own), "self-cancel mid-dispatch suppresses the re-arm");
            }
            true // says "keep going", but the self-cancel wins
        });
        handle_cell.set(Some(h));
        s.run(&mut w);
        assert_eq!(w, vec![0, 1], "no firings after the self-cancel");
        assert!(!s.cancel(h));
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let mut s = sim();
        let mut w = Vec::new();
        for sec in 1..=5 {
            s.schedule_in(SimDuration::from_secs(sec), move |w: &mut World, _| w.push(sec as u32));
        }
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_secs(3));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(3));
        s.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut s = sim();
        let mut w = Vec::new();
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_hours(4));
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_hours(4));
    }

    #[test]
    fn repeating_event_until_false() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_every(SimDuration::from_secs(10), |w: &mut World, _| {
            w.push(w.len() as u32);
            w.len() < 4
        });
        s.run(&mut w);
        assert_eq!(w, vec![0, 1, 2, 3]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(40));
    }

    #[test]
    fn cancel_repeating_before_first_fire() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_every(SimDuration::from_secs(1), |w: &mut World, _| {
            w.push(0);
            true
        });
        s.schedule_in(SimDuration::from_secs(5), |_w, _s| {});
        assert!(s.cancel(h));
        s.run(&mut w);
        assert!(w.is_empty());
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut s = sim();
        let mut w = Vec::new();
        for sec in 1..=10 {
            s.schedule_in(SimDuration::from_secs(sec), move |w: &mut World, _| w.push(sec as u32));
        }
        assert_eq!(s.run_steps(&mut w, 4), 4);
        assert_eq!(w.len(), 4);
        assert_eq!(s.pending(), 6);
    }

    #[test]
    fn trace_recording_uses_sim_clock() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(7), |_w, sim| {
            sim.record(TraceCategory::Scenario, "test", "fired");
        });
        s.run(&mut w);
        let e = s.trace.first_of(TraceCategory::Scenario).unwrap();
        assert_eq!(e.time, SimTime::EPOCH + SimDuration::from_secs(7));
    }

    #[test]
    fn spans_use_sim_clock_and_link() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(3), |_w, sim| {
            let root = sim.open_span(TraceCategory::Infection, "host:a", "infection");
            sim.record_in(root, TraceCategory::Infection, "host:a", "compromised");
            let child = sim.open_child_span(root, TraceCategory::CommandControl, "host:a", "beacon");
            sim.close_span(child);
            sim.span_attr(root, "vector", "usb");
        });
        s.run(&mut w);
        let spans = s.spans.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, SimTime::EPOCH + SimDuration::from_secs(3));
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].end, Some(spans[1].start), "closed at the same instant");
        assert_eq!(spans[0].attr("vector"), Some("usb"));
        let e = s.trace.first_of(TraceCategory::Infection).unwrap();
        assert_eq!(e.span, Some(spans[0].id));
    }

    #[test]
    fn profiler_counts_by_category() {
        let mut s = sim();
        let mut w = Vec::new();
        s.enable_profiling();
        assert!(s.is_profiling());
        s.schedule_in(SimDuration::from_secs(1), |_w, sim| {
            sim.record(TraceCategory::Net, "host:a", "dns lookup");
            sim.record(TraceCategory::Os, "host:a", "file drop"); // attribution goes to the first
        });
        s.schedule_in(SimDuration::from_secs(2), |_w, sim| {
            sim.record(TraceCategory::Net, "host:b", "http get");
        });
        s.schedule_in(SimDuration::from_secs(3), |_w, _sim| {}); // untraced
        s.run(&mut w);
        let summary = s.finish_profile().expect("probe was armed");
        assert!(!s.is_profiling(), "finish disarms");
        assert_eq!(s.finish_profile(), None, "second finish yields nothing");
        assert_eq!(summary.total_events, 3);
        let events: Vec<(&str, u64)> = summary.rows.iter().map(|r| (r.category.as_str(), r.events)).collect();
        assert_eq!(events, vec![("(untraced)", 1), ("net", 2)]);
        assert_eq!(s.metrics.counter("sched.dispatch.net"), 2);
        assert_eq!(s.metrics.counter("sched.dispatch.(untraced)"), 1);
        assert!(s.metrics.gauge("sched.queue_depth.p50").is_some());
        let table = summary.render();
        assert!(table.contains("net"));
        assert!(table.contains("queue depth"));
    }

    #[test]
    fn unprofiled_run_records_no_probe_metrics() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(1), |_w, sim| {
            sim.record(TraceCategory::Net, "host:a", "dns lookup");
        });
        s.run(&mut w);
        assert_eq!(s.finish_profile(), None);
        assert_eq!(s.metrics.counter("sched.dispatch.net"), 0);
        assert_eq!(s.metrics.gauge("sched.queue_depth.p50"), None);
    }

    #[test]
    fn profiling_does_not_perturb_simulation_state() {
        fn run(profile: bool) -> (Vec<u32>, u64) {
            let mut s: Sim<World> = Sim::new(SimTime::EPOCH, 7);
            if profile {
                s.enable_profiling();
            }
            let mut w = Vec::new();
            for _ in 0..20 {
                let d = SimDuration::from_millis(s.rng.range(1..1000u64));
                s.schedule_in(d, |w: &mut World, sim| {
                    let v = sim.rng.range(0..100u32);
                    sim.record(TraceCategory::Scenario, "t", "tick");
                    let span = sim.open_span(TraceCategory::Scenario, "t", "tick");
                    sim.close_span(span);
                    w.push(v);
                });
            }
            s.run(&mut w);
            (w, s.spans.spans().last().unwrap().id.as_u64())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deterministic_with_rng_interleaving() {
        fn run(seed: u64) -> Vec<u32> {
            let mut s: Sim<World> = Sim::new(SimTime::EPOCH, seed);
            let mut w = Vec::new();
            for _ in 0..20 {
                let d = SimDuration::from_millis(s.rng.range(1..1000u64));
                s.schedule_in(d, |w: &mut World, sim| {
                    let v = sim.rng.range(0..100u32);
                    w.push(v);
                });
            }
            s.run(&mut w);
            w
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn watched_run_stops_on_event_budget() {
        let mut s = sim();
        let mut w = Vec::new();
        for i in 0..10u32 {
            s.schedule_in(SimDuration::from_secs(i as u64 + 1), move |w: &mut World, _| w.push(i));
        }
        let until = SimTime::EPOCH + SimDuration::from_secs(100);
        let run = s.run_until_watched(&mut w, until, Watchdog::events(4));
        assert_eq!(run, WatchedRun { reason: StopReason::EventBudget, executed: 4 });
        assert!(!run.completed());
        assert_eq!(w, vec![0, 1, 2, 3]);
        // Truncation leaves the clock at the last dispatched event and keeps
        // the rest queued, so the run can be resumed to completion.
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(4));
        assert_eq!(s.pending(), 6);
        let resumed = s.run_until_watched(&mut w, until, Watchdog::UNLIMITED);
        assert_eq!(resumed, WatchedRun { reason: StopReason::Completed, executed: 6 });
        assert_eq!(w, (0..10).collect::<Vec<_>>());
        assert_eq!(s.now(), until);
    }

    #[test]
    fn unlimited_watchdog_matches_run_until() {
        fn world(watched: bool) -> (World, SimTime) {
            let mut s = sim();
            let mut w = Vec::new();
            for _ in 0..50 {
                let d = SimDuration::from_millis(s.rng.range(1..500u64));
                s.schedule_in(d, |w: &mut World, sim| w.push(sim.rng.range(0..100u32)));
            }
            let until = SimTime::EPOCH + SimDuration::from_millis(400);
            if watched {
                let run = s.run_until_watched(&mut w, until, Watchdog::UNLIMITED);
                assert!(run.completed());
            } else {
                s.run_until(&mut w, until);
            }
            (w, s.now())
        }
        assert_eq!(world(true), world(false));
    }

    #[test]
    fn host_deadline_in_the_past_stops_immediately() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        let watchdog = Watchdog { max_events: None, deadline_ms: Some(0) };
        let run = s.run_until_watched(&mut w, SimTime::EPOCH + SimDuration::from_secs(10), watchdog);
        assert_eq!(run.reason, StopReason::HostDeadline);
        assert_eq!(run.executed, 0);
        assert!(w.is_empty(), "deadline trip dispatches nothing further");
    }

    #[test]
    fn invariant_hook_does_not_perturb_simulation() {
        fn run(check: bool) -> World {
            let mut s = sim();
            if check {
                s.enable_invariants(false);
            }
            let mut w = Vec::new();
            for _ in 0..20 {
                let d = SimDuration::from_millis(s.rng.range(1..1000u64));
                s.schedule_in(d, |w: &mut World, sim| w.push(sim.rng.range(0..100u32)));
            }
            s.run(&mut w);
            w
        }
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn sim_surfaces_world_law_violations() {
        let mut s = sim();
        s.enable_invariants(false);
        assert!(s.is_checking_invariants());
        s.add_invariant("world-small", |w: &World, _cx| {
            if w.len() > 2 {
                Err(format!("{} entries, expected at most 2", w.len()))
            } else {
                Ok(())
            }
        });
        let mut w = Vec::new();
        for i in 0..4u32 {
            s.schedule_in(SimDuration::from_secs(i as u64 + 1), move |w: &mut World, _| w.push(i));
        }
        s.run(&mut w);
        let violations = s.take_violations();
        assert_eq!(violations.len(), 2, "third and fourth pushes each breach the law");
        assert_eq!(violations[0].law, "world-small");
        assert!(s.take_violations().is_empty(), "draining leaves the checker armed but clean");
        assert!(s.is_checking_invariants());
    }

    #[test]
    fn disarmed_sim_has_no_violations() {
        let mut s = sim();
        assert!(!s.is_checking_invariants());
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.run(&mut w);
        assert!(s.take_violations().is_empty());
    }
}
