//! The discrete-event scheduler.
//!
//! A [`Sim<W>`] owns the clock, the pending-event queue, the rng, the trace
//! log, and the metric registry. The *world* `W` (hosts, networks, PLCs, …)
//! is owned by the caller and threaded through every step, which keeps the
//! kernel generic and keeps borrows simple: when an event fires, its action
//! receives `(&mut W, &mut Sim<W>)` and may freely schedule follow-up events.
//!
//! Ordering is total and deterministic: events fire in `(time, sequence)`
//! order, where sequence is assignment order. Two events scheduled for the
//! same instant therefore fire in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::fault::FaultPlane;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceCategory, TraceLog};

/// An event action: invoked once with the world and the scheduler.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event simulation core.
///
/// # Examples
///
/// ```
/// use malsim_kernel::sched::Sim;
/// use malsim_kernel::time::{SimDuration, SimTime};
///
/// let mut sim: Sim<Vec<&str>> = Sim::new(SimTime::EPOCH, 42);
/// let mut world = Vec::new();
/// sim.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<&str>, _| w.push("one"));
/// sim.schedule_in(SimDuration::from_secs(2), |w: &mut Vec<&str>, _| w.push("two"));
/// sim.run(&mut world);
/// assert_eq!(world, vec!["one", "two"]);
/// ```
pub struct Sim<W> {
    now: SimTime,
    next_seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    executed: u64,
    /// Deterministic random source for the run.
    pub rng: SimRng,
    /// Structured event trace.
    pub trace: TraceLog,
    /// Metric registry.
    pub metrics: Metrics,
    /// Deterministic fault-injection schedule (empty by default).
    ///
    /// Draws stochastic faults from a stream forked off the run seed with
    /// the label `"fault-plane"`, so scheduling faults never perturbs
    /// [`Sim::rng`] and an empty schedule is observationally free.
    pub faults: FaultPlane,
}

impl<W> fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Sim<W> {
    /// Creates a scheduler starting at `start` with the given rng seed.
    pub fn new(start: SimTime, seed: u64) -> Self {
        Sim {
            now: start,
            next_seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
            rng: SimRng::seed_from(seed),
            trace: TraceLog::new(),
            metrics: Metrics::new(),
            faults: FaultPlane::new(SimRng::seed_from(seed).fork("fault-plane")),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled, not yet reaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to *now*: the event fires at the
    /// current instant, after already-queued events for that instant.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, action: Box::new(action) });
        EventHandle(seq)
    }

    /// Schedules `action` after a delay from now.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    /// Schedules a repeating action every `period`, starting one period from
    /// now, until `action` returns `false`.
    pub fn schedule_every<F>(&mut self, period: SimDuration, action: F) -> EventHandle
    where
        F: FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
    {
        assert!(!period.is_zero(), "repeating events require a non-zero period");
        fn rearm<W>(
            period: SimDuration,
            mut action: impl FnMut(&mut W, &mut Sim<W>) -> bool + 'static,
        ) -> Action<W> {
            Box::new(move |w, sim| {
                if action(w, sim) {
                    let next = rearm(period, action);
                    let time = sim.now + period;
                    let seq = sim.next_seq;
                    sim.next_seq += 1;
                    sim.queue.push(Scheduled { time, seq, action: next });
                }
            })
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let time = self.now + period;
        self.queue.push(Scheduled { time, seq, action: rearm(period, action) });
        EventHandle(seq)
    }

    /// Executes the next pending event, advancing the clock to it.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else { return false };
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.time;
            self.executed += 1;
            (ev.action)(world, self);
            return true;
        }
    }

    /// Runs until the queue drains.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs events with `time <= until`, then sets the clock to `until`.
    ///
    /// Later events remain queued, so the run can be resumed.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            let next_time = loop {
                match self.queue.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked event exists");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.time),
                    None => break None,
                }
            };
            match next_time {
                Some(t) if t <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
    }

    /// Runs at most `max_events` events; returns how many were executed.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        n
    }

    /// Records a trace event stamped with the current time.
    pub fn record(&mut self, category: TraceCategory, actor: impl Into<String>, message: impl Into<String>) {
        let now = self.now;
        self.trace.record(now, category, actor, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type World = Vec<u32>;

    fn sim() -> Sim<World> {
        Sim::new(SimTime::EPOCH, 1)
    }

    #[test]
    fn fires_in_time_order() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(3), |w: &mut World, _| w.push(3));
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.push(2));
        s.run(&mut w);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut s = sim();
        let mut w = Vec::new();
        let t = SimTime::EPOCH + SimDuration::from_secs(5);
        for i in 0..10 {
            s.schedule_at(t, move |w: &mut World, _| w.push(i));
        }
        s.run(&mut w);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_works() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(1), |w: &mut World, sim| {
            w.push(1);
            sim.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(2));
        });
        s.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(2));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(10), |w: &mut World, sim| {
            w.push(1);
            sim.schedule_at(SimTime::EPOCH, |w: &mut World, _| w.push(2));
        });
        s.run(&mut w);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(10));
    }

    #[test]
    fn cancellation() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_in(SimDuration::from_secs(1), |w: &mut World, _| w.push(1));
        s.schedule_in(SimDuration::from_secs(2), |w: &mut World, _| w.push(2));
        assert!(s.cancel(h));
        assert!(!s.cancel(h), "double-cancel reports false");
        assert!(!s.cancel(EventHandle(999)), "unknown handle reports false");
        s.run(&mut w);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let mut s = sim();
        let mut w = Vec::new();
        for sec in 1..=5 {
            s.schedule_in(SimDuration::from_secs(sec), move |w: &mut World, _| w.push(sec as u32));
        }
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_secs(3));
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(3));
        s.run(&mut w);
        assert_eq!(w, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut s = sim();
        let mut w = Vec::new();
        s.run_until(&mut w, SimTime::EPOCH + SimDuration::from_hours(4));
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_hours(4));
    }

    #[test]
    fn repeating_event_until_false() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_every(SimDuration::from_secs(10), |w: &mut World, _| {
            w.push(w.len() as u32);
            w.len() < 4
        });
        s.run(&mut w);
        assert_eq!(w, vec![0, 1, 2, 3]);
        assert_eq!(s.now(), SimTime::EPOCH + SimDuration::from_secs(40));
    }

    #[test]
    fn cancel_repeating_before_first_fire() {
        let mut s = sim();
        let mut w = Vec::new();
        let h = s.schedule_every(SimDuration::from_secs(1), |w: &mut World, _| {
            w.push(0);
            true
        });
        s.schedule_in(SimDuration::from_secs(5), |_w, _s| {});
        assert!(s.cancel(h));
        s.run(&mut w);
        assert!(w.is_empty());
    }

    #[test]
    fn run_steps_bounds_execution() {
        let mut s = sim();
        let mut w = Vec::new();
        for sec in 1..=10 {
            s.schedule_in(SimDuration::from_secs(sec), move |w: &mut World, _| w.push(sec as u32));
        }
        assert_eq!(s.run_steps(&mut w, 4), 4);
        assert_eq!(w.len(), 4);
        assert_eq!(s.pending(), 6);
    }

    #[test]
    fn trace_recording_uses_sim_clock() {
        let mut s = sim();
        let mut w = Vec::new();
        s.schedule_in(SimDuration::from_secs(7), |_w, sim| {
            sim.record(TraceCategory::Scenario, "test", "fired");
        });
        s.run(&mut w);
        let e = s.trace.first_of(TraceCategory::Scenario).unwrap();
        assert_eq!(e.time, SimTime::EPOCH + SimDuration::from_secs(7));
    }

    #[test]
    fn deterministic_with_rng_interleaving() {
        fn run(seed: u64) -> Vec<u32> {
            let mut s: Sim<World> = Sim::new(SimTime::EPOCH, seed);
            let mut w = Vec::new();
            for _ in 0..20 {
                let d = SimDuration::from_millis(s.rng.range(1..1000u64));
                s.schedule_in(d, |w: &mut World, sim| {
                    let v = sim.rng.range(0..100u32);
                    w.push(v);
                });
            }
            s.run(&mut w);
            w
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
