//! Structured event trace.
//!
//! The trace is the simulation's forensic record: every subsystem appends
//! [`TraceEvent`]s, and experiments/analysis query it afterwards. It is also
//! what the paper-reproduction harness inspects to reconstruct campaign
//! timelines.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Category of a trace event, used for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceCategory {
    /// Host-level OS activity (file drops, service creation, driver loads).
    Os,
    /// Network traffic and protocol activity.
    Net,
    /// Infection lifecycle (initial compromise, lateral movement).
    Infection,
    /// Command-and-control traffic and server-side actions.
    CommandControl,
    /// Data collection and exfiltration.
    Exfiltration,
    /// Industrial control (Step 7 / PLC / physical process).
    Scada,
    /// Destructive actions (wiping, MBR overwrite, physical damage).
    Destruction,
    /// Defensive systems (AV, IDS, patching, advisories).
    Defense,
    /// Self-removal / anti-forensics.
    Suicide,
    /// Scenario orchestration bookkeeping.
    Scenario,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Os => "os",
            TraceCategory::Net => "net",
            TraceCategory::Infection => "infection",
            TraceCategory::CommandControl => "c2",
            TraceCategory::Exfiltration => "exfil",
            TraceCategory::Scada => "scada",
            TraceCategory::Destruction => "destruction",
            TraceCategory::Defense => "defense",
            TraceCategory::Suicide => "suicide",
            TraceCategory::Scenario => "scenario",
        };
        f.write_str(s)
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Filtering category.
    pub category: TraceCategory,
    /// The acting entity, e.g. `"host:eng-laptop"` or `"c2:server-3"`.
    pub actor: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:>11} {}: {}", self.time, self.category.to_string(), self.actor, self.message)
    }
}

/// Append-only log of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::SimTime;
/// use malsim_kernel::trace::{TraceCategory, TraceLog};
///
/// let mut log = TraceLog::new();
/// log.record(SimTime::EPOCH, TraceCategory::Infection, "host:a", "compromised via usb");
/// assert_eq!(log.count(TraceCategory::Infection), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an empty, enabled log.
    pub fn new() -> Self {
        TraceLog { events: Vec::new(), enabled: true }
    }

    /// Creates a log that discards all events (for large benchmark sweeps).
    pub fn disabled() -> Self {
        TraceLog { events: Vec::new(), enabled: false }
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    pub fn record(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        actor: impl Into<String>,
        message: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent { time, category, actor: actor.into(), message: message.into() });
        }
    }

    /// All events, in insertion (and therefore chronological) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates events of one category.
    pub fn of(&self, category: TraceCategory) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Number of events in a category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.of(category).count()
    }

    /// Events whose actor matches exactly.
    pub fn by_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.actor == actor)
    }

    /// First event of a category, if any.
    pub fn first_of(&self, category: TraceCategory) -> Option<&TraceEvent> {
        self.of(category).next()
    }

    /// First event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events, keeping the enabled/disabled mode.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the whole log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(t(0), TraceCategory::Os, "host:a", "dropped file");
        log.record(t(5), TraceCategory::Net, "host:a", "dns lookup");
        log.record(t(9), TraceCategory::Os, "host:b", "service created");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(TraceCategory::Os), 2);
        assert_eq!(log.by_actor("host:a").count(), 2);
        assert_eq!(log.first_of(TraceCategory::Net).unwrap().message, "dns lookup");
        assert!(log.find("service").is_some());
        assert!(log.find("absent").is_none());
    }

    #[test]
    fn disabled_log_discards() {
        let mut log = TraceLog::disabled();
        log.record(t(0), TraceCategory::Os, "x", "y");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            time: SimTime::EPOCH + SimDuration::from_secs(1),
            category: TraceCategory::Infection,
            actor: "host:eng".into(),
            message: "lnk exploit fired".into(),
        };
        let s = e.to_string();
        assert!(s.contains("infection"));
        assert!(s.contains("host:eng"));
        assert!(s.contains("lnk exploit fired"));
    }

    #[test]
    fn clear_retains_mode() {
        let mut log = TraceLog::new();
        log.record(t(0), TraceCategory::Scenario, "sim", "start");
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_enabled());
    }
}
