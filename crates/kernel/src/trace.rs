//! Structured event trace.
//!
//! The trace is the simulation's forensic record: every subsystem appends
//! [`TraceEvent`]s, and experiments/analysis query it afterwards. It is also
//! what the paper-reproduction harness inspects to reconstruct campaign
//! timelines.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::span::SpanId;
use crate::time::SimTime;

/// Category of a trace event, used for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceCategory {
    /// Host-level OS activity (file drops, service creation, driver loads).
    Os,
    /// Network traffic and protocol activity.
    Net,
    /// Infection lifecycle (initial compromise, lateral movement).
    Infection,
    /// Command-and-control traffic and server-side actions.
    CommandControl,
    /// Data collection and exfiltration.
    Exfiltration,
    /// Industrial control (Step 7 / PLC / physical process).
    Scada,
    /// Destructive actions (wiping, MBR overwrite, physical damage).
    Destruction,
    /// Defensive systems (AV, IDS, patching, advisories).
    Defense,
    /// Self-removal / anti-forensics.
    Suicide,
    /// Scenario orchestration bookkeeping.
    Scenario,
}

impl TraceCategory {
    /// All categories, in declaration order.
    pub const ALL: [TraceCategory; 10] = [
        TraceCategory::Os,
        TraceCategory::Net,
        TraceCategory::Infection,
        TraceCategory::CommandControl,
        TraceCategory::Exfiltration,
        TraceCategory::Scada,
        TraceCategory::Destruction,
        TraceCategory::Defense,
        TraceCategory::Suicide,
        TraceCategory::Scenario,
    ];

    /// Stable short name, shared by the trace, span, and export layers.
    pub const fn name(self) -> &'static str {
        match self {
            TraceCategory::Os => "os",
            TraceCategory::Net => "net",
            TraceCategory::Infection => "infection",
            TraceCategory::CommandControl => "c2",
            TraceCategory::Exfiltration => "exfil",
            TraceCategory::Scada => "scada",
            TraceCategory::Destruction => "destruction",
            TraceCategory::Defense => "defense",
            TraceCategory::Suicide => "suicide",
            TraceCategory::Scenario => "scenario",
        }
    }
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Filtering category.
    pub category: TraceCategory,
    /// The acting entity, e.g. `"host:eng-laptop"` or `"c2:server-3"`.
    pub actor: String,
    /// Human-readable description.
    pub message: String,
    /// The causal span this event belongs to, if any.
    pub span: Option<SpanId>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:>11} {}: {}", self.time, self.category.to_string(), self.actor, self.message)
    }
}

/// Retention policy for a [`TraceLog`]: per-category caps on how many events
/// are kept, so Aramco-scale runs (tens of thousands of wiped hosts) stay
/// memory-bounded without silently losing their record.
///
/// An unset cap means unlimited; a cap of 0 drops the whole category. The
/// default config is unbounded and adds no per-record cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Cap applied to every category without an explicit entry.
    pub default_cap: Option<usize>,
    /// Per-category caps overriding `default_cap`.
    pub caps: BTreeMap<TraceCategory, usize>,
}

impl TraceConfig {
    /// Unbounded config (the default).
    pub fn unbounded() -> Self {
        TraceConfig::default()
    }

    /// Config capping every category at `cap`.
    pub fn capped(cap: usize) -> Self {
        TraceConfig { default_cap: Some(cap), caps: BTreeMap::new() }
    }

    /// Sets a cap for one category (builder style).
    pub fn with_cap(mut self, category: TraceCategory, cap: usize) -> Self {
        self.caps.insert(category, cap);
        self
    }

    /// The effective cap for a category, if any.
    pub fn cap_for(&self, category: TraceCategory) -> Option<usize> {
        self.caps.get(&category).copied().or(self.default_cap)
    }

    /// True when any cap is set (the log only does bookkeeping then).
    pub fn is_bounded(&self) -> bool {
        self.default_cap.is_some() || !self.caps.is_empty()
    }
}

/// Append-only log of [`TraceEvent`]s.
///
/// # Examples
///
/// ```
/// use malsim_kernel::time::SimTime;
/// use malsim_kernel::trace::{TraceCategory, TraceLog};
///
/// let mut log = TraceLog::new();
/// log.record(SimTime::EPOCH, TraceCategory::Infection, "host:a", "compromised via usb");
/// assert_eq!(log.count(TraceCategory::Infection), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
    config: TraceConfig,
    kept: BTreeMap<TraceCategory, usize>,
    dropped: BTreeMap<TraceCategory, u64>,
}

impl TraceLog {
    /// Creates an empty, enabled log.
    pub fn new() -> Self {
        TraceLog { enabled: true, ..TraceLog::default() }
    }

    /// Creates a log that discards all events (for large benchmark sweeps).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Creates an enabled log with the given retention policy.
    pub fn with_config(config: TraceConfig) -> Self {
        TraceLog { enabled: true, config, ..TraceLog::default() }
    }

    /// Replaces the retention policy. Already-kept events are untouched; the
    /// new caps apply to subsequent records.
    pub fn set_config(&mut self, config: TraceConfig) {
        self.config = config;
    }

    /// The current retention policy.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    pub fn record(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        actor: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.record_in(time, category, actor, message, None);
    }

    /// Appends an event attached to a causal span (no-op when disabled).
    ///
    /// When the category is at its configured cap, the event is dropped and
    /// counted instead — truncation is never silent.
    pub fn record_in(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        actor: impl Into<String>,
        message: impl Into<String>,
        span: Option<SpanId>,
    ) {
        if !self.enabled {
            return;
        }
        if self.config.is_bounded() {
            if let Some(cap) = self.config.cap_for(category) {
                let kept = self.kept.entry(category).or_insert(0);
                if *kept >= cap {
                    *self.dropped.entry(category).or_insert(0) += 1;
                    return;
                }
                *kept += 1;
            }
        }
        self.events.push(TraceEvent { time, category, actor: actor.into(), message: message.into(), span });
    }

    /// Events dropped from one category by the retention policy.
    pub fn dropped(&self, category: TraceCategory) -> u64 {
        self.dropped.get(&category).copied().unwrap_or(0)
    }

    /// Total events dropped by the retention policy.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// All events, in insertion (and therefore chronological) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates events of one category.
    pub fn of(&self, category: TraceCategory) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Number of events in a category.
    pub fn count(&self, category: TraceCategory) -> usize {
        self.of(category).count()
    }

    /// Events whose actor matches exactly.
    pub fn by_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.actor == actor)
    }

    /// First event of a category, if any.
    pub fn first_of(&self, category: TraceCategory) -> Option<&TraceEvent> {
        self.of(category).next()
    }

    /// First event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events (and cap bookkeeping), keeping the
    /// enabled/disabled mode and the retention policy.
    pub fn clear(&mut self) {
        self.events.clear();
        self.kept.clear();
        self.dropped.clear();
    }

    /// Renders the whole log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(t(0), TraceCategory::Os, "host:a", "dropped file");
        log.record(t(5), TraceCategory::Net, "host:a", "dns lookup");
        log.record(t(9), TraceCategory::Os, "host:b", "service created");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(TraceCategory::Os), 2);
        assert_eq!(log.by_actor("host:a").count(), 2);
        assert_eq!(log.first_of(TraceCategory::Net).unwrap().message, "dns lookup");
        assert!(log.find("service").is_some());
        assert!(log.find("absent").is_none());
    }

    #[test]
    fn disabled_log_discards() {
        let mut log = TraceLog::disabled();
        log.record(t(0), TraceCategory::Os, "x", "y");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            time: SimTime::EPOCH + SimDuration::from_secs(1),
            category: TraceCategory::Infection,
            actor: "host:eng".into(),
            message: "lnk exploit fired".into(),
            span: None,
        };
        let s = e.to_string();
        assert!(s.contains("infection"));
        assert!(s.contains("host:eng"));
        assert!(s.contains("lnk exploit fired"));
    }

    #[test]
    fn clear_retains_mode() {
        let mut log = TraceLog::new();
        log.record(t(0), TraceCategory::Scenario, "sim", "start");
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_enabled());
    }

    #[test]
    fn category_name_matches_display() {
        for cat in TraceCategory::ALL {
            assert_eq!(cat.name(), cat.to_string());
        }
    }

    #[test]
    fn per_category_cap_drops_and_counts() {
        let mut log = TraceLog::with_config(TraceConfig::default().with_cap(TraceCategory::Os, 2));
        for i in 0..5 {
            log.record(t(i), TraceCategory::Os, "host:a", format!("os event {i}"));
            log.record(t(i), TraceCategory::Net, "host:a", format!("net event {i}"));
        }
        assert_eq!(log.count(TraceCategory::Os), 2, "cap keeps the first two");
        assert_eq!(log.count(TraceCategory::Net), 5, "uncapped category unaffected");
        assert_eq!(log.dropped(TraceCategory::Os), 3);
        assert_eq!(log.dropped(TraceCategory::Net), 0);
        assert_eq!(log.dropped_total(), 3);
    }

    #[test]
    fn default_cap_applies_with_override() {
        let mut log = TraceLog::with_config(TraceConfig::capped(1).with_cap(TraceCategory::Destruction, 3));
        for i in 0..4 {
            log.record(t(i), TraceCategory::Os, "h", "x");
            log.record(t(i), TraceCategory::Destruction, "h", "y");
        }
        assert_eq!(log.count(TraceCategory::Os), 1);
        assert_eq!(log.count(TraceCategory::Destruction), 3);
        assert_eq!(log.dropped_total(), 3 + 1);
    }

    #[test]
    fn zero_cap_filters_category_out() {
        let mut log = TraceLog::with_config(TraceConfig::default().with_cap(TraceCategory::Net, 0));
        log.record(t(0), TraceCategory::Net, "h", "noise");
        log.record(t(0), TraceCategory::Infection, "h", "signal");
        assert_eq!(log.count(TraceCategory::Net), 0);
        assert_eq!(log.count(TraceCategory::Infection), 1);
        assert_eq!(log.dropped(TraceCategory::Net), 1);
    }

    #[test]
    fn unbounded_config_tracks_nothing() {
        let cfg = TraceConfig::unbounded();
        assert!(!cfg.is_bounded());
        assert_eq!(cfg.cap_for(TraceCategory::Os), None);
        let mut log = TraceLog::new();
        log.record(t(0), TraceCategory::Os, "h", "x");
        assert_eq!(log.dropped_total(), 0);
    }

    #[test]
    fn clear_resets_cap_bookkeeping() {
        let mut log = TraceLog::with_config(TraceConfig::capped(1));
        log.record(t(0), TraceCategory::Os, "h", "a");
        log.record(t(1), TraceCategory::Os, "h", "b");
        assert_eq!(log.dropped_total(), 1);
        log.clear();
        assert_eq!(log.dropped_total(), 0);
        log.record(t(2), TraceCategory::Os, "h", "c");
        assert_eq!(log.len(), 1, "cap budget is fresh after clear");
    }
}
