//! Seeded, forkable randomness.
//!
//! Every stochastic decision in a scenario flows from a single [`SimRng`]
//! seeded at scenario construction, so a `(scenario, seed)` pair fully
//! determines the event trace. `ChaCha8` is used (rather than `StdRng`)
//! because its stream is stable across `rand` releases and platforms.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random source for a simulation.
///
/// # Examples
///
/// ```
/// use malsim_kernel::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Creates an rng from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed), seed }
    }

    /// The seed this rng (or its fork ancestor) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream labelled by `label`.
    ///
    /// Forked streams decouple subsystems: drawing extra numbers in one
    /// subsystem does not shift the values another subsystem sees, which keeps
    /// traces comparable across ablation runs.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let seed = self.seed ^ h.rotate_left(17);
        SimRng::seed_from(seed)
    }

    /// Derives the seed of an independent stream identified by a stable
    /// `(label, point, base_seed)` key.
    ///
    /// This is the sweep-runner contract: every point of a parameter sweep
    /// seeds its own simulation from this function, so a point's randomness
    /// depends only on the key — never on which thread ran it or how many
    /// points ran before it — and parallel sweeps are byte-identical to
    /// serial ones. The label bytes and the point index are folded through
    /// FNV-1a, then mixed with the base seed through a splitmix64 finalizer
    /// so that nearby keys land far apart.
    pub fn derive_stream_seed(base: u64, label: &str, point: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        for b in point.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = h ^ base.rotate_left(29);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Creates the rng for a sweep-point stream (see
    /// [`SimRng::derive_stream_seed`]).
    pub fn for_stream(base: u64, label: &str, point: u64) -> SimRng {
        SimRng::seed_from(SimRng::derive_stream_seed(base, label, point))
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// Returns `None` when the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..items.len());
            Some(&items[i])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices out of `0..n` (or all of them if `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Exponentially distributed delay with the given mean, in milliseconds.
    ///
    /// Used for memoryless inter-arrival processes (beaconing intervals,
    /// user activity). Always returns at least 1 ms so that scheduled
    /// follow-ups strictly advance time.
    pub fn exp_millis(&mut self, mean_ms: f64) -> u64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let v = -mean_ms * u.ln();
        v.clamp(1.0, 1e15) as u64
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = SimRng::seed_from(7);
        let mut f1 = root.fork("net");
        let mut f2 = root.fork("net");
        let mut g = root.fork("os");
        assert_eq!(f1.bits(), f2.bits());
        // Distinct labels should give distinct streams (overwhelmingly).
        let a: Vec<u64> = (0..4).map(|_| f1.bits()).collect();
        let b: Vec<u64> = (0..4).map(|_| g.bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_seeds_are_stable_across_releases() {
        // Golden snapshots key every sweep point off this derivation; a
        // silent change to the mixing would shift every recorded number, so
        // the exact values are pinned here.
        assert_eq!(SimRng::derive_stream_seed(42, "e2", 0), 0x0796_8f48_375d_2f4b);
        assert_eq!(SimRng::derive_stream_seed(42, "e2", 3), 0x63dc_0a9b_b4ca_4028);
        assert_eq!(SimRng::derive_stream_seed(815, "e13", 5), 0x9260_95e7_0cdc_eb81);
    }

    #[test]
    fn stream_seeds_separate_every_key_component() {
        let base = SimRng::derive_stream_seed(7, "exp", 0);
        assert_ne!(base, SimRng::derive_stream_seed(8, "exp", 0), "base seed matters");
        assert_ne!(base, SimRng::derive_stream_seed(7, "exq", 0), "label matters");
        assert_ne!(base, SimRng::derive_stream_seed(7, "exp", 1), "point matters");
        // And the rng built from the key replays the same stream.
        let mut a = SimRng::for_stream(7, "exp", 0);
        let mut b = SimRng::for_stream(7, "exp", 0);
        for _ in 0..16 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(99);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::seed_from(5);
        assert_eq!(r.pick::<u8>(&[]), None);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut r = SimRng::seed_from(11);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 10);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn exp_millis_positive_and_mean_like() {
        let mut r = SimRng::seed_from(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.exp_millis(500.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((400.0..600.0).contains(&mean), "mean {mean}");
    }
}
