//! Deterministic fault-injection plane.
//!
//! A [`FaultPlane`] holds a schedule of [`FaultWindow`]s — time intervals
//! during which a named target (a zone, a domain, a C&C server, a host; the
//! kernel does not interpret the names) suffers a [`FaultKind`]. Higher
//! layers consult the plane at decision points (DNS resolution, beaconing,
//! link traversal) and receive deterministic answers:
//!
//! - Pure window queries (`link_down_at`, `dns_outage_at`, …) are just
//!   interval lookups and consume no randomness.
//! - Stochastic faults (packet loss) and retry jitter draw from the plane's
//!   **own forked rng stream**, never from `Sim::rng`. An empty schedule
//!   therefore leaves the main random stream byte-identical to a run without
//!   a fault plane at all — fault injection is zero-cost by default.
//!
//! Targets are free-form strings matched exactly; the reserved target `"*"`
//! on a window matches every query. Windows are half-open `[start, end)`;
//! use [`SimTime::MAX`] as the end for permanent faults (takedowns).

use std::fmt;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The class of failure a fault window injects.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The target's network link is severed: no traffic in or out.
    LinkDown,
    /// Traffic involving the target is dropped with this probability.
    PacketLoss {
        /// Probability in `[0, 1]` that any single exchange is lost.
        probability: f64,
    },
    /// DNS resolution fails for the target domain (or all, for `"*"`).
    DnsOutage,
    /// The target server has been seized or sinkholed and answers nothing.
    ServerTakedown,
    /// The target host has crashed.
    HostCrash {
        /// If set, the host reboots this long after the crash begins.
        reboot_after: Option<SimDuration>,
    },
}

impl FaultKind {
    /// Short lower-case label used in traces and `Display` output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link-down",
            FaultKind::PacketLoss { .. } => "packet-loss",
            FaultKind::DnsOutage => "dns-outage",
            FaultKind::ServerTakedown => "takedown",
            FaultKind::HostCrash { .. } => "host-crash",
        }
    }
}

/// One scheduled fault: `kind` afflicts `target` during `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Name of the afflicted entity; `"*"` matches every query.
    pub target: String,
    /// What goes wrong.
    pub kind: FaultKind,
    /// First instant the fault is active (inclusive).
    pub start: SimTime,
    /// First instant the fault is over (exclusive); [`SimTime::MAX`] = forever.
    pub end: SimTime,
}

impl FaultWindow {
    /// Whether the window covers instant `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }

    /// Checks the window is well-formed: `start <= end` and, for packet
    /// loss, a finite probability within `[0, 1]`.
    ///
    /// The helper constructors ([`FaultPlane::packet_loss`] etc.) uphold
    /// these by construction; [`FaultPlane::schedule`] accepts arbitrary
    /// windows, so the runtime invariant checker validates each scheduled
    /// window through this.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if self.start > self.end {
            return Err(FaultConfigError::InvertedWindow {
                target: self.target.clone(),
                start: self.start,
                end: self.end,
            });
        }
        if let FaultKind::PacketLoss { probability } = self.kind {
            if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                return Err(FaultConfigError::InvalidProbability {
                    target: self.target.clone(),
                    probability,
                });
            }
        }
        Ok(())
    }

    fn matches(&self, target: &str) -> bool {
        self.target == "*" || self.target == target
    }
}

/// A malformed [`FaultWindow`], reported by [`FaultWindow::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// The window ends before it starts.
    InvertedWindow {
        /// The window's target.
        target: String,
        /// Claimed start.
        start: SimTime,
        /// Claimed end, earlier than `start`.
        end: SimTime,
    },
    /// A packet-loss probability outside `[0, 1]` (or non-finite).
    InvalidProbability {
        /// The window's target.
        target: String,
        /// The offending probability.
        probability: f64,
    },
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::InvertedWindow { target, start, end } => {
                write!(f, "fault window on {target} is inverted: [{start}, {end})")
            }
            FaultConfigError::InvalidProbability { target, probability } => {
                write!(f, "packet-loss probability {probability} on {target} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == SimTime::MAX {
            write!(f, "{} on {} from {}", self.kind.label(), self.target, self.start)
        } else {
            write!(f, "{} on {} during [{}, {})", self.kind.label(), self.target, self.start, self.end)
        }
    }
}

/// The fault schedule owned by [`crate::sched::Sim`].
///
/// # Examples
///
/// ```
/// use malsim_kernel::fault::FaultPlane;
/// use malsim_kernel::rng::SimRng;
/// use malsim_kernel::time::{SimDuration, SimTime};
///
/// let mut plane = FaultPlane::new(SimRng::seed_from(7).fork("fault-plane"));
/// let noon = SimTime::from_utc(2012, 8, 15, 12, 0, 0);
/// plane.link_down("zone:office", noon, noon + SimDuration::from_hours(2));
/// assert!(plane.link_down_at("zone:office", noon + SimDuration::from_mins(30)));
/// assert!(!plane.link_down_at("zone:office", noon + SimDuration::from_hours(3)));
/// assert!(!plane.link_down_at("zone:plant", noon));
/// ```
pub struct FaultPlane {
    windows: Vec<FaultWindow>,
    rng: SimRng,
}

impl fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlane").field("windows", &self.windows.len()).finish()
    }
}

impl FaultPlane {
    /// Creates an empty plane drawing stochastic faults from `rng`.
    ///
    /// [`crate::sched::Sim::new`] builds one automatically from a stream
    /// forked off the run seed with the label `"fault-plane"`.
    pub fn new(rng: SimRng) -> Self {
        FaultPlane { windows: Vec::new(), rng }
    }

    /// True when no fault has ever been scheduled.
    ///
    /// Every query short-circuits on this, so an unused plane costs one
    /// branch per consultation and zero random draws.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of scheduled windows (active or not).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// All scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Windows covering instant `now`.
    pub fn active_at(&self, now: SimTime) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.active_at(now))
    }

    /// Adds an arbitrary window to the schedule.
    pub fn schedule(&mut self, window: FaultWindow) -> &mut Self {
        self.windows.push(window);
        self
    }

    /// Schedules a link outage on `target` during `[start, end)`.
    pub fn link_down(&mut self, target: impl Into<String>, start: SimTime, end: SimTime) -> &mut Self {
        self.schedule(FaultWindow { target: target.into(), kind: FaultKind::LinkDown, start, end })
    }

    /// Schedules lossy traffic on `target` during `[start, end)`.
    pub fn packet_loss(
        &mut self,
        target: impl Into<String>,
        probability: f64,
        start: SimTime,
        end: SimTime,
    ) -> &mut Self {
        assert!((0.0..=1.0).contains(&probability), "loss probability {probability} outside [0, 1]");
        self.schedule(FaultWindow {
            target: target.into(),
            kind: FaultKind::PacketLoss { probability },
            start,
            end,
        })
    }

    /// Schedules a DNS outage for `target` (a domain, or `"*"`) during `[start, end)`.
    pub fn dns_outage(&mut self, target: impl Into<String>, start: SimTime, end: SimTime) -> &mut Self {
        self.schedule(FaultWindow { target: target.into(), kind: FaultKind::DnsOutage, start, end })
    }

    /// Schedules a permanent seizure of `target` starting at `start`.
    pub fn takedown(&mut self, target: impl Into<String>, start: SimTime) -> &mut Self {
        self.schedule(FaultWindow {
            target: target.into(),
            kind: FaultKind::ServerTakedown,
            start,
            end: SimTime::MAX,
        })
    }

    /// Schedules a crash of `target` at `start`, optionally rebooting after
    /// `reboot_after` (a crash with `None` lasts forever).
    pub fn host_crash(
        &mut self,
        target: impl Into<String>,
        start: SimTime,
        reboot_after: Option<SimDuration>,
    ) -> &mut Self {
        let end = match reboot_after {
            Some(d) => start.saturating_add(d),
            None => SimTime::MAX,
        };
        self.schedule(FaultWindow {
            target: target.into(),
            kind: FaultKind::HostCrash { reboot_after },
            start,
            end,
        })
    }

    fn kind_active(&self, target: &str, now: SimTime, pred: impl Fn(&FaultKind) -> bool) -> bool {
        !self.windows.is_empty()
            && self.windows.iter().any(|w| pred(&w.kind) && w.matches(target) && w.active_at(now))
    }

    /// Is `target`'s link severed at `now`?
    pub fn link_down_at(&self, target: &str, now: SimTime) -> bool {
        self.kind_active(target, now, |k| matches!(k, FaultKind::LinkDown))
    }

    /// Does DNS resolution fail for `target` at `now`?
    pub fn dns_outage_at(&self, target: &str, now: SimTime) -> bool {
        self.kind_active(target, now, |k| matches!(k, FaultKind::DnsOutage))
    }

    /// Has `target` been seized/sinkholed as of `now`?
    pub fn taken_down_at(&self, target: &str, now: SimTime) -> bool {
        self.kind_active(target, now, |k| matches!(k, FaultKind::ServerTakedown))
    }

    /// Is `target` crashed (and not yet rebooted) at `now`?
    pub fn host_crashed_at(&self, target: &str, now: SimTime) -> bool {
        self.kind_active(target, now, |k| matches!(k, FaultKind::HostCrash { .. }))
    }

    /// Effective loss probability for `target` at `now` (max over windows).
    pub fn loss_probability(&self, target: &str, now: SimTime) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows
            .iter()
            .filter(|w| w.matches(target) && w.active_at(now))
            .filter_map(|w| match w.kind {
                FaultKind::PacketLoss { probability } => Some(probability),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Rolls the dice on packet loss for one exchange involving `target`.
    ///
    /// Draws from the plane's forked stream **only when** a loss window is
    /// active, so runs without scheduled loss consume no randomness here.
    pub fn roll_packet_loss(&mut self, target: &str, now: SimTime) -> bool {
        let p = self.loss_probability(target, now);
        if p <= 0.0 {
            return false;
        }
        self.rng.chance(p)
    }

    /// Deterministic jitter draw in `[0, bound_ms]` from the plane's stream.
    ///
    /// Retry policies use this (rather than `Sim::rng`) so that backoff
    /// jitter never perturbs the main random stream.
    pub fn jitter_ms(&mut self, bound_ms: u64) -> u64 {
        if bound_ms == 0 {
            return 0;
        }
        self.rng.range(0..bound_ms + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(seed: u64) -> FaultPlane {
        FaultPlane::new(SimRng::seed_from(seed).fork("fault-plane"))
    }

    fn t(hours: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn empty_plane_answers_negative_without_rng() {
        let mut p = plane(1);
        assert!(p.is_empty());
        assert!(!p.link_down_at("zone:a", t(1)));
        assert!(!p.dns_outage_at("example.com", t(1)));
        assert!(!p.taken_down_at("c2:0", t(1)));
        assert!(!p.host_crashed_at("host:3", t(1)));
        assert_eq!(p.loss_probability("zone:a", t(1)), 0.0);
        assert!(!p.roll_packet_loss("zone:a", t(1)));
        // The rng stream was never touched: it still matches a fresh fork.
        let mut fresh = SimRng::seed_from(1).fork("fault-plane");
        assert_eq!(p.rng.bits(), fresh.bits());
    }

    #[test]
    fn windows_are_half_open() {
        let mut p = plane(2);
        p.link_down("zone:a", t(10), t(12));
        assert!(!p.link_down_at("zone:a", t(9)));
        assert!(p.link_down_at("zone:a", t(10)));
        assert!(p.link_down_at("zone:a", t(11)));
        assert!(!p.link_down_at("zone:a", t(12)), "end is exclusive");
    }

    #[test]
    fn wildcard_target_matches_everything() {
        let mut p = plane(3);
        p.dns_outage("*", t(0), t(5));
        assert!(p.dns_outage_at("anything.example.com", t(2)));
        assert!(!p.dns_outage_at("anything.example.com", t(6)));
    }

    #[test]
    fn takedown_is_permanent() {
        let mut p = plane(4);
        p.takedown("c2:7", t(3));
        assert!(!p.taken_down_at("c2:7", t(2)));
        assert!(p.taken_down_at("c2:7", t(3)));
        assert!(p.taken_down_at("c2:7", t(500_000)));
    }

    #[test]
    fn crash_with_reboot_window_ends() {
        let mut p = plane(5);
        p.host_crash("host:1", t(1), Some(SimDuration::from_hours(4)));
        p.host_crash("host:2", t(1), None);
        assert!(p.host_crashed_at("host:1", t(2)));
        assert!(!p.host_crashed_at("host:1", t(5)), "rebooted");
        assert!(p.host_crashed_at("host:2", t(5_000)), "no reboot scheduled");
    }

    #[test]
    fn loss_probability_takes_max_of_overlaps() {
        let mut p = plane(6);
        p.packet_loss("zone:a", 0.2, t(0), t(10));
        p.packet_loss("*", 0.5, t(5), t(10));
        assert_eq!(p.loss_probability("zone:a", t(1)), 0.2);
        assert_eq!(p.loss_probability("zone:a", t(6)), 0.5);
        assert_eq!(p.loss_probability("zone:b", t(6)), 0.5);
        assert_eq!(p.loss_probability("zone:b", t(1)), 0.0);
    }

    #[test]
    fn packet_loss_rolls_are_deterministic_per_seed() {
        let roll_series = |seed: u64| {
            let mut p = plane(seed);
            p.packet_loss("zone:a", 0.5, t(0), t(100));
            (0..64).map(|h| p.roll_packet_loss("zone:a", t(h))).collect::<Vec<_>>()
        };
        assert_eq!(roll_series(9), roll_series(9));
        assert_ne!(roll_series(9), roll_series(10));
        let lost = roll_series(9).iter().filter(|&&l| l).count();
        assert!((16..=48).contains(&lost), "p=0.5 should lose roughly half, got {lost}/64");
    }

    #[test]
    fn certain_loss_always_drops() {
        let mut p = plane(7);
        p.packet_loss("zone:a", 1.0, t(0), t(10));
        assert!((0..10).all(|h| p.roll_packet_loss("zone:a", t(h))));
    }

    #[test]
    fn jitter_respects_bound() {
        let mut p = plane(8);
        for bound in [0u64, 1, 17, 60_000] {
            for _ in 0..32 {
                assert!(p.jitter_ms(bound) <= bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        plane(9).packet_loss("zone:a", 1.5, t(0), t(1));
    }

    #[test]
    fn validate_accepts_constructor_built_windows() {
        let mut p = plane(11);
        p.link_down("zone:a", t(1), t(2))
            .packet_loss("zone:b", 0.5, t(0), t(4))
            .takedown("c2:0", t(3))
            .host_crash("host:1", t(1), None);
        for w in p.windows() {
            assert_eq!(w.validate(), Ok(()), "{w}");
        }
    }

    #[test]
    fn validate_rejects_inverted_and_bad_probability() {
        let inverted =
            FaultWindow { target: "zone:a".into(), kind: FaultKind::LinkDown, start: t(9), end: t(3) };
        let err = inverted.validate().unwrap_err();
        assert!(matches!(err, FaultConfigError::InvertedWindow { .. }));
        assert!(err.to_string().contains("inverted"), "{err}");
        for probability in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let bad = FaultWindow {
                target: "zone:a".into(),
                kind: FaultKind::PacketLoss { probability },
                start: t(0),
                end: t(1),
            };
            let err = bad.validate().unwrap_err();
            assert!(matches!(err, FaultConfigError::InvalidProbability { .. }), "{probability}");
            let _: &dyn std::error::Error = &err;
        }
    }

    #[test]
    fn display_formats() {
        let mut p = plane(10);
        p.takedown("c2:3", t(1));
        p.link_down("zone:a", t(1), t(2));
        let rendered: Vec<String> = p.windows().iter().map(|w| w.to_string()).collect();
        assert!(rendered[0].starts_with("takedown on c2:3 from "));
        assert!(rendered[1].contains("link-down on zone:a during ["));
    }
}
