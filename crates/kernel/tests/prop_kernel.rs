//! Property tests for the event kernel: ordering, clock monotonicity,
//! cancellation soundness, and rng/fork determinism.

use malsim_kernel::prelude::*;
use proptest::prelude::*;

type World = Vec<(u64, u32)>; // (fire time ms, tag)

proptest! {
    #[test]
    fn events_fire_in_nondecreasing_time_order(
        delays in proptest::collection::vec(0u64..100_000, 1..200)
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
        }
        sim.run(&mut world);
        prop_assert_eq!(world.len(), delays.len());
        for pair in world.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "clock went backwards: {:?}", pair);
        }
        // Ties preserve scheduling order.
        for pair in world.windows(2) {
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie broke scheduling order: {:?}", pair);
            }
        }
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        delays in proptest::collection::vec(1u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let mut handles = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            let h = sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
            handles.push(h);
        }
        let mut expected: Vec<u32> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(sim.cancel(*h));
            } else {
                expected.push(i as u32);
            }
        }
        sim.run(&mut world);
        let mut fired: Vec<u32> = world.iter().map(|(_, t)| *t).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn run_until_never_overshoots(
        delays in proptest::collection::vec(0u64..50_000, 1..100),
        cut in 0u64..50_000,
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
        }
        let cut_time = SimTime::from_millis(cut);
        sim.run_until(&mut world, cut_time);
        prop_assert_eq!(sim.now(), cut_time.max(SimTime::EPOCH));
        prop_assert!(world.iter().all(|(t, _)| *t <= cut));
        let expected_fired = delays.iter().filter(|d| **d <= cut).count();
        prop_assert_eq!(world.len(), expected_fired);
        // The rest still fire afterwards.
        sim.run(&mut world);
        prop_assert_eq!(world.len(), delays.len());
    }

    #[test]
    fn rng_forks_commute_with_draw_order(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::seed_from(seed);
        let mut a = root.fork(&label);
        let mut root2 = SimRng::seed_from(seed);
        // Drawing from the root before forking must not change the fork.
        let _ = root2.bits();
        let _ = root2.bits();
        let mut b = root2.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn repeating_events_fire_exactly_n_times(period in 1u64..1_000, n in 1u32..50) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let mut remaining = n;
        sim.schedule_every(SimDuration::from_millis(period), move |w: &mut World, s| {
            w.push((s.now().as_millis(), 0));
            remaining -= 1;
            remaining > 0
        });
        sim.run(&mut world);
        prop_assert_eq!(world.len(), n as usize);
        prop_assert_eq!(
            sim.now(),
            SimTime::EPOCH + SimDuration::from_millis(period).saturating_mul(u64::from(n))
        );
    }

    #[test]
    fn time_roundtrip_through_calendar(secs in 0u64..4_000_000_000) {
        let t = SimTime::from_millis(secs * 1_000);
        let (y, mo, d, h, mi, s) = t.to_utc();
        let back = SimTime::from_utc(y, mo, d, h, mi, s);
        prop_assert_eq!(back, t);
    }
}

// Checked/saturating time arithmetic: the `checked_*` operations and the
// saturating operators must tell one consistent story at every edge —
// overflow, underflow, zero durations — with `TimeError` naming which edge
// was hit.
proptest! {
    #[test]
    fn checked_add_agrees_with_saturating_add(base in any::<u64>(), delta in any::<u64>()) {
        let t = SimTime::from_millis(base);
        let d = SimDuration::from_millis(delta);
        match t.checked_add(d) {
            Ok(sum) => {
                prop_assert_eq!(sum, t.saturating_add(d));
                prop_assert_eq!(sum, t + d);
                // Round-trip: what was added can be subtracted back.
                prop_assert_eq!(sum.checked_since(t), Ok(d));
            }
            Err(e) => {
                prop_assert_eq!(e, TimeError::Overflow);
                prop_assert!(base.checked_add(delta).is_none(), "checked_add erred in-range");
                prop_assert_eq!(t.saturating_add(d), SimTime::MAX);
            }
        }
    }

    #[test]
    fn checked_since_agrees_with_saturating_since(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (SimTime::from_millis(a), SimTime::from_millis(b));
        match ta.checked_since(tb) {
            Ok(d) => {
                prop_assert!(a >= b);
                prop_assert_eq!(d, ta.saturating_since(tb));
                // Round-trip: the difference re-added restores the later time.
                prop_assert_eq!(tb.checked_add(d), Ok(ta));
            }
            Err(e) => {
                prop_assert_eq!(e, TimeError::Underflow);
                prop_assert!(a < b, "underflow reported for a >= b");
                prop_assert_eq!(ta.saturating_since(tb), SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn duration_checked_ops_agree_with_saturating(x in any::<u64>(), y in any::<u64>()) {
        let (dx, dy) = (SimDuration::from_millis(x), SimDuration::from_millis(y));
        match dx.checked_add(dy) {
            Ok(sum) => {
                prop_assert_eq!(sum, dx + dy);
                prop_assert_eq!(sum.checked_sub(dy), Ok(dx));
            }
            Err(e) => {
                prop_assert_eq!(e, TimeError::Overflow);
                prop_assert_eq!(dx + dy, SimDuration::MAX);
            }
        }
        match dx.checked_sub(dy) {
            Ok(diff) => {
                prop_assert_eq!(diff, dx - dy);
                prop_assert_eq!(diff.checked_add(dy), Ok(dx));
            }
            Err(e) => {
                prop_assert_eq!(e, TimeError::Underflow);
                prop_assert_eq!(dx - dy, SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn duration_checked_mul_matches_wide_multiplication(x in any::<u64>(), k in any::<u64>()) {
        let d = SimDuration::from_millis(x);
        let wide = u128::from(x) * u128::from(k);
        match d.checked_mul(k) {
            Ok(prod) => {
                prop_assert_eq!(u128::from(prod.as_millis()), wide);
                prop_assert_eq!(prod, d.saturating_mul(k));
            }
            Err(e) => {
                prop_assert_eq!(e, TimeError::Overflow);
                prop_assert!(wide > u128::from(u64::MAX));
                prop_assert_eq!(d.saturating_mul(k), SimDuration::MAX);
            }
        }
    }

    #[test]
    fn zero_duration_is_the_identity_everywhere(base in any::<u64>()) {
        let t = SimTime::from_millis(base);
        let d = SimDuration::from_millis(base);
        prop_assert_eq!(t.checked_add(SimDuration::ZERO), Ok(t));
        prop_assert_eq!(t + SimDuration::ZERO, t);
        prop_assert_eq!(t.checked_since(t), Ok(SimDuration::ZERO));
        prop_assert_eq!(d.checked_add(SimDuration::ZERO), Ok(d));
        prop_assert_eq!(d.checked_sub(SimDuration::ZERO), Ok(d));
        prop_assert_eq!(d.checked_mul(0), Ok(SimDuration::ZERO));
        prop_assert!(SimDuration::ZERO.is_zero());
        prop_assert_eq!(d.is_zero(), base == 0);
    }

    #[test]
    fn time_error_round_trips_through_display(which in any::<bool>()) {
        // Both variants render distinct, stable messages and compare equal
        // through a clone round-trip.
        let e = if which { TimeError::Overflow } else { TimeError::Underflow };
        let msg = e.to_string();
        prop_assert_eq!(msg.contains("overflow"), which);
        prop_assert_eq!(msg.contains("underflow"), !which);
        #[allow(clippy::clone_on_copy)]
        let back = e.clone();
        prop_assert_eq!(back, e);
    }
}
