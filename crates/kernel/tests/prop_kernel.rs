//! Property tests for the event kernel: ordering, clock monotonicity,
//! cancellation soundness, and rng/fork determinism.

use malsim_kernel::prelude::*;
use proptest::prelude::*;

type World = Vec<(u64, u32)>; // (fire time ms, tag)

proptest! {
    #[test]
    fn events_fire_in_nondecreasing_time_order(
        delays in proptest::collection::vec(0u64..100_000, 1..200)
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
        }
        sim.run(&mut world);
        prop_assert_eq!(world.len(), delays.len());
        for pair in world.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "clock went backwards: {:?}", pair);
        }
        // Ties preserve scheduling order.
        for pair in world.windows(2) {
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie broke scheduling order: {:?}", pair);
            }
        }
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        delays in proptest::collection::vec(1u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let mut handles = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            let h = sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
            handles.push(h);
        }
        let mut expected: Vec<u32> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(sim.cancel(*h));
            } else {
                expected.push(i as u32);
            }
        }
        sim.run(&mut world);
        let mut fired: Vec<u32> = world.iter().map(|(_, t)| *t).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn run_until_never_overshoots(
        delays in proptest::collection::vec(0u64..50_000, 1..100),
        cut in 0u64..50_000,
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        for (tag, d) in delays.iter().enumerate() {
            let tag = tag as u32;
            sim.schedule_in(SimDuration::from_millis(*d), move |w: &mut World, s| {
                w.push((s.now().as_millis(), tag));
            });
        }
        let cut_time = SimTime::from_millis(cut);
        sim.run_until(&mut world, cut_time);
        prop_assert_eq!(sim.now(), cut_time.max(SimTime::EPOCH));
        prop_assert!(world.iter().all(|(t, _)| *t <= cut));
        let expected_fired = delays.iter().filter(|d| **d <= cut).count();
        prop_assert_eq!(world.len(), expected_fired);
        // The rest still fire afterwards.
        sim.run(&mut world);
        prop_assert_eq!(world.len(), delays.len());
    }

    #[test]
    fn rng_forks_commute_with_draw_order(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = SimRng::seed_from(seed);
        let mut a = root.fork(&label);
        let mut root2 = SimRng::seed_from(seed);
        // Drawing from the root before forking must not change the fork.
        let _ = root2.bits();
        let _ = root2.bits();
        let mut b = root2.fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn repeating_events_fire_exactly_n_times(period in 1u64..1_000, n in 1u32..50) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let mut remaining = n;
        sim.schedule_every(SimDuration::from_millis(period), move |w: &mut World, s| {
            w.push((s.now().as_millis(), 0));
            remaining -= 1;
            remaining > 0
        });
        sim.run(&mut world);
        prop_assert_eq!(world.len(), n as usize);
        prop_assert_eq!(
            sim.now(),
            SimTime::EPOCH + SimDuration::from_millis(period).saturating_mul(u64::from(n))
        );
    }

    #[test]
    fn time_roundtrip_through_calendar(secs in 0u64..4_000_000_000) {
        let t = SimTime::from_millis(secs * 1_000);
        let (y, mo, d, h, mi, s) = t.to_utc();
        let back = SimTime::from_utc(y, mo, d, h, mi, s);
        prop_assert_eq!(back, t);
    }
}
