//! Property tests for the generational slab and the calendar queue that the
//! scheduler is built on. These attack the storage layer directly (stale
//! handle safety, slot reuse, random-order drains) and the scheduler-level
//! guarantees that depend on it (`schedule_every` handles staying cancellable
//! across re-arms, fired handles never touching a slot's next occupant).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use malsim_kernel::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// GenSlab: generational storage
// ---------------------------------------------------------------------------

proptest! {
    /// Random insert/remove interleavings against a HashMap-of-live-values
    /// model: every live ref resolves to its value, every freed ref resolves
    /// to nothing — even after its slot has been reused.
    #[test]
    fn genslab_matches_a_map_model(ops in proptest::collection::vec((any::<bool>(), 0usize..48), 1..300)) {
        let mut slab: GenSlab<u64> = GenSlab::new();
        let mut live: Vec<(SlotRef, u64)> = Vec::new();
        let mut dead: Vec<(SlotRef, u64)> = Vec::new();
        let mut next_val = 0u64;
        for (is_insert, pick) in ops {
            if is_insert || live.is_empty() {
                let r = slab.insert(next_val);
                live.push((r, next_val));
                next_val += 1;
            } else {
                let (r, v) = live.swap_remove(pick % live.len());
                prop_assert_eq!(slab.remove(r), Some(v));
                prop_assert_eq!(slab.remove(r), None, "double remove must miss");
                dead.push((r, v));
            }
            prop_assert_eq!(slab.len(), live.len());
            for (r, v) in &live {
                prop_assert_eq!(slab.get(*r), Some(v));
            }
            for (r, _) in &dead {
                prop_assert!(slab.get(*r).is_none(), "stale ref resolved after free: {:?}", r);
                prop_assert!(!slab.contains(*r));
            }
        }
    }

    /// A freed ref must never cancel or read the slot's next occupant, no
    /// matter how many times the slot is recycled.
    #[test]
    fn genslab_stale_ref_never_sees_reuser(recycles in 1usize..40) {
        let mut slab: GenSlab<&'static str> = GenSlab::new();
        let first = slab.insert("first");
        prop_assert_eq!(slab.remove(first), Some("first"));
        let mut current = None;
        for _ in 0..recycles {
            if let Some(r) = current.take() {
                slab.remove(r);
            }
            // LIFO free list: the same physical slot keeps being reused.
            let r = slab.insert("later");
            prop_assert_eq!(r.index(), first.index());
            prop_assert_ne!(r.generation(), first.generation());
            current = Some(r);
        }
        prop_assert!(slab.get(first).is_none());
        prop_assert_eq!(slab.remove(first), None);
        prop_assert_eq!(slab.len(), 1);
    }
}

// ---------------------------------------------------------------------------
// CalQueue: ordering and cancellation under random programs
// ---------------------------------------------------------------------------

proptest! {
    /// Random (time, payload) inserts with a random subset cancelled drain in
    /// exactly the order a BTreeMap over (time, insertion index) predicts.
    #[test]
    fn calqueue_drains_in_model_order(
        times in proptest::collection::vec(0u64..2_000_000, 1..400),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut q: CalQueue<usize> = CalQueue::new();
        let mut model: BTreeMap<(u64, usize), usize> = BTreeMap::new();
        let mut refs = Vec::new();
        for (i, t) in times.iter().enumerate() {
            refs.push(q.insert(SimTime::from_millis(*t), i));
            model.insert((*t, i), i);
        }
        for (i, r) in refs.iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*r));
                prop_assert!(!q.cancel(*r), "second cancel must be a no-op");
                model.remove(&(times[i], i));
            }
        }
        prop_assert_eq!(q.live_len(), model.len());
        let mut drained = Vec::new();
        while let Some((t, v)) = q.pop() {
            drained.push((t.as_millis(), v));
        }
        let expected: Vec<(u64, usize)> = model.into_iter().map(|((t, _), v)| (t, v)).collect();
        prop_assert_eq!(drained, expected);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.len(), 0, "tombstones must be purged once drained");
    }

    /// Interleaved pops and inserts (inserts clamped to >= the last popped
    /// time, as the scheduler guarantees) still drain in model order. This
    /// exercises cursor pull-back: peeks race ahead, then an insert lands in
    /// an earlier bucket.
    #[test]
    fn calqueue_interleaved_pops_and_inserts_stay_ordered(
        script in proptest::collection::vec((any::<bool>(), 0u64..100_000), 1..300),
    ) {
        let mut q: CalQueue<u64> = CalQueue::new();
        let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (do_pop, dt) in script {
            if do_pop {
                let got = q.pop().map(|(t, v)| (t.as_millis(), v));
                let want = model.iter().next().map(|(&k, _)| k).map(|(t, s)| {
                    model.remove(&(t, s));
                    (t, s)
                });
                prop_assert_eq!(got, want);
                if let Some((t, _)) = got {
                    now = t;
                }
            } else {
                let t = now + dt;
                q.insert(SimTime::from_millis(t), seq);
                model.insert((t, seq), seq);
                seq += 1;
            }
        }
        let mut tail = Vec::new();
        while let Some((t, v)) = q.pop() {
            tail.push((t.as_millis(), v));
        }
        let want: Vec<(u64, u64)> = model.into_iter().map(|((t, _), v)| (t, v)).collect();
        prop_assert_eq!(tail, want);
    }
}

// ---------------------------------------------------------------------------
// Scheduler-level: stale handles and repeating events
// ---------------------------------------------------------------------------

type World = Vec<u32>;

proptest! {
    /// After a handle's event fires, its slot is recycled by later schedules.
    /// Cancelling the fired handle must return false and never kill whichever
    /// new event now occupies the slot.
    #[test]
    fn fired_handles_never_cancel_slot_reusers(
        first_wave in 1usize..30,
        second_wave in 1usize..30,
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let mut old = Vec::new();
        for i in 0..first_wave {
            let tag = i as u32;
            old.push(sim.schedule_in(SimDuration::from_millis(10), move |w: &mut World, _| {
                w.push(tag);
            }));
        }
        sim.run(&mut world);
        prop_assert_eq!(world.len(), first_wave);
        // Second wave reuses the freed slots (LIFO), with fresh generations.
        for i in 0..second_wave {
            let tag = 1000 + i as u32;
            sim.schedule_in(SimDuration::from_millis(10), move |w: &mut World, _| {
                w.push(tag);
            });
        }
        for h in &old {
            prop_assert!(!sim.cancel(*h), "fired handle claimed to cancel something");
        }
        sim.run(&mut world);
        prop_assert_eq!(world.len(), first_wave + second_wave, "a reuser was killed by a stale handle");
    }

    /// The handle returned by `schedule_every` stays valid across re-arms:
    /// cancelling it after N firings stops the series at exactly N.
    #[test]
    fn repeating_handles_cancel_cleanly_after_any_period(
        period_ms in 1u64..500,
        let_run in 1u32..20,
    ) {
        let mut sim: Sim<World> = Sim::new(SimTime::EPOCH, 1);
        let mut world = Vec::new();
        let fired = Rc::new(RefCell::new(0u32));
        let f = fired.clone();
        let h = sim.schedule_every(SimDuration::from_millis(period_ms), move |w: &mut World, _| {
            *f.borrow_mut() += 1;
            w.push(0);
            true // would repeat forever
        });
        // Let exactly `let_run` periods elapse, then cancel via the original
        // handle and drain whatever is left.
        sim.run_until(&mut world, SimTime::from_millis(period_ms * let_run as u64));
        prop_assert_eq!(*fired.borrow(), let_run);
        prop_assert!(sim.cancel(h), "handle went stale across re-arms");
        prop_assert!(!sim.cancel(h));
        sim.run_until(&mut world, SimTime::from_millis(period_ms * (let_run as u64 + 50)));
        prop_assert_eq!(*fired.borrow(), let_run, "series kept firing after cancel");
    }
}
